"""Tests for direction predictors, RAS, indirect cache and BTB designs."""

import pytest

from repro.branch import (
    BimodalPredictor,
    BranchPredictionUnit,
    ConventionalBTB,
    GSharePredictor,
    HybridDirectionPredictor,
    IndirectTargetCache,
    PerfectBTB,
    PhantomBTB,
    ReturnAddressStack,
    TwoLevelBTB,
)
from repro.branch.btb_conventional import conventional_entry_bits
from repro.caches.llc import SharedLLC
from repro.isa.instruction import BranchKind
from repro.workloads.trace import FetchRecord


def _record(pc=0x1000, branch_pc=0x100C, kind=BranchKind.CONDITIONAL, taken=True,
            target=0x2000, next_pc=0x2000, count=4):
    return FetchRecord(
        start=pc, instruction_count=count, branch_pc=branch_pc, kind=kind,
        taken=taken, target=target, next_pc=next_pc,
    )


class TestDirectionPredictors:
    def test_bimodal_learns_bias(self):
        predictor = BimodalPredictor(entries=1024)
        for _ in range(4):
            predictor.update(0x4000, True)
        assert predictor.predict(0x4000)
        for _ in range(4):
            predictor.update(0x4000, False)
        assert not predictor.predict(0x4000)

    def test_gshare_history_advances(self):
        predictor = GSharePredictor(entries=1024, history_bits=4)
        assert predictor.history == 0
        predictor.update(0x4000, True)
        predictor.update(0x4004, False)
        assert predictor.history == 0b10

    def test_gshare_learns_pattern(self):
        predictor = GSharePredictor(entries=4096, history_bits=4)
        # Alternating branch: gshare should learn it via history correlation.
        for i in range(200):
            predictor.update(0x4000, i % 2 == 0)
        correct = 0
        for i in range(200, 240):
            if predictor.predict(0x4000) == (i % 2 == 0):
                correct += 1
            predictor.update(0x4000, i % 2 == 0)
        assert correct >= 30

    def test_hybrid_tracks_accuracy(self):
        predictor = HybridDirectionPredictor(entries=1024)
        for _ in range(100):
            predictor.update(0x4000, True)
        assert predictor.predict(0x4000)
        assert predictor.predictions == 100
        assert predictor.misprediction_rate < 0.2

    def test_table_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            BimodalPredictor(entries=1000)


class TestReturnAddressStack:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(entries=4)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack(entries=2)
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_overflow_wraps(self):
        ras = ReturnAddressStack(entries=2)
        for address in (1, 2, 3):
            ras.push(address)
        assert ras.overflows == 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_peek_does_not_pop(self):
        ras = ReturnAddressStack()
        ras.push(0x500)
        assert ras.peek() == 0x500
        assert ras.depth == 1


class TestIndirectTargetCache:
    def test_learns_last_target(self):
        cache = IndirectTargetCache(entries=64)
        assert cache.predict(0x4000) is None
        cache.update(0x4000, 0x9000)
        assert cache.predict(0x4000) == 0x9000

    def test_tag_mismatch_returns_none(self):
        cache = IndirectTargetCache(entries=4)
        cache.update(0x4000, 0x9000)
        aliased = 0x4000 + 4 * 4  # same index, different tag
        assert cache.predict(aliased) is None

    def test_accuracy_tracking(self):
        cache = IndirectTargetCache(entries=64)
        cache.update(0x4000, 0x9000)
        predicted = cache.predict(0x4000)
        cache.update(0x4000, 0x9000, predicted=predicted)
        assert cache.accuracy > 0


class TestConventionalBTB:
    def test_miss_then_hit_after_update(self):
        btb = ConventionalBTB(entries=64)
        assert not btb.lookup(0x4000).hit
        btb.update(0x4000, BranchKind.CONDITIONAL, 0x5000, taken=True)
        result = btb.lookup(0x4000)
        assert result.hit and result.target == 0x5000

    def test_not_taken_conditionals_not_allocated(self):
        btb = ConventionalBTB(entries=64)
        btb.update(0x4000, BranchKind.CONDITIONAL, 0x5000, taken=False)
        assert not btb.lookup(0x4000).hit

    def test_unconditional_always_allocated(self):
        btb = ConventionalBTB(entries=64)
        btb.update(0x4000, BranchKind.RETURN, None, taken=True)
        assert btb.lookup(0x4000).hit

    def test_victim_buffer_catches_evictions(self):
        small = ConventionalBTB(entries=4, ways=1, victim_entries=4)
        # Fill one set beyond capacity; evicted entries land in the victim buffer.
        pcs = [0x4000 + i * 4 * 4 for i in range(3)]
        for pc in pcs:
            small.update(pc, BranchKind.UNCONDITIONAL, pc + 0x100, taken=True)
        assert small.lookup(pcs[0]).hit  # served by victim buffer or main
        assert small.stats.taken_misses == 0

    def test_capacity_behaviour(self):
        btb = ConventionalBTB(entries=16, ways=4)
        for i in range(64):
            btb.update(0x4000 + i * 4, BranchKind.UNCONDITIONAL, 0x5000, taken=True)
        hits = sum(btb.lookup(0x4000 + i * 4).hit for i in range(64))
        assert hits <= 16 + btb.victim_entries

    def test_stats_track_taken_misses_only_for_taken(self):
        btb = ConventionalBTB(entries=64)
        btb.lookup(0x4000, taken=True)
        btb.lookup(0x4004, taken=False)
        assert btb.stats.taken_misses == 1
        assert btb.stats.not_taken_misses == 1

    def test_storage_scales_with_entries(self):
        small = ConventionalBTB(entries=1024, victim_entries=64)
        big = ConventionalBTB(entries=16 * 1024)
        assert 8 < small.storage_kb < 12          # paper: ~9.9 KB
        assert 120 < big.storage_kb < 160         # paper: ~140 KB

    def test_entry_bits_reasonable(self):
        assert 60 < conventional_entry_bits(1024) < 90

    def test_peek_hit_does_not_touch_stats(self):
        btb = ConventionalBTB(entries=64)
        btb.update(0x4000, BranchKind.UNCONDITIONAL, 0x5000, taken=True)
        lookups_before = btb.stats.lookups
        assert btb.peek_hit(0x4000)
        assert not btb.peek_hit(0x4100)
        assert btb.stats.lookups == lookups_before

    def test_miss_coverage_helper(self):
        btb = ConventionalBTB(entries=64)
        btb.stats.taken_misses = 25
        assert btb.miss_coverage_over(100) == pytest.approx(0.75)


class TestPerfectBTB:
    def test_never_misses_after_update(self):
        btb = PerfectBTB()
        btb.update(0x4000, BranchKind.CONDITIONAL, 0x5000, taken=True)
        assert btb.lookup(0x4000).hit
        assert btb.storage_kb == float("inf")


class TestTwoLevelBTB:
    def test_l2_serves_l1_misses_with_latency(self):
        btb = TwoLevelBTB(l1_entries=4, l2_entries=64, ways=1)
        pcs = [0x4000 + i * 4 * 4 for i in range(8)]
        for pc in pcs:
            btb.update(pc, BranchKind.UNCONDITIONAL, pc + 0x100, taken=True)
        result = btb.lookup(pcs[0])
        assert result.hit
        assert result.level == "l2"
        assert result.latency_cycles == btb.l2_latency_cycles
        # The reactive fill promotes the entry into the first level.
        assert btb.lookup(pcs[0]).level == "l1"

    def test_storage_dominated_by_second_level(self):
        btb = TwoLevelBTB()
        assert btb.second_level_storage_kb > 100
        assert btb.storage_kb > btb.second_level_storage_kb

    def test_stats_count_second_level_accesses(self):
        btb = TwoLevelBTB(l1_entries=4, l2_entries=64, ways=1)
        pcs = [0x4000 + i * 4 * 4 for i in range(8)]
        for pc in pcs:
            btb.update(pc, BranchKind.UNCONDITIONAL, pc + 0x100, taken=True)
        btb.lookup(pcs[0])
        assert btb.stats.second_level_accesses >= 1


class TestPhantomBTB:
    def _trained_phantom(self, llc=None):
        btb = PhantomBTB(l1_entries=8, ways=1, prefetch_buffer_entries=8,
                         entries_per_group=2, group_capacity=16, llc=llc)
        # Create consecutive misses in the same 32-instruction region so they
        # form a temporal group.
        pcs = [0x4000, 0x4010, 0x4200, 0x4210, 0x4400, 0x4410]
        for pc in pcs:
            btb.lookup(pc, taken=True)
            btb.update(pc, BranchKind.UNCONDITIONAL, pc + 0x100, taken=True)
        return btb, pcs

    def test_groups_are_formed(self):
        btb, _ = self._trained_phantom()
        assert btb.group_writes >= 1

    def test_group_prefetch_after_delay(self):
        btb, pcs = self._trained_phantom()
        # Evict everything from the tiny L1 by inserting many other entries.
        for i in range(64):
            btb.update(0x8000 + i * 4, BranchKind.UNCONDITIONAL, 0x9000, taken=True)
        # First miss in the region triggers the group fetch; it arrives at the
        # next miss, after which the group's other entry can hit.
        btb.lookup(pcs[0], taken=True)
        btb.lookup(0xA000, taken=True)  # unrelated miss lets the group arrive
        assert btb.group_fetches >= 1

    def test_llc_region_reserved_and_accessed(self):
        llc = SharedLLC()
        btb, _ = self._trained_phantom(llc=llc)
        assert llc.reserved_blocks >= btb.group_capacity
        assert llc.metadata_writes >= 1

    def test_dedicated_storage_close_to_baseline_btb(self):
        phantom = PhantomBTB()
        baseline = ConventionalBTB(entries=1024, victim_entries=64)
        assert abs(phantom.storage_kb - baseline.storage_kb) < 2.0
        assert phantom.virtualized_kb == pytest.approx(256.0)


class TestBranchPredictionUnit:
    def test_taken_branch_with_btb_hit_is_not_misfetch(self):
        bpu = BranchPredictionUnit(PerfectBTB())
        record = _record()
        bpu.resolve(record)   # trains direction + BTB
        for _ in range(3):
            bpu.resolve(record)
        prediction = bpu.predict(record)
        assert prediction.btb_hit
        assert not prediction.misfetch

    def test_btb_miss_on_taken_branch_is_misfetch(self):
        bpu = BranchPredictionUnit(ConventionalBTB(entries=64))
        prediction = bpu.predict(_record())
        assert prediction.misfetch
        assert bpu.misfetches == 1

    def test_returns_predicted_through_ras(self):
        bpu = BranchPredictionUnit(PerfectBTB())
        call = _record(branch_pc=0x100C, kind=BranchKind.CALL, target=0x8000, next_pc=0x8000)
        bpu.resolve(call)
        ret = _record(pc=0x8000, branch_pc=0x800C, kind=BranchKind.RETURN,
                      target=None, next_pc=call.fallthrough)
        bpu.resolve(ret)  # train BTB entry for the return
        bpu.resolve(call)
        prediction = bpu.predict(ret)
        assert prediction.predicted_target == call.fallthrough

    def test_indirect_branches_use_target_cache(self):
        bpu = BranchPredictionUnit(PerfectBTB())
        indirect = _record(branch_pc=0x100C, kind=BranchKind.INDIRECT, target=None, next_pc=0x9000)
        bpu.resolve(indirect)
        prediction = bpu.predict(indirect)
        assert prediction.predicted_target == 0x9000

    def test_non_branch_region_is_never_misfetch(self):
        bpu = BranchPredictionUnit(ConventionalBTB(entries=64))
        record = FetchRecord(start=0x1000, instruction_count=4, branch_pc=None,
                             kind=None, taken=False, target=None, next_pc=0x1010)
        prediction = bpu.predict(record)
        assert not prediction.misfetch
        assert prediction.target_correct
