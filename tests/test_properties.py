"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.caches.sram import SetAssociativeCache
from repro.core.metrics import miss_coverage, mpki, speedup
from repro.isa.instruction import (
    BLOCK_SIZE_BYTES,
    INSTRUCTIONS_PER_BLOCK,
    block_address,
    block_index,
    block_offset,
)
from repro.branch.ras import ReturnAddressStack
from repro.prefetch.shift import ShiftConfig, ShiftHistory

aligned_addresses = st.integers(min_value=0, max_value=2**40).map(lambda value: value * 4)


class TestAddressProperties:
    @given(aligned_addresses)
    def test_block_address_is_aligned_and_contains_address(self, address):
        base = block_address(address)
        assert base % BLOCK_SIZE_BYTES == 0
        assert base <= address < base + BLOCK_SIZE_BYTES

    @given(aligned_addresses)
    def test_block_decomposition_roundtrips(self, address):
        assert block_address(address) + block_offset(address) * 4 == address

    @given(aligned_addresses)
    def test_block_offset_in_range(self, address):
        assert 0 <= block_offset(address) < INSTRUCTIONS_PER_BLOCK

    @given(aligned_addresses)
    def test_block_index_consistent_with_address(self, address):
        assert block_index(address) * BLOCK_SIZE_BYTES == block_address(address)


class TestCacheProperties:
    @given(
        keys=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=200),
        sets=st.sampled_from([1, 2, 4, 8]),
        ways=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, keys, sets, ways):
        cache = SetAssociativeCache(sets=sets, ways=ways)
        for key in keys:
            cache.insert(key)
        assert len(cache) <= cache.capacity
        # Every inserted key is either resident or was evicted — the most
        # recently inserted key is always resident.
        assert cache.contains(keys[-1])

    @given(keys=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_fully_associative_keeps_most_recent_distinct_keys(self, keys):
        ways = 4
        cache = SetAssociativeCache(sets=1, ways=ways)
        for key in keys:
            cache.insert(key)
        distinct_recent = []
        for key in reversed(keys):
            if key not in distinct_recent:
                distinct_recent.append(key)
            if len(distinct_recent) == ways:
                break
        for key in distinct_recent:
            assert cache.contains(key)

    @given(keys=st.lists(st.integers(min_value=0, max_value=1000), max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_stats_balance(self, keys):
        cache = SetAssociativeCache(sets=4, ways=2)
        for key in keys:
            cache.access(key)
            cache.insert(key)
        assert cache.stats.lookups == cache.stats.hits + cache.stats.misses
        assert cache.stats.lookups == len(keys)


class TestRASProperties:
    @given(st.lists(st.integers(min_value=0, max_value=2**32), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_pop_returns_lifo_suffix_within_capacity(self, addresses):
        ras = ReturnAddressStack(entries=16)
        for address in addresses:
            ras.push(address)
        expected = addresses[-16:][::-1]
        popped = [ras.pop() for _ in range(len(expected))]
        assert popped == expected


class TestShiftHistoryProperties:
    @given(st.lists(st.integers(min_value=0, max_value=63).map(lambda b: b * 64),
                    min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_index_always_points_at_block(self, blocks):
        history = ShiftHistory(ShiftConfig(history_entries=64))
        for block in blocks:
            history.record(block)
        for block in set(blocks):
            position = history.lookup(block)
            if position is not None:
                assert history._buffer[position] == block

    @given(st.lists(st.integers(min_value=0, max_value=31).map(lambda b: b * 64),
                    min_size=2, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_read_stream_reproduces_recorded_successors(self, blocks):
        history = ShiftHistory(ShiftConfig(history_entries=1024))
        for block in blocks:
            history.record(block)
        # The most recent occurrence of blocks[-2] is followed by blocks[-1]
        # unless blocks[-2] also equals blocks[-1] (then it is the last entry).
        position = history.lookup(blocks[-2])
        stream = history.read_stream(position, 1)
        if blocks[-2] != blocks[-1]:
            assert stream == [blocks[-1]]


class TestMetricProperties:
    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=1, max_value=10**7))
    def test_mpki_non_negative_and_linear(self, misses, instructions):
        assert mpki(misses, instructions) >= 0
        assert mpki(2 * misses, instructions) == 2 * mpki(misses, instructions)

    @given(st.integers(min_value=1, max_value=10**6), st.integers(min_value=0, max_value=10**6))
    def test_miss_coverage_bounded_above_by_one(self, baseline, design):
        assert miss_coverage(baseline, design) <= 1.0

    @given(st.floats(min_value=1, max_value=1e6), st.floats(min_value=1, max_value=1e6))
    def test_speedup_antisymmetry(self, a, b):
        assert speedup(a, b) * speedup(b, a) == __import__("pytest").approx(1.0)
