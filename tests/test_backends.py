"""The backend registry and the ``SimBackend`` dispatch contract.

Parity (every backend == the reference oracle) lives in
``test_frontend_parity.py``; this file pins the plumbing around it — the
registry surface, instance memoization, the trace-form mismatch error that
replaced the old silent record-view fallback, and the extension story for
out-of-tree backends.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.backends import (
    BACKEND_REGISTRY,
    DEFAULT_BACKEND,
    ReferenceBackend,
    ScalarBackend,
    SimBackend,
    backend_names,
    get_backend,
    resolve_backend,
)
from repro.core.designs import design_from_spec, resolve_design
from repro.registry import UnknownComponentError


class TestRegistrySurface:
    def test_builtins_are_registered(self):
        names = backend_names()
        assert "scalar" in names and "reference" in names
        assert DEFAULT_BACKEND in names

    def test_get_backend_memoizes_one_instance(self):
        assert get_backend("scalar") is get_backend("scalar")
        assert isinstance(get_backend("scalar"), ScalarBackend)
        assert isinstance(get_backend("reference"), ReferenceBackend)

    def test_unknown_name_lists_the_catalog(self):
        with pytest.raises(UnknownComponentError, match="unknown backend") as info:
            get_backend("vector9000")
        # The message must name the known backends (the CLI prints it as-is).
        assert "scalar" in str(info.value) and "reference" in str(info.value)
        assert isinstance(info.value, KeyError)  # except KeyError sites work

    def test_duplicate_registration_refused(self):
        with pytest.raises(ValueError, match="already registered"):
            BACKEND_REGISTRY.register("scalar", ScalarBackend)

    def test_non_backend_factory_is_a_type_error(self):
        BACKEND_REGISTRY.register("broken", dict)
        try:
            with pytest.raises(TypeError, match="expected a SimBackend"):
                get_backend("broken")
        finally:
            BACKEND_REGISTRY.unregister("broken")

    def test_custom_backend_register_and_unregister(self, tiny_program, tiny_trace):
        # The extension story: subclass SimBackend, register, and the whole
        # stack (resolve, simulator dispatch) picks it up by name.
        @BACKEND_REGISTRY.register("delegating")
        class DelegatingBackend(SimBackend):
            """Toy backend that defers to the reference oracle."""

            name = "delegating"
            trace_form = "record view (.records)"

            def consumes(self, trace):
                return get_backend("reference").consumes(trace)

            def run(self, simulator, trace, warmup):
                return get_backend("reference").run(simulator, trace, warmup)

        try:
            assert "delegating" in backend_names()
            simulator, _ = design_from_spec(
                resolve_design("baseline"), tiny_program
            )
            oracle_sim, _ = design_from_spec(
                resolve_design("baseline"), tiny_program
            )
            via_custom = simulator.run(tiny_trace, backend="delegating")
            oracle = oracle_sim.run(tiny_trace, backend="reference")
            assert dataclasses.asdict(via_custom) == dataclasses.asdict(oracle)
        finally:
            BACKEND_REGISTRY.unregister("delegating")
        with pytest.raises(UnknownComponentError):
            get_backend("delegating")


class TestResolveBackend:
    def test_none_resolves_to_the_default(self):
        assert resolve_backend(None) is get_backend(DEFAULT_BACKEND)

    def test_instance_passes_through(self):
        instance = get_backend("reference")
        assert resolve_backend(instance) is instance

    def test_name_resolves_through_the_registry(self):
        assert resolve_backend("reference") is get_backend("reference")


class _RecordsOnly:
    """Trace-like object with a record view but no columnar form."""

    name = "records_only"
    packed = None

    def __init__(self, records):
        self.records = records


class TestTraceFormMismatch:
    """The satellite bugfix: no silent fallback across trace forms.

    The old loop duck-typed ``getattr(trace, "packed", None)`` and silently
    fell back to the 2x-slower record walk; now the selected backend either
    consumes the trace's form or the run raises.
    """

    def test_scalar_refuses_a_records_only_trace(self, tiny_program, tiny_trace):
        simulator, _ = design_from_spec(resolve_design("baseline"), tiny_program)
        fake = _RecordsOnly(tiny_trace.records)
        with pytest.raises(ValueError, match="cannot consume trace"):
            simulator.run(fake, backend="scalar")

    def test_the_error_names_the_required_form(self, tiny_program, tiny_trace):
        simulator, _ = design_from_spec(resolve_design("baseline"), tiny_program)
        with pytest.raises(ValueError, match=r"columnar \(\.packed\)"):
            simulator.run(_RecordsOnly(tiny_trace.records), backend="scalar")

    def test_reference_consumes_the_same_object(self, tiny_program, tiny_trace):
        simulator, _ = design_from_spec(resolve_design("baseline"), tiny_program)
        oracle_sim, _ = design_from_spec(resolve_design("baseline"), tiny_program)
        fake = _RecordsOnly(tiny_trace.records)
        fake.name = tiny_trace.name  # results carry the workload name
        via_fake = simulator.run(fake, backend="reference")
        oracle = oracle_sim.run(tiny_trace, backend="reference")
        assert dataclasses.asdict(via_fake) == dataclasses.asdict(oracle)

    def test_consumes_predicates(self, tiny_trace):
        fake = _RecordsOnly(tiny_trace.records)
        assert get_backend("reference").consumes(fake)
        assert not get_backend("scalar").consumes(fake)
        assert get_backend("scalar").consumes(tiny_trace)
        assert get_backend("reference").consumes(tiny_trace)


class TestSimulatorBackendKnob:
    def test_constructor_backend_is_the_run_default(self, tiny_program, tiny_trace):
        spec = resolve_design("baseline")
        default_sim, _ = design_from_spec(spec, tiny_program)
        oracle = default_sim.run(tiny_trace, backend="reference")

        pinned_sim, _ = design_from_spec(spec, tiny_program)
        pinned_sim.backend = "reference"
        assert dataclasses.asdict(pinned_sim.run(tiny_trace)) == (
            dataclasses.asdict(oracle)
        )

    def test_run_argument_overrides_the_constructor(self, tiny_program, tiny_trace):
        spec = resolve_design("baseline")
        simulator, _ = design_from_spec(spec, tiny_program)
        simulator.backend = "scalar"
        fake = _RecordsOnly(tiny_trace.records)
        # The per-run override wins: reference consumes what scalar cannot.
        result = simulator.run(fake, backend="reference")
        assert result.fetch_regions > 0
