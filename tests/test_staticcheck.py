"""Tests for the repro.staticcheck invariant analyzer.

Three layers: the rules fire on the seeded fixtures (and only there), the
infrastructure (registry, baseline, inline allows, markers) behaves, and —
the one that matters — the real package lints clean, which is the
machine-checked statement of the hot-loop/determinism/cache-key contracts.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.registry import UnknownComponentError
from repro.staticcheck import (
    RULE_REGISTRY,
    Baseline,
    Finding,
    hot_loop,
    parse_target,
    run_lint,
    run_rules,
)
from repro.staticcheck.markers import HOT_LOOP_ATTRIBUTE

from pathlib import Path

FIXTURES = Path(__file__).resolve().parent / "staticcheck_fixtures"
SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def lint_source(tmp_path, source, name="module.py", rule_ids=None):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_lint([path], rule_ids=rule_ids)


class TestRepositoryIsClean:
    def test_package_lints_clean(self):
        assert run_lint([SRC]) == []

    def test_kernel_functions_carry_the_marker(self):
        from repro.backends.batch import _lockstep_rounds
        from repro.backends.scalar import ScalarBackend
        from repro.branch.btb_conventional import ConventionalBTB, PerfectBTB
        from repro.branch.btb_two_level import TwoLevelBTB
        from repro.branch.unit import BranchPredictionUnit

        for func in (
            ScalarBackend.run,
            BranchPredictionUnit.predict_region_into,
            ConventionalBTB.lookup_into,
            PerfectBTB.lookup_into,
            TwoLevelBTB.lookup_into,
            _lockstep_rounds,
        ):
            assert getattr(func, HOT_LOOP_ATTRIBUTE, False), func.__qualname__


class TestFixturesTrigger:
    @pytest.mark.parametrize(
        "target, rule",
        [
            ("r001_hot_alloc.py", "R001"),
            ("r001_numpy_alloc.py", "R001"),
            ("r002", "R002"),
            ("r003", "R003"),
            ("r004", "R004"),
            ("r005_pkg", "R005"),
            ("r006", "R006"),
        ],
    )
    def test_each_seeded_fixture_fires_its_rule(self, target, rule):
        findings = run_lint([FIXTURES / target])
        assert findings, f"{target} should fire {rule}"
        assert {f.rule for f in findings} == {rule}

    def test_clean_control_has_no_findings(self):
        assert run_lint([FIXTURES / "clean.py"]) == []

    def test_findings_are_sorted_and_structured(self):
        findings = run_lint([FIXTURES / "r002"])
        assert findings == sorted(
            findings, key=lambda f: (f.path, f.line, f.rule, f.message)
        )
        for finding in findings:
            payload = finding.to_dict()
            assert set(payload) == {"rule", "path", "line", "symbol", "message"}
            assert finding.render().startswith(f"{finding.path}:{finding.line}:")


class TestRuleBehavior:
    def test_r001_prelude_allocation_is_allowed(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.staticcheck.markers import hot_loop

            @hot_loop
            def kernel(items):
                scratch = [0] * 8   # hoisted: before the loop, allowed
                total = 0
                for item in items:
                    total += scratch[item]
                return total
            """,
        )
        assert findings == []

    def test_r001_loop_free_leaf_is_checked_in_full(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.staticcheck.markers import hot_loop

            @hot_loop
            def leaf(slot, value):
                slot.payload = {"value": value}
            """,
        )
        assert [f.rule for f in findings] == ["R001"]
        assert "dict display" in findings[0].message

    def test_r001_flags_object_construction(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.staticcheck.markers import hot_loop

            @hot_loop
            def kernel(items):
                for item in items:
                    box = SomeBox(item)
                    box.poke()
            """,
        )
        assert [f.rule for f in findings] == ["R001"]
        assert "constructs an object" in findings[0].message

    def test_r001_numpy_call_without_out_is_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import numpy as np

            from repro.staticcheck.markers import hot_loop

            @hot_loop
            def kernel(tags, keys, rounds):
                for _ in range(rounds):
                    hits = np.equal(tags, keys)
                return hits
            """,
        )
        assert [f.rule for f in findings] == ["R001"]
        assert "pass out=" in findings[0].message

    def test_r001_numpy_out_keyword_is_the_allow_pattern(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import numpy as np

            from repro.staticcheck.markers import hot_loop

            @hot_loop
            def kernel(tags, keys, rounds):
                hits = np.empty(tags.shape, dtype=bool)  # prelude: allowed
                for _ in range(rounds):
                    np.equal(tags, keys, out=hits)
                return hits
            """,
        )
        assert findings == []

    def test_r001_index_tuples_are_not_tuple_displays(self, tmp_path):
        # tags[rows, ways] parses as a Load-context Tuple inside the
        # Subscript slice; it is numpy advanced indexing, not an allocation.
        findings = lint_source(
            tmp_path,
            """
            from repro.staticcheck.markers import hot_loop

            @hot_loop
            def kernel(tags, rows, ways, keys, rounds):
                for _ in range(rounds):
                    tags[rows, ways] = keys
                    keys = tags[ways, rows]
                return tags
            """,
        )
        assert findings == []

    def test_r002_seeded_rng_is_allowed(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import random

            def deal(seed, count):
                rng = random.Random(seed)
                return [rng.randint(0, 100) for _ in range(count)]
            """,
            name="workloads.py",
        )
        assert findings == []

    def test_r002_sorted_listing_is_allowed(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import os

            def artifacts(root):
                return sorted(os.listdir(root))

            def artifacts_raw(root):
                return os.listdir(root)
            """,
            name="sweep.py",
        )
        assert len(findings) == 1
        assert findings[0].symbol == "artifacts_raw"

    def test_r002_ignores_modules_outside_scope(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time

            def stamp():
                return time.time()
            """,
            name="reporting.py",
        )
        assert findings == []

    def test_r003_exempts_scenario_description(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Scenario:
                name: str
                description: str

                def bind(self, cores):
                    return (self.name, cores)
            """,
            name="scenario.py",
        )
        assert findings == []

    def test_r003_generic_flattener_covers_everything(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import dataclasses
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class CoreWorkload:
                profile: str
                seed: int

            def cell_key(workload):
                return {
                    field.name: getattr(workload, field.name)
                    for field in dataclasses.fields(workload)
                }
            """,
            name="sweep.py",
        )
        assert findings == []

    def test_r004_reducer_class_is_safe(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from concurrent.futures import ProcessPoolExecutor

            class PackedTrace:
                @classmethod
                def from_buffers(cls, buffers):
                    return cls()

                def __reduce__(self):
                    return (PackedTrace, ())

            def ship(buffers, worker):
                trace = PackedTrace.from_buffers(buffers)
                with ProcessPoolExecutor() as pool:
                    return pool.submit(worker, trace).result()
            """,
        )
        assert findings == []

    def test_r005_importing_init_passes(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text(
            "from pkg import widget  # noqa: F401\n", encoding="utf-8"
        )
        (pkg / "widget.py").write_text(
            textwrap.dedent(
                """
                from repro.registry import BTB_REGISTRY

                @BTB_REGISTRY.register("tmp_widget")
                def build(ctx, **params):
                    return None
                """
            ),
            encoding="utf-8",
        )
        assert run_lint([pkg]) == []
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        findings = run_lint([pkg])
        assert [f.rule for f in findings] == ["R005"]

    def test_r006_bounded_retry_with_deterministic_backoff_passes(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time

            def run_with_retry(job, retries, backoff):
                last = None
                for attempt in range(retries + 1):
                    if attempt:
                        time.sleep(min(backoff * 2.0 ** (attempt - 1), 2.0))
                    try:
                        return job()
                    except OSError as error:
                        last = error
                raise last
            """,
            name="retry.py",
        )
        assert findings == []

    def test_r006_while_true_with_sleep_is_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time

            def spin(job):
                while True:
                    try:
                        return job()
                    except OSError:
                        time.sleep(0.5)
            """,
            name="retry.py",
        )
        assert [f.rule for f in findings] == ["R006"]
        assert "unbounded" in findings[0].message

    def test_r006_unseeded_jitter_in_sleep_is_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import random
            import time

            def backoff(attempt):
                time.sleep(0.1 * attempt + random.uniform(0.0, 0.1))
            """,
            name="retry.py",
        )
        assert [f.rule for f in findings] == ["R006"]
        assert "random.uniform" in findings[0].message

    def test_r006_seeded_rng_jitter_is_allowed(self, tmp_path):
        # random.Random(seed) is the sanctioned pattern (R002's contract):
        # a seeded schedule is still a pure function of its inputs.
        findings = lint_source(
            tmp_path,
            """
            import random
            import time

            def backoff(attempt, seed):
                rng = random.Random(seed)
                time.sleep(0.1 * attempt + rng.uniform(0.0, 0.1))
            """,
            name="retry.py",
        )
        assert findings == []

    def test_r006_only_fires_in_scope(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time

            def poll(ready):
                while True:
                    if ready():
                        return
                    time.sleep(0.5)
            """,
            name="monitor.py",
        )
        assert findings == []


class TestSuppression:
    VIOLATION = """
    from repro.staticcheck.markers import hot_loop

    @hot_loop
    def kernel(items):
        for item in items:
            box = [item]{allow}
            box.clear()
    """

    def test_inline_allow_comment_waives_the_line(self, tmp_path):
        noisy = lint_source(tmp_path, self.VIOLATION.format(allow=""))
        assert len(noisy) == 1
        quiet = lint_source(
            tmp_path,
            self.VIOLATION.format(allow="  # staticcheck: allow[R001]"),
        )
        assert quiet == []

    def test_baseline_round_trip(self, tmp_path):
        findings = lint_source(tmp_path, self.VIOLATION.format(allow=""))
        baseline_path = tmp_path / "baseline.json"
        Baseline.dump(findings, baseline_path)
        baseline = Baseline.load(baseline_path)
        assert len(baseline) == 1
        assert all(baseline.suppresses(f) for f in findings)
        path = tmp_path / "module.py"
        assert run_lint([path], baseline=baseline) == []

    def test_baseline_is_line_number_independent(self, tmp_path):
        findings = lint_source(tmp_path, self.VIOLATION.format(allow=""))
        baseline = Baseline(findings)
        moved = Finding(
            rule=findings[0].rule,
            path=findings[0].path,
            line=findings[0].line + 40,
            symbol=findings[0].symbol,
            message=findings[0].message,
        )
        assert baseline.suppresses(moved)

    def test_baseline_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"not": "a baseline"}', encoding="utf-8")
        with pytest.raises(ValueError, match="not a staticcheck baseline"):
            Baseline.load(path)


class TestRegistry:
    def test_rule_catalog(self):
        assert RULE_REGISTRY.names() == [
            "R001", "R002", "R003", "R004", "R005", "R006",
        ]
        for rule_id in RULE_REGISTRY.names():
            assert RULE_REGISTRY.describe(rule_id)

    def test_custom_rule_registers_and_runs(self, tmp_path):
        @RULE_REGISTRY.register("R901")
        def check_everything_is_fine(package):
            for module in package:
                yield Finding(
                    rule="R901",
                    path=module.relpath,
                    line=1,
                    symbol="<module>",
                    message="custom rule fired",
                )

        try:
            (tmp_path / "mod.py").write_text("x = 1\n", encoding="utf-8")
            findings = run_rules(parse_target(tmp_path), ["R901"])
            assert [f.rule for f in findings] == ["R901"]
        finally:
            RULE_REGISTRY.unregister("R901")
        assert "R901" not in RULE_REGISTRY

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            RULE_REGISTRY.register("R001", lambda package: iter(()))

    def test_unknown_rule_raises_with_suggestions(self):
        with pytest.raises(UnknownComponentError, match="R001"):
            RULE_REGISTRY.get("R999")


class TestMarkers:
    def test_hot_loop_is_a_runtime_noop(self):
        def probe():
            return 41

        marked = hot_loop(probe)
        assert marked is probe
        assert getattr(marked, HOT_LOOP_ATTRIBUTE) is True
        assert marked() == 41
