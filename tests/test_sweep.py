"""Tests for the parallel sweep engine and its on-disk result cache."""

from __future__ import annotations

import json
import os

import pytest

from repro.api import Session, reports_from_sweep, run_grid
from repro.core.designs import resolve_design
from repro.core.frontend import FrontendConfig
from repro.sweep import (
    CACHE_SCHEMA_VERSION,
    CorruptArtifactWarning,
    ResultCache,
    SweepCell,
    TraceStore,
    clear_workload_memo,
    default_cache_dir,
    default_trace_dir,
    run_cells,
    run_sweep,
    trace_key,
)
from repro.workloads import get_profile, synthesize_program

PROFILES = ["oltp_db2", "dss_qry2"]
DESIGNS = ["baseline", "confluence"]
#: Small enough to keep the whole grid (2 x 2 cells, 2 cores) fast.
GRID_KW = dict(scale=0.08, cores=2, instructions_per_core=6_000)


def _cell(**overrides) -> SweepCell:
    params = dict(
        profile=get_profile("oltp_db2").scaled(0.08),
        spec=resolve_design("baseline"),
        cores=2,
        instructions_per_core=6_000,
    )
    params.update(overrides)
    return SweepCell(**params)


class TestCellKey:
    def test_key_is_stable_and_deterministic(self):
        assert _cell().key() == _cell().key()
        assert len(_cell().key()) == 64  # sha256 hex

    @pytest.mark.parametrize("overrides", [
        {"cores": 4},
        {"instructions_per_core": 7_000},
        {"trace_seed_base": 101},
        {"spec": resolve_design("confluence")},
        {"profile": get_profile("dss_qry2").scaled(0.08)},
        {"frontend_config": FrontendConfig(base_cpi=1.5)},
        {"backend": "reference"},
    ])
    def test_any_parameter_change_changes_the_key(self, overrides):
        assert _cell(**overrides).key() != _cell().key()

    def test_design_param_overrides_reach_the_key(self):
        thin = resolve_design("baseline").derive(
            "baseline", label="1K BTB (baseline)", btb_params={"entries": 512}
        )
        assert _cell(spec=thin).key() != _cell().key()

    def test_swapping_a_registered_factory_changes_the_key(self):
        # A cached cell must not survive its component's implementation: the
        # factory source is part of the key, so re-registering a name under
        # a different factory invalidates instead of serving stale results.
        from repro.registry import BTB_REGISTRY

        key_before = _cell().key()
        original = BTB_REGISTRY.get("conventional")

        def replacement(ctx, **params):
            return original(ctx, **params)

        BTB_REGISTRY.register("conventional", replacement, overwrite=True)
        try:
            assert _cell().key() != key_before
        finally:
            BTB_REGISTRY.register("conventional", original, overwrite=True)
        assert _cell().key() == key_before

    def test_swapping_a_registered_backend_changes_the_key(self):
        # Same invalidation story for simulation backends: a cached cell
        # must not survive its backend's implementation changing under it.
        from repro.backends import BACKEND_REGISTRY, ScalarBackend

        key_before = _cell().key()

        class PatchedScalar(ScalarBackend):
            pass

        BACKEND_REGISTRY.register("scalar", PatchedScalar, overwrite=True)
        try:
            assert _cell().key() != key_before
        finally:
            BACKEND_REGISTRY.register("scalar", ScalarBackend, overwrite=True)
        assert _cell().key() == key_before


class TestResultCache:
    def test_round_trip_and_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("a" * 64) is None
        assert cache.misses == 1
        cache.put("a" * 64, {"ipc": 1.25, "cores": 2})
        assert cache.get("a" * 64) == {"ipc": 1.25, "cores": 2}
        assert cache.hits == 1

    def test_corrupt_entry_is_quarantined_with_a_warning(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = tmp_path / ("b" * 64 + ".json")
        path.write_text("{not json")
        with pytest.warns(CorruptArtifactWarning, match="quarantined"):
            assert cache.get("b" * 64) is None
        assert cache.quarantined == 1
        assert not path.exists()
        assert (tmp_path / (path.name + ".corrupt")).exists()
        # Quarantined means gone: the next probe is a silent ordinary miss.
        assert cache.get("b" * 64) is None
        assert cache.quarantined == 1

    def test_checksum_mismatch_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("f" * 64, {"ipc": 1.25, "cores": 2})
        payload = json.loads(path.read_text())
        payload["summary"]["ipc"] = 9.99  # bit rot / tampering
        path.write_text(json.dumps(payload))
        with pytest.warns(CorruptArtifactWarning, match="checksum"):
            assert cache.get("f" * 64) is None
        assert cache.quarantined == 1
        assert not path.exists()

    def test_stale_schema_is_a_silent_miss_not_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = tmp_path / ("c" * 64 + ".json")
        path.write_text(json.dumps(
            {"schema": CACHE_SCHEMA_VERSION + 1, "summary": {"ipc": 1.0}}
        ))
        assert cache.get("c" * 64) is None
        assert cache.quarantined == 0
        assert path.exists()  # another build's entry is left alone

    def test_pre_checksum_entry_is_a_miss(self, tmp_path):
        # Schema 2 cells predate the backend field; schema 3 cells predate
        # the batch backend and the CMP lane-grouped dispatch; schema 4
        # cells predate payload checksums.  Schema 5 must treat all of them
        # as misses, never serve them — and never quarantine them.
        assert CACHE_SCHEMA_VERSION == 5
        cache = ResultCache(tmp_path)
        for fill, stale in (("d", 2), ("e", 3), ("f", 4)):
            (tmp_path / (fill * 64 + ".json")).write_text(json.dumps(
                {"schema": stale, "summary": {"ipc": 1.0, "cores": 2}}
            ))
            assert cache.get(fill * 64) is None
        assert cache.quarantined == 0

    def test_env_var_sets_default_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"
        assert ResultCache().directory == tmp_path / "elsewhere"

    def test_coerce_forms(self, tmp_path):
        assert ResultCache.coerce(None) is None
        assert ResultCache.coerce(False) is None
        assert ResultCache.coerce(True) is not None
        assert ResultCache.coerce(str(tmp_path)).directory == tmp_path
        cache = ResultCache(tmp_path)
        assert ResultCache.coerce(cache) is cache


class TestTraceStore:
    def test_key_sensitivity(self):
        profile = get_profile("oltp_db2").scaled(0.08)
        base = trace_key(profile, 6_000, 100)
        assert base == trace_key(profile, 6_000, 100)
        assert base != trace_key(profile, 7_000, 100)
        assert base != trace_key(profile, 6_000, 101)
        assert base != trace_key(get_profile("dss_qry2").scaled(0.08), 6_000, 100)

    def test_env_var_sets_default_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "traces"))
        assert default_trace_dir() == tmp_path / "traces"
        assert TraceStore().directory == tmp_path / "traces"

    def test_default_nests_under_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_trace_dir() == tmp_path / "traces"

    def test_coerce_forms(self, tmp_path):
        assert TraceStore.coerce(None) is None
        assert TraceStore.coerce(False) is None
        assert TraceStore.coerce(True) is not None
        assert TraceStore.coerce(str(tmp_path)).directory == tmp_path
        store = TraceStore(tmp_path)
        assert TraceStore.coerce(store) is store

    def test_load_miss_and_round_trip(self, tmp_path):
        from repro.workloads import generate_trace

        store = TraceStore(tmp_path)
        profile = get_profile("oltp_db2").scaled(0.08)
        assert store.load(profile, 5_000, 42) is None
        assert store.misses == 1

        program = synthesize_program(profile)
        generated = generate_trace(program, 5_000, seed=42, name="core0")
        store.put(profile, 5_000, 42, generated)
        loaded = store.load(profile, 5_000, 42, name="renamed")
        assert store.hits == 1
        assert loaded is not None
        assert loaded.name == "renamed"  # per-core names override the artifact's
        assert len(loaded) == len(generated)
        assert all(a == b for a, b in zip(loaded.records, generated.records, strict=True))

    def test_corrupt_artifact_is_quarantined_with_a_warning(self, tmp_path):
        store = TraceStore(tmp_path)
        profile = get_profile("oltp_db2").scaled(0.08)
        key = trace_key(profile, 5_000, 42)
        tmp_path.mkdir(exist_ok=True)
        path = tmp_path / f"{key}.trace"
        path.write_bytes(b"garbage")
        with pytest.warns(CorruptArtifactWarning, match="quarantined"):
            assert store.load(profile, 5_000, 42) is None
        assert store.misses == 1
        assert store.quarantined == 1
        assert not path.exists()
        assert (tmp_path / (path.name + ".corrupt")).exists()
        # Quarantined means gone: the next probe is a silent ordinary miss.
        assert store.load(profile, 5_000, 42) is None
        assert store.quarantined == 1

    def test_loads_are_mmap_backed_by_default(self, tmp_path):
        from repro.workloads import generate_trace

        store = TraceStore(tmp_path)
        profile = get_profile("oltp_db2").scaled(0.08)
        program = synthesize_program(profile)
        store.put(profile, 5_000, 42, generate_trace(program, 5_000, seed=42))
        loaded = store.load(profile, 5_000, 42)
        assert loaded is not None and loaded.packed.mapped
        assert store.mapped == 1
        heap_store = TraceStore(tmp_path, mmap=False)
        heap = heap_store.load(profile, 5_000, 42)
        assert heap is not None and not heap.packed.mapped
        assert heap_store.mapped == 0
        assert all(a == b for a, b in zip(loaded.records, heap.records, strict=True))


class TestTraceStorePrune:
    """Size-bounded LRU eviction for long-lived shared store directories."""

    def _store_with_artifacts(self, tmp_path, seeds=(1, 2, 3)):
        from repro.workloads import generate_trace

        store = TraceStore(tmp_path / "traces")
        profile = get_profile("oltp_db2").scaled(0.08)
        program = synthesize_program(profile)
        paths = []
        for order, seed in enumerate(seeds):
            trace = generate_trace(program, 2_000, seed=seed)
            path = store.put(profile, 2_000, seed, trace)
            # Deterministic LRU order regardless of filesystem timestamp
            # granularity: seed i was last used i hours after the epoch.
            stamp = 3600.0 * (order + 1)
            os.utime(path, (stamp, stamp))
            paths.append(path)
        return store, profile, paths

    def test_prune_evicts_least_recently_used_first(self, tmp_path):
        store, _, paths = self._store_with_artifacts(tmp_path)
        sizes = [path.stat().st_size for path in paths]
        budget = sum(sizes) - 1  # force out exactly the single coldest artifact
        removed, freed = store.prune(budget)
        assert removed == 1
        assert freed == sizes[0]
        assert not paths[0].exists()  # the coldest artifact went first
        assert paths[1].exists() and paths[2].exists()

    def test_prune_to_zero_removes_everything(self, tmp_path):
        store, _, paths = self._store_with_artifacts(tmp_path)
        total = sum(path.stat().st_size for path in paths)
        removed, freed = store.prune(0)
        assert removed == 3
        assert freed == total
        assert all(not path.exists() for path in paths)

    def test_prune_within_budget_is_a_no_op(self, tmp_path):
        store, _, paths = self._store_with_artifacts(tmp_path)
        removed, freed = store.prune(1 << 30)
        assert (removed, freed) == (0, 0)
        assert all(path.exists() for path in paths)

    def test_pruned_artifact_is_regenerated_on_demand(self, tmp_path):
        store, profile, _ = self._store_with_artifacts(tmp_path)
        store.prune(0)
        assert store.load(profile, 2_000, 1) is None  # clean miss, no error
        assert store.misses == 1

    def test_prune_on_missing_directory_is_a_no_op(self, tmp_path):
        store = TraceStore(tmp_path / "never-created")
        assert store.prune(100) == (0, 0)

    def test_prune_empty_store_is_a_no_op(self, tmp_path):
        # An existing-but-empty directory: nothing to evict at any budget,
        # including the degenerate max_bytes=0.
        store = TraceStore(tmp_path / "traces")
        store.directory.mkdir(parents=True)
        assert store.prune(0) == (0, 0)
        assert store.prune(1 << 20) == (0, 0)
        assert store.directory.is_dir()  # prune never removes the directory

    def test_prune_zero_budget_ignores_foreign_files(self, tmp_path):
        # max_bytes=0 means "no artifacts", not "empty directory": files that
        # are not .trace artifacts are none of prune's business.
        store, _, paths = self._store_with_artifacts(tmp_path)
        bystander = store.directory / "README.txt"
        bystander.write_text("not an artifact")
        removed, _ = store.prune(0)
        assert removed == len(paths)
        assert bystander.exists()

    def test_prune_with_tied_timestamps_still_meets_the_budget(self, tmp_path):
        # Identical max(atime, mtime) on every artifact: the LRU order is
        # arbitrary but the contract is not — prune must still evict exactly
        # enough artifacts to fit the budget, deterministically in count.
        store = TraceStore(tmp_path / "traces")
        store.directory.mkdir(parents=True)
        size = 1024
        paths = []
        for index in range(3):
            path = store.directory / (f"{index:064x}.trace")
            path.write_bytes(b"x" * size)
            os.utime(path, (1000.0, 1000.0))
            paths.append(path)
        removed, freed = store.prune(size)  # room for exactly one artifact
        assert removed == 2
        assert freed == 2 * size
        assert sum(path.exists() for path in paths) == 1

    def test_prune_in_flight_tempfile_bytes_do_not_count(self, tmp_path):
        # The budget is over *artifacts*: an in-flight put()'s tempfile must
        # not push the store over budget and trigger spurious evictions.
        store, _, paths = self._store_with_artifacts(tmp_path)
        budget = sum(path.stat().st_size for path in paths)
        tmp = store.directory / ".tmp-inflight.trace"
        tmp.write_bytes(b"x" * (1 << 20))
        os.utime(tmp, (1.0, 1.0))
        assert store.prune(budget) == (0, 0)
        assert all(path.exists() for path in paths)
        assert tmp.exists()

    def test_prune_never_touches_in_flight_put_tempfiles(self, tmp_path):
        # put() streams into a .tmp-*.trace sibling before its atomic rename;
        # a concurrent prune must neither delete it (the writer's os.replace
        # would explode) nor count its bytes toward the budget.
        store, _, paths = self._store_with_artifacts(tmp_path)
        tmp = store.directory / ".tmp-inflight.trace"
        tmp.write_bytes(b"x" * 1024)
        os.utime(tmp, (1.0, 1.0))  # older than every real artifact
        removed, _ = store.prune(0)
        assert removed == len(paths)
        assert tmp.exists()
        assert all(not path.exists() for path in paths)

    def test_prune_rejects_negative_budgets(self, tmp_path):
        store = TraceStore(tmp_path)
        with pytest.raises(ValueError, match="non-negative"):
            store.prune(-1)


class TestTraceStoreInSweeps:
    """The PR's second acceptance pin: a warm store means zero generations."""

    def test_warm_grid_performs_zero_trace_generations(self, tmp_path):
        store_dir = tmp_path / "traces"
        # Earlier tests may have memoized these cells' traces in-process;
        # start from a clean slate so the cold run populates the store.
        clear_workload_memo()
        cold = run_sweep(PROFILES, DESIGNS, trace_store=store_dir, **GRID_KW)
        assert cold.stats.traces_generated == len(PROFILES) * GRID_KW["cores"]

        # Drop the per-process memos so the warm run must re-acquire every
        # trace — from the store, not the generator.
        clear_workload_memo()
        warm = run_sweep(PROFILES, DESIGNS, trace_store=store_dir, **GRID_KW)
        assert warm.stats.traces_generated == 0
        assert warm.stats.traces_loaded == len(PROFILES) * GRID_KW["cores"]
        # Store loads are mmap-backed by default: every loaded trace is a
        # zero-copy view over the artifact, not a private heap copy.
        assert warm.stats.traces_mapped == warm.stats.traces_loaded
        assert warm.summaries == cold.summaries

    def test_store_fed_grid_is_bit_identical_to_generated(self, tmp_path):
        store_dir = tmp_path / "traces"
        clear_workload_memo()
        run_sweep(PROFILES, DESIGNS, trace_store=store_dir, **GRID_KW)
        clear_workload_memo()
        via_store = run_sweep(PROFILES, DESIGNS, trace_store=store_dir, **GRID_KW)
        clear_workload_memo()
        generated = run_sweep(PROFILES, DESIGNS, **GRID_KW)
        assert via_store.summaries == generated.summaries

    def test_parallel_warm_grid_generates_nothing(self, tmp_path):
        store_dir = tmp_path / "traces"
        clear_workload_memo()
        cold = run_sweep(PROFILES, DESIGNS, trace_store=store_dir, **GRID_KW)
        clear_workload_memo()
        warm = run_sweep(
            PROFILES, DESIGNS, trace_store=store_dir, workers=2, **GRID_KW
        )
        assert warm.stats.traces_generated == 0
        assert warm.summaries == cold.summaries

    def test_session_accepts_trace_store(self, tmp_path):
        store = TraceStore(tmp_path / "traces")
        clear_workload_memo()
        first = Session(
            profile="oltp_db2", trace_store=store, **GRID_KW
        ).run(DESIGNS)
        clear_workload_memo()
        second = Session(
            profile="oltp_db2", trace_store=store, **GRID_KW
        ).run(DESIGNS)
        assert store.hits > 0
        assert first == second


class TestSweepValidation:
    def test_duplicate_designs_rejected(self):
        with pytest.raises(ValueError, match="duplicate design"):
            run_sweep(PROFILES, ["baseline", "baseline"], **GRID_KW)

    def test_duplicate_profiles_rejected(self):
        with pytest.raises(ValueError, match="duplicate profile"):
            run_sweep(["oltp_db2", "oltp_db2"], DESIGNS, **GRID_KW)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="no profiles"):
            run_sweep([], DESIGNS, **GRID_KW)
        with pytest.raises(ValueError, match="no designs"):
            run_sweep(PROFILES, [], **GRID_KW)

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run_cells([_cell()], workers=0)


class TestSweepParityAndCache:
    """The PR's acceptance criterion: parallel == serial, warm rerun == free."""

    @pytest.fixture(scope="class")
    def serial_reports(self):
        return run_grid(PROFILES, DESIGNS, **GRID_KW)

    def test_parallel_grid_identical_to_serial(self, serial_reports):
        parallel = run_grid(PROFILES, DESIGNS, workers=4, **GRID_KW)
        assert parallel == serial_reports

    def test_core_level_budget_identical_to_serial(self):
        # More workers than cells and cells wider than the pool they would
        # fill: the budget goes to each cell's core-level fan-out instead.
        kw = dict(scale=0.08, cores=3, instructions_per_core=5_000)
        serial = run_grid(["oltp_db2"], DESIGNS, **kw)
        boosted = run_grid(["oltp_db2"], DESIGNS, workers=8, **kw)
        assert boosted == serial

    def test_grid_matches_per_profile_sessions(self, serial_reports):
        for profile in PROFILES:
            assert Session(profile=profile, **GRID_KW).run(DESIGNS) \
                == serial_reports[profile]

    def test_rerun_is_served_entirely_from_cache(self, tmp_path, serial_reports):
        cache = ResultCache(tmp_path / "cache")
        cold = run_sweep(PROFILES, DESIGNS, workers=4, cache=cache, **GRID_KW)
        assert cold.stats.simulated == len(PROFILES) * len(DESIGNS)
        assert cold.stats.cache_hits == 0

        warm = run_sweep(PROFILES, DESIGNS, workers=4, cache=cache, **GRID_KW)
        assert warm.stats.simulated == 0  # zero simulations on the rerun
        assert warm.stats.cache_hits == len(PROFILES) * len(DESIGNS)
        assert warm.summaries == cold.summaries

        # And the reports built from cached cells match the uncached path.
        assert reports_from_sweep(warm) == serial_reports

    def test_session_uses_the_cache(self, tmp_path, serial_reports):
        cache = ResultCache(tmp_path / "session-cache")
        first = Session(profile="oltp_db2", cache=cache, **GRID_KW).run(DESIGNS)
        hits_before = cache.hits
        second = Session(profile="oltp_db2", cache=cache, **GRID_KW).run(DESIGNS)
        assert cache.hits == hits_before + len(DESIGNS)
        assert first == second == serial_reports["oltp_db2"]

    def test_cache_key_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep(["oltp_db2"], ["baseline"], cache=cache, **GRID_KW)
        bumped = dict(GRID_KW, instructions_per_core=7_000)
        outcome = run_sweep(["oltp_db2"], ["baseline"], cache=cache, **bumped)
        assert outcome.stats.simulated == 1  # different cell, not a stale hit

    def test_backends_do_not_collide_in_the_cache(self, tmp_path):
        # Same grid on two backends: the backend name is in the cell key, so
        # neither run may be served the other's cells — and each backend's
        # own warm rerun must still be free.
        cache = ResultCache(tmp_path / "cache")
        scalar = run_sweep(["oltp_db2"], ["baseline"], cache=cache, **GRID_KW)
        assert scalar.stats.simulated == 1

        reference = run_sweep(
            ["oltp_db2"], ["baseline"], cache=cache, backend="reference",
            **GRID_KW
        )
        assert reference.stats.simulated == 1  # no cross-backend hit
        assert reference.stats.cache_hits == 0

        warm = run_sweep(
            ["oltp_db2"], ["baseline"], cache=cache, backend="reference",
            **GRID_KW
        )
        assert warm.stats.simulated == 0
        assert warm.stats.cache_hits == 1

        # Backends are bit-exact, so everything but the tag agrees.
        fast = dict(scalar.summary("oltp_db2", "baseline"))
        slow = dict(warm.summary("oltp_db2", "baseline"))
        assert fast.pop("backend") == "scalar"
        assert slow.pop("backend") == "reference"
        assert fast == slow

    def test_unknown_backend_rejected_before_simulation(self):
        from repro.registry import UnknownComponentError

        with pytest.raises(UnknownComponentError, match="unknown backend"):
            run_sweep(["oltp_db2"], ["baseline"], backend="vector9000",
                      **GRID_KW)


class TestSweepOutcome:
    def test_outcome_shape(self):
        outcome = run_sweep(["oltp_db2"], DESIGNS, **GRID_KW)
        assert outcome.profiles == ["oltp_db2"]
        assert outcome.designs == DESIGNS
        assert outcome.stats.cells == len(DESIGNS)
        summary = outcome.summary("oltp_db2", "confluence")
        assert summary["cores"] == 2
        assert summary["ipc"] > 0
        assert "speedup" not in summary  # baseline-independent by design
        assert len(outcome.cells) == len(DESIGNS)

    def test_summaries_are_json_round_trippable(self):
        outcome = run_sweep(["oltp_db2"], ["baseline"], **GRID_KW)
        summary = outcome.summary("oltp_db2", "baseline")
        assert json.loads(json.dumps(summary)) == summary

    def test_reports_from_sweep_unknown_baseline_rejected(self):
        outcome = run_sweep(["oltp_db2"], ["confluence"], **GRID_KW)
        with pytest.raises(ValueError, match="not among the designs"):
            reports_from_sweep(outcome, baseline="baseline")

    def test_per_profile_trace_length_defaults(self):
        # Without an explicit instructions_per_core every profile uses its
        # own (scaled) recommendation.
        outcome = run_sweep(["oltp_db2"], ["baseline"], scale=0.08, cores=1)
        expected = get_profile("oltp_db2").scaled(0.08).recommended_trace_instructions
        assert outcome.cells[0].instructions_per_core == expected
