"""Tests for workload profiles, program synthesis and trace generation."""

import dataclasses

import pytest

from repro.isa.instruction import BranchKind, block_address
from repro.workloads import (
    EVALUATION_WORKLOADS,
    WORKLOAD_PROFILES,
    TraceWalker,
    evaluation_profiles,
    generate_trace,
    get_profile,
    synthesize_program,
)


class TestProfiles:
    def test_all_paper_workloads_present(self):
        for name in ("oltp_db2", "oltp_oracle", "dss_qry2", "media_streaming", "web_frontend"):
            assert name in WORKLOAD_PROFILES

    def test_evaluation_groups_cover_paper_categories(self):
        assert set(EVALUATION_WORKLOADS) == {
            "OLTP DB2",
            "OLTP Oracle",
            "DSS Qrys",
            "Media Streaming",
            "Web Frontend",
        }

    def test_get_profile_unknown_name(self):
        with pytest.raises(KeyError):
            get_profile("does_not_exist")

    def test_oracle_has_largest_footprint(self):
        footprints = {
            name: profile.approximate_footprint_kb
            for name, profile in WORKLOAD_PROFILES.items()
        }
        assert max(footprints, key=footprints.get) == "oltp_oracle"

    def test_static_branch_density_targets_match_table2(self):
        # Table 2: DB2 3.6, Oracle 2.5, DSS ~3.4, Media 3.5, Web 4.3.
        assert get_profile("oltp_db2").static_branch_density_target == pytest.approx(3.6, abs=0.1)
        oracle = get_profile("oltp_oracle").static_branch_density_target
        assert oracle == pytest.approx(2.5, abs=0.1)
        web = get_profile("web_frontend").static_branch_density_target
        assert web == pytest.approx(4.3, abs=0.1)

    def test_footprints_exceed_l1i_capacity(self):
        for profile in WORKLOAD_PROFILES.values():
            assert profile.approximate_footprint_kb > 32

    def test_scaled_reduces_functions_and_trace(self):
        profile = get_profile("oltp_db2")
        scaled = profile.scaled(0.5)
        assert scaled.functions_per_layer < profile.functions_per_layer
        assert scaled.recommended_trace_instructions < profile.recommended_trace_instructions

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            get_profile("oltp_db2").scaled(0)

    def test_terminator_fractions_validated(self):
        profile = get_profile("oltp_db2")
        with pytest.raises(ValueError):
            dataclasses.replace(profile, conditional_fraction=0.9)

    def test_evaluation_profiles_scaling(self):
        profiles = evaluation_profiles(scale=0.2)
        assert len(profiles) == 5
        for label, profile in profiles.items():
            full = WORKLOAD_PROFILES[EVALUATION_WORKLOADS[label]]
            assert profile.functions_per_layer <= full.functions_per_layer


class TestSynthesis:
    def test_program_is_deterministic(self, tiny_profile):
        first = synthesize_program(tiny_profile)
        second = synthesize_program(tiny_profile)
        assert first.footprint_bytes == second.footprint_bytes
        assert first.entry_points == second.entry_points

    def test_entry_points_are_layer0_functions(self, tiny_program):
        layer0 = {f.entry for f in tiny_program.cfg.functions_in_layer(0)}
        assert set(tiny_program.entry_points) <= layer0
        assert len(tiny_program.entry_points) == tiny_program.profile.request_types

    def test_every_function_ends_with_return(self, tiny_program):
        for function in tiny_program.cfg.functions:
            assert function.basic_blocks[-1].terminator_kind is BranchKind.RETURN

    def test_basic_blocks_are_contiguous(self, tiny_program):
        for function in tiny_program.cfg.functions:
            blocks = function.basic_blocks
            for previous, current in zip(blocks, blocks[1:], strict=False):
                assert previous.end == current.start

    def test_direct_branch_targets_are_block_starts(self, tiny_program):
        cfg = tiny_program.cfg
        checked = 0
        for function in cfg.functions:
            for block in function.basic_blocks:
                behavior = cfg.behavior_of(block.terminator_pc)
                if behavior.kind in (BranchKind.CONDITIONAL, BranchKind.UNCONDITIONAL):
                    assert cfg.block_starting_at(behavior.taken_target) is not None
                    checked += 1
        assert checked > 0

    def test_calls_target_deeper_layers(self, tiny_program):
        cfg = tiny_program.cfg
        layer_of = {}
        for function in cfg.functions:
            for block in function.basic_blocks:
                layer_of[block.terminator_pc] = function.layer
        for function in cfg.functions:
            for block in function.basic_blocks:
                behavior = cfg.behavior_of(block.terminator_pc)
                if behavior.kind is BranchKind.CALL:
                    callee = cfg.function_at(behavior.taken_target)
                    assert callee is not None
                    assert callee.layer > function.layer

    def test_loop_targets_are_backward_and_local(self, tiny_program):
        cfg = tiny_program.cfg
        for function in cfg.functions:
            starts = [b.start for b in function.basic_blocks]
            for index, block in enumerate(function.basic_blocks):
                behavior = cfg.behavior_of(block.terminator_pc)
                if behavior.is_loop:
                    target_index = starts.index(behavior.taken_target)
                    assert target_index < index
                    assert index - target_index <= 2

    def test_image_matches_cfg_branches(self, tiny_program):
        cfg = tiny_program.cfg
        image = tiny_program.image
        for function in cfg.functions[:20]:
            for block in function.basic_blocks:
                instr = image.instruction_at(block.terminator_pc)
                assert instr is not None and instr.is_branch

    def test_static_branch_density_close_to_target(self, tiny_program):
        density = tiny_program.image.branch_density()
        target = tiny_program.profile.static_branch_density_target
        assert abs(density - target) / target < 0.35


class TestTraceGeneration:
    def test_trace_reaches_requested_length(self, tiny_program):
        trace = generate_trace(tiny_program, 5_000, seed=1)
        assert trace.instruction_count >= 5_000

    def test_trace_is_deterministic_per_seed(self, tiny_program):
        first = generate_trace(tiny_program, 5_000, seed=9)
        second = generate_trace(tiny_program, 5_000, seed=9)
        assert len(first) == len(second)
        assert all(a == b for a, b in zip(first.records, second.records, strict=True))

    def test_different_seeds_differ(self, tiny_program):
        first = generate_trace(tiny_program, 5_000, seed=1)
        second = generate_trace(tiny_program, 5_000, seed=2)
        assert any(a != b for a, b in zip(first.records, second.records, strict=True))

    def test_records_follow_control_flow(self, tiny_trace):
        for record in list(tiny_trace.records)[:2000]:
            if record.branch_pc is None:
                continue
            assert record.start <= record.branch_pc
            if record.kind is BranchKind.CONDITIONAL and not record.taken:
                assert record.next_pc == record.fallthrough

    def test_taken_branch_fraction_reasonable(self, tiny_trace):
        stats = tiny_trace.statistics()
        assert 0.4 < stats.taken_branch_fraction < 0.95

    def test_block_stream_has_no_consecutive_duplicates(self, tiny_trace):
        previous = None
        for block in tiny_trace.block_stream():
            assert block != previous
            previous = block

    def test_statistics_consistency(self, tiny_trace):
        stats = tiny_trace.statistics()
        assert stats.instruction_count == tiny_trace.instruction_count
        assert stats.fetch_region_count == len(tiny_trace)
        assert stats.taken_branch_count <= stats.branch_count
        assert stats.unique_taken_branches <= stats.taken_branch_count

    def test_branch_density_positive(self, tiny_trace):
        densities = tiny_trace.branch_density()
        assert densities["static"] > 0
        assert densities["dynamic"] > 0

    def test_working_set_exceeds_l1i(self, small_trace):
        stats = small_trace.statistics()
        assert stats.unique_blocks > 512  # larger than the 32 KB L1-I

    def test_walker_counts_requests_and_operations(self, tiny_program):
        walker = TraceWalker(tiny_program, seed=4)
        walker.run(5_000)
        assert walker.requests_completed > 0
        assert walker.operations_completed >= walker.requests_completed

    def test_trace_head_and_concatenate(self, tiny_trace):
        from repro.workloads.trace import Trace

        head = tiny_trace.head(10)
        assert len(head) == 10
        combined = Trace.concatenate([head, head])
        assert len(combined) == 20

    def test_record_block_listing(self, tiny_trace):
        record = tiny_trace[0]
        blocks = record.blocks()
        assert blocks[0] == block_address(record.start)
        assert blocks[-1] == block_address(record.last_instruction)
