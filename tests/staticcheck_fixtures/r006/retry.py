"""Seeded R006 violations: unbounded retry and nondeterministic jitter.

The module is named ``retry`` so it falls inside R006's scope without
touching R002's (``workloads``/``sweep``); every construct below must be
flagged by R006 and only R006.
"""

import random
import time


def fetch_forever(connect):
    """Unbounded retry loop: no attempt bound, just spin-and-sleep."""
    while True:
        try:
            return connect()
        except OSError:
            time.sleep(1.0)


def backoff_with_jitter(attempt):
    """Nondeterministic backoff: global-RNG jitter inside the sleep."""
    time.sleep(0.1 * attempt + random.random())
