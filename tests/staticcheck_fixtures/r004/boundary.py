"""R004 fixture: a raw memoryview shipped across a pickle boundary."""

from concurrent.futures import ProcessPoolExecutor


def ship_view(payload: bytes, worker) -> object:
    view = memoryview(payload)
    with ProcessPoolExecutor() as pool:
        # seeded violation: the view cannot pickle.
        future = pool.submit(worker, view)
    return future.result()
