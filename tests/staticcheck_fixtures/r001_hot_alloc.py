"""R001 fixture: allocation inside a @hot_loop steady state."""

from repro.staticcheck.markers import hot_loop


@hot_loop
def hot_kernel(records: list) -> int:
    # Prelude allocation is fine — hoisting is the discipline.
    scratch = {"count": 0}
    total = 0
    for record in records:
        window = [record, record]  # seeded violation: list display per iteration
        total += len(window) + scratch["count"]
    return total
