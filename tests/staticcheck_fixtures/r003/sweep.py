"""R003 fixture: a tracked dataclass field the cache key never sees."""

from dataclasses import dataclass


@dataclass(frozen=True)
class DesignSpec:
    name: str
    btb: str
    secret_knob: int = 0  # seeded violation: never reaches cell_key


def cell_key(spec: "DesignSpec") -> dict:
    return {"name": spec.name, "btb": spec.btb}
