"""Negative control: nothing here violates any rule."""

from repro.staticcheck.markers import hot_loop


@hot_loop
def hot_sum(values: list) -> int:
    total = 0
    for value in values:
        total += value
    return total
