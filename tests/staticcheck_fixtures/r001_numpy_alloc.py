"""R001 fixture: numpy allocation inside a ``@hot_loop`` lockstep kernel.

The seeded violation is the ``np.equal`` call in the round loop *without*
``out=`` — it allocates a fresh boolean array every iteration.  The
allow-pattern (a buffer preallocated in the prelude, filled in place via
``out=``) is what the real batch kernel uses.
"""

import numpy as np

from repro.staticcheck.markers import hot_loop


@hot_loop
def lockstep(tags, keys, rounds):
    hits = np.zeros(len(keys), dtype=bool)  # prelude allocation is fine
    for _ in range(rounds):
        equal = np.equal(tags, keys)  # seeded violation: fresh array per round
        hits |= equal.any(axis=1)
    return hits
