"""Seeded violation: registers a component, but the package __init__
never imports this module, so the registration can never run."""

from repro.registry import BTB_REGISTRY


@BTB_REGISTRY.register("fixture_widget")
def build_widget(ctx, **params):
    return None
