"""R005 fixture package: forgets to import its registering module."""
