"""R002 fixture: nondeterminism in (fixture) trace/seed code."""

import random
import time


def deal_seeds(count: int) -> list:
    # seeded violation: the module-level RNG is unseeded.
    return [random.randint(0, 1 << 31) for _ in range(count)]


def stamp_trace(trace: dict) -> dict:
    # seeded violation: wall clock flows into the artifact.
    trace["generated_at"] = time.time()
    return trace


def fan_out(cores: set) -> list:
    # seeded violation: set iteration order is hash order.
    return [core for core in {c for c in cores}]
