"""Tests for the reporting pipeline (:mod:`repro.report`).

Collection (mixed-schema trajectories, sweep files, journals), the bundle
artifact contract (content addressing, checksum quarantine), the per-backend
regression gate, and the renderers — including golden-file snapshots of the
HTML and markdown output.  Regenerate the snapshots with
``REPRO_UPDATE_GOLDEN=1 python -m pytest tests/test_report.py``.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path

import pytest

from repro.api import RunReport, load_reports, save_reports
from repro.report import (
    ReportBundle,
    bundle_checksum,
    check_bundle,
    collect_bundle,
    format_check,
    load_bundle,
    regression_rows,
    render_bundle,
    renderer_names,
    summarize_journals,
)
from repro.report.svg import bar_chart, line_chart
from repro.sweep import CorruptArtifactWarning

GOLDEN_DIR = Path(__file__).parent / "golden"


# --------------------------------------------------------------------------- #
# Fixture payloads: one trajectory point per recorded schema version
# --------------------------------------------------------------------------- #

def _schema1_point() -> dict:
    """A point as the original bench layout recorded it."""
    return {
        "schema": 1,
        "bench": "kernel_hotloop",
        "config": {"profile": "oltp_db2", "scale": 0.1, "instructions": 20000,
                   "seed": 3, "repeats": 2},
        "designs": [
            {"design": "baseline", "regions_per_sec": 50_000.0, "ipc": 0.70},
            {"design": "confluence", "regions_per_sec": 30_000.0, "ipc": 0.74},
        ],
        "record_path": {"design": "baseline", "regions_per_sec": 20_000.0,
                        "ipc": 0.70},
        "packed_speedup": 2.5,
    }


def _schema2_point(scale: float = 1.0) -> dict:
    return {
        "schema": 2,
        "bench": "kernel_hotloop",
        "config": {"profile": "oltp_db2", "scale": 0.1, "instructions": 20000,
                   "seed": 3, "repeats": 2, "backend": "scalar"},
        "designs": [
            {"design": "baseline", "backend": "scalar",
             "regions_per_sec": 52_000.0 * scale, "ipc": 0.70},
            {"design": "confluence", "backend": "scalar",
             "regions_per_sec": 31_000.0 * scale, "ipc": 0.74},
        ],
        "backends": [
            {"backend": "reference", "design": "baseline",
             "regions_per_sec": 21_000.0 * scale, "ipc": 0.70},
            {"backend": "scalar", "design": "baseline",
             "regions_per_sec": 52_000.0 * scale, "ipc": 0.70},
        ],
        "speedup_over_reference": 2.48,
    }


def _schema3_point(scale: float = 1.0) -> dict:
    point = _schema2_point(scale)
    point["schema"] = 3
    point["scenario"] = {
        "name": "consolidated_oltp_dss", "cores": 4,
        "regions_per_sec": 40_000.0 * scale, "ipc": 0.72,
    }
    return point


def _write_trajectory(path: Path, points: list) -> Path:
    path.write_text(json.dumps({"bench": "kernel_hotloop", "points": points}))
    return path


def _sweep_report(profile: str = "oltp_db2") -> RunReport:
    def summary(design: str, ipc: float, speedup: float) -> dict:
        return {
            "design": design, "instructions": 40_000, "cycles": 57_000,
            "ipc": ipc, "speedup": speedup, "btb_mpki": 11.2 if design == "baseline" else 1.3,
            "l1i_mpki": 7.4, "area_mm2": 0.62,
        }

    return RunReport(
        profile=profile, scale=0.1, cores=4, instructions_per_core=10_000,
        baseline="baseline", order=["baseline", "confluence"],
        results={
            "baseline": summary("baseline", 0.70, 1.0),
            "confluence": summary("confluence", 0.78, 1.114),
        },
    )


def _scenario_report() -> RunReport:
    report = _sweep_report("consolidated_oltp_dss")
    for design, summary in report.results.items():
        summary["per_profile"] = {
            "oltp_db2": {"cores": 2, "ipc": 0.68 if design == "baseline" else 0.75,
                         "btb_mpki": 12.0, "l1i_mpki": 8.1},
            "dss_qry2": {"cores": 2, "ipc": 0.73 if design == "baseline" else 0.80,
                         "btb_mpki": 9.9, "l1i_mpki": 6.6},
        }
    return report


def _fixture_bundle(tmp_path: Path) -> ReportBundle:
    """A fully populated bundle built from fixture artifacts on disk.

    Collected with relative paths (chdir into ``tmp_path``) so the bundle's
    provenance strings — and therefore the golden snapshots — are stable
    across runs.
    """
    _write_trajectory(
        tmp_path / "bench.json",
        [_schema1_point(), _schema2_point(), _schema3_point(0.9)],
    )
    save_reports(
        tmp_path / "sweep.report.json",
        {"oltp_db2": _sweep_report(), "consolidated_oltp_dss": _scenario_report()},
        stats={"cells": 4, "simulated": 2, "cache_hits": 2, "retried": 1},
    )
    previous = os.getcwd()
    os.chdir(tmp_path)
    try:
        return collect_bundle(
            bench_paths=["bench.json"], sweep_paths=["sweep.report.json"],
            title="Fixture report",
        )
    finally:
        os.chdir(previous)


# --------------------------------------------------------------------------- #
# Collection
# --------------------------------------------------------------------------- #

class TestCollect:
    def test_mixed_schema_points_normalize_to_one_vocabulary(self, tmp_path):
        bench = _write_trajectory(
            tmp_path / "bench.json",
            [_schema1_point(), _schema2_point(), _schema3_point()],
        )
        bundle = collect_bundle(bench_paths=[bench])
        assert len(bundle.trajectory) == 3
        # The schema-1 point was migrated: retired names gone, backends table
        # synthesized from the record-path row + the scalar design row.
        first = bundle.trajectory[0]
        assert first["schema"] == 2
        assert "packed_speedup" not in first and "record_path" not in first
        backends = {row["backend"] for row in first["backends"]}
        assert backends == {"reference", "scalar"}
        assert first["speedup_over_reference"] == 2.5
        # Schema 2/3 pass through untouched.
        assert bundle.trajectory[1] == _schema2_point()
        assert bundle.trajectory[2] == _schema3_point()

    def test_empty_trajectory_collects_as_zero_points(self, tmp_path):
        bench = _write_trajectory(tmp_path / "empty.json", [])
        bundle = collect_bundle(bench_paths=[bench])
        assert bundle.trajectory == []
        assert bundle.newest_point is None
        assert bundle.baseline is None

    def test_missing_named_file_raises(self, tmp_path):
        with pytest.raises(OSError):
            collect_bundle(bench_paths=[tmp_path / "nope.json"])

    def test_previous_point_is_the_default_baseline(self, tmp_path):
        bench = _write_trajectory(
            tmp_path / "bench.json", [_schema2_point(), _schema3_point(0.9)]
        )
        bundle = collect_bundle(bench_paths=[bench])
        assert bundle.baseline == _schema2_point()
        assert "previous point" in bundle.baseline_source

    def test_explicit_baseline_file_wins(self, tmp_path):
        bench = _write_trajectory(
            tmp_path / "bench.json", [_schema2_point(), _schema3_point(0.9)]
        )
        base = _write_trajectory(tmp_path / "base.json", [_schema2_point(1.1)])
        bundle = collect_bundle(bench_paths=[bench], baseline_path=base)
        assert bundle.baseline == _schema2_point(1.1)
        assert "base.json" in bundle.baseline_source

    def test_empty_baseline_file_raises(self, tmp_path):
        bench = _write_trajectory(tmp_path / "bench.json", [_schema2_point()])
        base = _write_trajectory(tmp_path / "base.json", [])
        with pytest.raises(ValueError, match="has no points"):
            collect_bundle(bench_paths=[bench], baseline_path=base)

    def test_sweep_stats_sum_into_resilience(self, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        save_reports(first, {"oltp_db2": _sweep_report()},
                     stats={"cells": 4, "simulated": 4})
        save_reports(second, {"dss_qry2": _sweep_report("dss_qry2")},
                     stats={"cells": 4, "simulated": 0, "cache_hits": 4})
        bundle = collect_bundle(sweep_paths=[first, second])
        assert bundle.resilience["cells"] == 8
        assert bundle.resilience["simulated"] == 4
        assert bundle.resilience["cache_hits"] == 4
        assert [sweep["source"] for sweep in bundle.sweeps] == [str(first), str(second)]

    def test_journal_counters_join_resilience(self, tmp_path):
        journals = tmp_path / "journals"
        journals.mkdir()
        (journals / "run.jsonl").write_text(
            '{"schema": 1, "sweep": "abc", "cells": 3}\n'
            '{"key": "k1", "summary": {}}\n'
            '{"key": "k2", "summary": {}}\n'
            "not json\n"
        )
        bench = _write_trajectory(tmp_path / "bench.json", [_schema2_point()])
        bundle = collect_bundle(bench_paths=[bench], journal_dir=journals)
        assert bundle.resilience["journals"] == 1
        assert bundle.resilience["journal_cells_expected"] == 3
        assert bundle.resilience["journal_cells_recorded"] == 2

    def test_missing_journal_dir_is_zero_journals(self, tmp_path):
        assert summarize_journals(tmp_path / "missing") == {
            "journals": 0, "journal_cells_expected": 0,
            "journal_cells_recorded": 0,
        }


# --------------------------------------------------------------------------- #
# Saved sweep reports (the sweep --save-report artifact)
# --------------------------------------------------------------------------- #

class TestSavedSweepReports:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "sweep.json"
        saved = save_reports(path, {"oltp_db2": _sweep_report()},
                             stats={"cells": 4})
        assert saved == path
        reports, stats = load_reports(path)
        assert reports["oltp_db2"].to_dict() == _sweep_report().to_dict()
        assert stats == {"cells": 4}

    def test_accepts_redirected_cli_json(self, tmp_path):
        # `python -m repro sweep --json > file` emits {"reports", "stats"}
        # without the kind/schema envelope; load_reports takes both.
        path = tmp_path / "stdout.json"
        path.write_text(json.dumps({
            "reports": {"oltp_db2": _sweep_report().to_dict()},
            "stats": {"cells": 2},
        }))
        reports, stats = load_reports(path)
        assert reports["oltp_db2"].cores == 4
        assert stats == {"cells": 2}

    def test_wrong_schema_refused(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({
            "schema": 99, "kind": "repro-sweep-reports",
            "reports": {}, "stats": {},
        }))
        with pytest.raises(ValueError, match="schema"):
            load_reports(path)

    def test_wrong_layout_refused(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"whatever": 1}))
        with pytest.raises(ValueError):
            load_reports(path)


# --------------------------------------------------------------------------- #
# Bundle persistence: content addressing + corruption quarantine
# --------------------------------------------------------------------------- #

class TestBundleStore:
    def test_save_is_content_addressed_and_idempotent(self, tmp_path):
        bundle = _fixture_bundle(tmp_path)
        store = tmp_path / "store"
        first = bundle.save(store)
        second = bundle.save(store)
        assert first == second
        assert list(store.glob("*.bundle.json")) == [first]

    def test_round_trip(self, tmp_path):
        bundle = _fixture_bundle(tmp_path)
        path = bundle.save(tmp_path / "store")
        loaded = load_bundle(path)
        assert loaded is not None
        assert loaded.to_dict() == bundle.to_dict()

    def test_missing_bundle_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_bundle(tmp_path / "absent.bundle.json")

    def test_corrupt_bundle_is_quarantined(self, tmp_path):
        bundle = _fixture_bundle(tmp_path)
        path = bundle.save(tmp_path / "store")
        document = json.loads(path.read_text())
        document["payload"]["title"] = "tampered"
        path.write_text(json.dumps(document))
        with pytest.warns(CorruptArtifactWarning, match="checksum"):
            assert load_bundle(path) is None
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()

    def test_unparsable_bundle_is_quarantined(self, tmp_path):
        path = tmp_path / "garbled.bundle.json"
        path.write_text("{not json")
        with pytest.warns(CorruptArtifactWarning, match="unreadable"):
            assert load_bundle(path) is None
        assert path.with_name(path.name + ".corrupt").exists()

    def test_wrong_schema_is_quarantined(self, tmp_path):
        payload = {"schema": 99, "kind": "repro-report-bundle"}
        path = tmp_path / "future.bundle.json"
        path.write_text(json.dumps(
            {"checksum": bundle_checksum(payload), "payload": payload}
        ))
        with pytest.warns(CorruptArtifactWarning, match="schema"):
            assert load_bundle(path) is None

    def test_intact_load_does_not_warn(self, tmp_path):
        bundle = _fixture_bundle(tmp_path)
        path = bundle.save(tmp_path / "store")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert load_bundle(path) is not None


# --------------------------------------------------------------------------- #
# The regression gate
# --------------------------------------------------------------------------- #

class TestRegressionGate:
    def test_per_backend_rows(self):
        rows = regression_rows(_schema3_point(0.9), _schema2_point(), 0.5)
        assert [row["backend"] for row in rows] == ["reference", "scalar"]
        assert all(row["ok"] for row in rows)
        assert rows[0]["ratio"] == pytest.approx(0.9)

    def test_regression_beyond_tolerance_flags(self):
        rows = regression_rows(_schema2_point(0.4), _schema2_point(), 0.5)
        assert not any(row["ok"] for row in rows)

    def test_tolerance_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            regression_rows(_schema2_point(), _schema2_point(), 0.0)

    def test_no_shared_backends_raises(self):
        lonely = _schema2_point()
        lonely["backends"] = [
            {"backend": "exotic", "regions_per_sec": 1.0},
        ]
        with pytest.raises(ValueError, match="no shared backends"):
            regression_rows(lonely, _schema2_point(), 0.5)

    def test_gate_refuses_empty_trajectory(self):
        with pytest.raises(ValueError, match="no trajectory points"):
            check_bundle(ReportBundle(), 0.5)

    def test_gate_refuses_missing_baseline(self, tmp_path):
        bench = _write_trajectory(tmp_path / "one.json", [_schema2_point()])
        bundle = collect_bundle(bench_paths=[bench])
        with pytest.raises(ValueError, match="no baseline"):
            check_bundle(bundle, 0.5)

    def test_format_check_names_the_verdicts(self, tmp_path):
        bundle = _fixture_bundle(tmp_path)
        rows = check_bundle(bundle, 0.5)
        text = format_check(rows, 0.5, bundle.baseline_source)
        assert "tolerance 0.50x" in text
        assert "ok" in text and "REGRESSED" not in text


# --------------------------------------------------------------------------- #
# Renderers
# --------------------------------------------------------------------------- #

def _assert_matches_golden(name: str, rendered: str) -> None:
    golden = GOLDEN_DIR / name
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden.write_text(rendered, encoding="utf-8")
    assert golden.exists(), (
        f"golden file {golden} missing — regenerate with REPRO_UPDATE_GOLDEN=1"
    )
    assert rendered == golden.read_text(encoding="utf-8")


class TestRenderers:
    def test_registry_lists_builtin_formats(self):
        assert set(renderer_names()) >= {"html", "md"}

    def test_unknown_format_raises_with_catalog(self, tmp_path):
        from repro.registry import UnknownComponentError

        with pytest.raises(UnknownComponentError, match="html"):
            render_bundle(_fixture_bundle(tmp_path), "pdf")

    def test_html_is_self_contained(self, tmp_path):
        html = render_bundle(_fixture_bundle(tmp_path), "html", tolerance=0.5)
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html and "<style>" in html
        # Self-contained: no scripts, no external fetches of any kind.
        assert "<script" not in html
        assert "http" not in html.replace("http://www.w3.org/2000/svg", "")
        # The paper-shaped sections are all present.
        assert "Perf trajectory" in html
        assert "Regression deltas" in html
        assert "speedup matrix" in html
        assert "Per-profile breakdown" in html
        assert "Resilience counters" in html

    def test_rendering_is_deterministic(self, tmp_path):
        bundle = _fixture_bundle(tmp_path)
        assert render_bundle(bundle, "html") == render_bundle(bundle, "html")
        assert render_bundle(bundle, "md") == render_bundle(bundle, "md")

    def test_empty_bundle_renders_the_absence(self):
        html = render_bundle(ReportBundle(title="Empty"), "html")
        assert "No trajectory points were collected." in html
        assert "No sweep reports were collected." in html
        md = render_bundle(ReportBundle(title="Empty"), "md")
        assert "_No trajectory points were collected._" in md

    def test_markdown_tables_escape_pipes(self, tmp_path):
        bundle = _fixture_bundle(tmp_path)
        bundle.sweeps[0]["reports"]["oltp_db2"]["results"]["baseline"]["design"] = "a|b"
        md = render_bundle(bundle, "md")
        assert "a\\|b" in md

    def test_golden_html_snapshot(self, tmp_path):
        _assert_matches_golden(
            "report.html",
            render_bundle(_fixture_bundle(tmp_path), "html", tolerance=0.5),
        )

    def test_golden_markdown_snapshot(self, tmp_path):
        _assert_matches_golden(
            "report.md",
            render_bundle(_fixture_bundle(tmp_path), "md", tolerance=0.5),
        )


class TestSvg:
    def test_line_chart_breaks_on_gaps(self):
        svg = line_chart(
            {"scalar": [1.0, None, 3.0], "reference": [0.5, 0.6, 0.7]},
            title="t",
        )
        # The gapped series draws no polyline (isolated points only); the
        # full series draws one.
        assert svg.count("<polyline") == 1
        assert svg.count("<circle") == 5

    def test_line_chart_rejects_ragged_series(self):
        with pytest.raises(ValueError, match="lengths differ"):
            line_chart({"a": [1.0], "b": [1.0, 2.0]}, title="t")

    def test_bar_chart_labels_every_item(self):
        svg = bar_chart([("baseline", 10.0), ("confluence", 5.0)], title="t",
                        unit="r/s")
        assert "baseline" in svg and "confluence" in svg
        assert svg.count("<rect") == 2

    def test_charts_escape_markup(self):
        svg = line_chart({"<evil>": [1.0]}, title="a<b")
        assert "<evil>" not in svg and "&lt;evil&gt;" in svg
