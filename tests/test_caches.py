"""Tests for the cache substrate (generic SRAM, L1-I, LLC, hierarchy)."""

import pytest

from repro.caches import (
    HierarchyLatencies,
    InstructionCache,
    L1IConfig,
    LLCConfig,
    MemoryHierarchy,
    SetAssociativeCache,
    SharedLLC,
)


class TestSetAssociativeCache:
    def test_capacity(self):
        cache = SetAssociativeCache(sets=4, ways=2)
        assert cache.capacity == 8

    def test_requires_power_of_two_sets(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(sets=3, ways=2)

    def test_hit_and_miss_statistics(self):
        cache = SetAssociativeCache(sets=2, ways=2)
        cache.insert(0)
        assert cache.lookup(0) is None  # present, but no payload stored
        hit, _ = cache.access(0)
        assert hit
        hit, _ = cache.access(4)
        assert not hit
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1

    def test_lru_eviction_order(self):
        cache = SetAssociativeCache(sets=1, ways=2)
        cache.insert(1)
        cache.insert(2)
        cache.access(1)          # 2 becomes LRU
        evicted = cache.insert(3)
        assert evicted == 2
        assert cache.contains(1)
        assert not cache.contains(2)

    def test_eviction_callback_receives_key_and_payload(self):
        seen = []
        cache = SetAssociativeCache(sets=1, ways=1, on_eviction=lambda k, p: seen.append((k, p)))
        cache.insert(1, "a")
        cache.insert(2, "b")
        assert seen == [(1, "a")]

    def test_reinsert_refreshes_without_eviction(self):
        cache = SetAssociativeCache(sets=1, ways=2)
        cache.insert(1, "old")
        cache.insert(2)
        assert cache.insert(1, "new") is None
        assert cache.peek(1) == "new"

    def test_invalidate_and_occupancy(self):
        cache = SetAssociativeCache(sets=2, ways=2)
        cache.insert(0)
        cache.insert(1)
        assert len(cache) == 2
        assert cache.invalidate(0)
        assert not cache.invalidate(0)
        assert len(cache) == 1

    def test_index_shift_spreads_aligned_keys(self):
        cache = SetAssociativeCache(sets=4, ways=1, index_shift=6)
        for block in range(4):
            cache.insert(block * 64)
        assert len(cache) == 4  # each lands in its own set

    def test_touch_and_clear(self):
        cache = SetAssociativeCache(sets=1, ways=2)
        cache.insert(1)
        cache.insert(2)
        assert cache.touch(1)
        cache.insert(3)
        assert cache.contains(1)
        cache.clear()
        assert len(cache) == 0


class _Listener:
    def __init__(self):
        self.fills = []
        self.evictions = []

    def on_block_fill(self, block, demand):
        self.fills.append((block, demand))

    def on_block_evict(self, block):
        self.evictions.append(block)


class TestInstructionCache:
    def test_geometry_matches_table1(self):
        config = L1IConfig()
        assert config.block_count == 512
        assert config.sets == 128

    def test_access_does_not_fill(self):
        l1i = InstructionCache()
        assert not l1i.access(0x1000)
        assert not l1i.contains(0x1000)

    def test_fill_and_hit(self):
        l1i = InstructionCache()
        l1i.fill(0x1000)
        assert l1i.access(0x1004)  # same block

    def test_fill_listeners_observe_fills_and_evictions(self):
        l1i = InstructionCache(L1IConfig(size_bytes=4 * 64, associativity=1))
        listener = _Listener()
        l1i.add_listener(listener)
        for index in range(5):
            l1i.fill(index * 64 * 4, demand=(index % 2 == 0))  # map to same set
        assert len(listener.fills) == 5
        assert len(listener.evictions) >= 1

    def test_fill_counters_distinguish_demand_and_prefetch(self):
        l1i = InstructionCache()
        l1i.fill(0x0, demand=True)
        l1i.fill(0x40, demand=False)
        assert l1i.demand_fills == 1
        assert l1i.prefetch_fills == 1

    def test_refill_of_resident_block_is_not_counted(self):
        l1i = InstructionCache()
        l1i.fill(0x0)
        l1i.fill(0x0)
        assert l1i.demand_fills == 1

    def test_invalidate_notifies_listeners(self):
        l1i = InstructionCache()
        listener = _Listener()
        l1i.add_listener(listener)
        l1i.fill(0x1000)
        assert l1i.invalidate(0x1000)
        assert listener.evictions == [0x1000]

    def test_capacity_is_bounded(self, tiny_trace):
        l1i = InstructionCache()
        for record in tiny_trace.records:
            for block in record.blocks():
                l1i.fill(block)
        assert len(l1i) <= l1i.block_capacity


class TestSharedLLC:
    def test_round_trip_latency_is_positive_and_stable(self):
        llc = SharedLLC()
        assert llc.round_trip_latency_cycles > LLCConfig().bank_hit_latency_cycles
        assert llc.round_trip_latency_cycles == llc.round_trip_latency_cycles

    def test_total_capacity(self):
        config = LLCConfig(slice_kb_per_core=512, cores=16)
        assert config.total_bytes == 8 * 1024 * 1024
        assert config.total_blocks == 131072

    def test_reserve_region_accounting(self):
        llc = SharedLLC()
        region = llc.reserve_region("history", 1000)
        assert region.blocks == 1000
        assert llc.reserved_blocks == 1000
        assert llc.effective_data_blocks == llc.config.total_blocks - 1000
        assert 0 < llc.reserved_fraction < 1

    def test_reserve_beyond_capacity_rejected(self):
        llc = SharedLLC(LLCConfig(slice_kb_per_core=64, cores=1))
        with pytest.raises(ValueError):
            llc.reserve_region("too_big", llc.config.total_blocks + 1)

    def test_metadata_accesses_tracked(self):
        llc = SharedLLC()
        llc.reserve_region("meta", 10)
        llc.read_metadata("meta")
        llc.write_metadata("meta", blocks=2)
        assert llc.region("meta").reads == 1
        assert llc.region("meta").writes == 2
        assert llc.metadata_reads == 1
        assert llc.metadata_writes == 2

    def test_instruction_fetch_counted(self):
        llc = SharedLLC()
        latency = llc.fetch_instruction_block(0x1000)
        assert latency == llc.round_trip_latency_cycles
        assert llc.instruction_reads == 1


class TestMemoryHierarchy:
    def test_demand_fetch_miss_then_hit(self):
        hierarchy = MemoryHierarchy()
        miss_latency = hierarchy.demand_fetch(0x1000)
        hit_latency = hierarchy.demand_fetch(0x1000)
        assert miss_latency > hit_latency
        assert hit_latency == hierarchy.l1i.config.hit_latency_cycles

    def test_prefetch_installs_block(self):
        hierarchy = MemoryHierarchy()
        latency = hierarchy.prefetch(0x2000)
        assert latency > 0
        assert hierarchy.l1i.contains(0x2000)
        assert hierarchy.prefetch(0x2000) == 0

    def test_latencies_summary(self):
        hierarchy = MemoryHierarchy()
        latencies = hierarchy.latencies
        assert isinstance(latencies, HierarchyLatencies)
        assert latencies.llc_round_trip_cycles > latencies.l1i_hit_cycles

    def test_uses_provided_components(self):
        l1i = InstructionCache()
        llc = SharedLLC()
        hierarchy = MemoryHierarchy(l1i=l1i, llc=llc)
        assert hierarchy.l1i is l1i
        assert hierarchy.llc is llc
