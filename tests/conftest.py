"""Shared fixtures: tiny synthetic workloads so the suite stays fast."""

from __future__ import annotations

import pytest

from repro.workloads import get_profile, generate_trace, synthesize_program
from repro.workloads.profiles import WorkloadProfile


@pytest.fixture(scope="session")
def tiny_profile() -> WorkloadProfile:
    """A heavily scaled-down OLTP profile for unit/integration tests."""
    return get_profile("oltp_db2").scaled(0.08)


@pytest.fixture(scope="session")
def tiny_program(tiny_profile):
    return synthesize_program(tiny_profile)


@pytest.fixture(scope="session")
def tiny_trace(tiny_program):
    return generate_trace(tiny_program, 30_000, seed=3)


@pytest.fixture(scope="session")
def small_program():
    """A slightly larger workload for integration-style checks."""
    profile = get_profile("web_frontend").scaled(0.3)
    return synthesize_program(profile)


@pytest.fixture(scope="session")
def small_trace(small_program):
    return generate_trace(small_program, 150_000, seed=5)
