"""Shared fixtures: tiny synthetic workloads so the suite stays fast.

Also home of the ``--backend`` test option: tests that take the
``sim_backend`` fixture run once per registered simulation backend
(:mod:`repro.backends`), and CI's backend-parity matrix legs narrow the
parameterization with e.g. ``pytest --backend reference``.
"""

from __future__ import annotations

import pytest

from repro.workloads import get_profile, generate_trace, synthesize_program
from repro.workloads.profiles import WorkloadProfile


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--backend",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict the sim_backend fixture to these simulation backends; "
             "repeatable (default: every backend in "
             "repro.backends.BACKEND_REGISTRY)",
    )


def pytest_generate_tests(metafunc: pytest.Metafunc) -> None:
    if "sim_backend" in metafunc.fixturenames:
        from repro.backends import backend_names, get_backend

        selected = metafunc.config.getoption("backend") or backend_names()
        params = []
        for name in selected:
            impl = get_backend(name)  # unknown names fail collection
            if impl.available():
                params.append(name)
            else:
                # Registered but missing its optional dependency (the batch
                # backend without numpy): its legs skip with the reason,
                # they do not fail — the no-numpy CI job runs this way.
                params.append(pytest.param(name, marks=pytest.mark.skip(
                    reason=impl.unavailable_reason()
                )))
        metafunc.parametrize("sim_backend", params)


@pytest.fixture(scope="session")
def tiny_profile() -> WorkloadProfile:
    """A heavily scaled-down OLTP profile for unit/integration tests."""
    return get_profile("oltp_db2").scaled(0.08)


@pytest.fixture(scope="session")
def tiny_program(tiny_profile):
    return synthesize_program(tiny_profile)


@pytest.fixture(scope="session")
def tiny_trace(tiny_program):
    return generate_trace(tiny_program, 30_000, seed=3)


@pytest.fixture(scope="session")
def small_program():
    """A slightly larger workload for integration-style checks."""
    profile = get_profile("web_frontend").scaled(0.3)
    return synthesize_program(profile)


@pytest.fixture(scope="session")
def small_trace(small_program):
    return generate_trace(small_program, 150_000, seed=5)
