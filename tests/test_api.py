"""Tests for the registry-driven design API: registries, DesignSpec,
Session/RunReport, and the parallel CMP runner."""

from __future__ import annotations

import pytest

from repro import (
    BTB_REGISTRY,
    PREFETCHER_REGISTRY,
    ChipMultiprocessor,
    DesignSpec,
    RunReport,
    Session,
    build_btb,
    build_design,
    design_from_spec,
    register_design_point,
    resolve_design,
)
from repro.branch.btb_base import BaseBTB, BTBEntry, BTBLookupResult
from repro.core.designs import DESIGN_POINTS, DesignPoint
from repro.registry import Registry


# --------------------------------------------------------------------------- #
# Registries
# --------------------------------------------------------------------------- #

class TestRegistry:
    def test_duplicate_registration_rejected(self):
        registry = Registry("widget")
        registry.register("w", lambda ctx: None)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("w", lambda ctx: None)

    def test_overwrite_allows_replacement(self):
        registry = Registry("widget")
        registry.register("w", lambda ctx: 1)
        registry.register("w", lambda ctx: 2, overwrite=True)
        assert registry.get("w")(None) == 2

    def test_duplicate_builtin_btb_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            BTB_REGISTRY.register("conventional", lambda ctx: None)

    def test_unknown_component_error_lists_sorted_names(self):
        with pytest.raises(KeyError, match="unknown BTB design 'warp_core'"):
            build_btb("warp_core")
        try:
            BTB_REGISTRY.get("warp_core")
        except KeyError as error:
            listing = str(error)
        names = listing.split("known: ")[1].split(", ")
        assert names == sorted(names)
        assert "airbtb" in names and "conventional" in names

    def test_unknown_prefetcher_rejected(self):
        with pytest.raises(KeyError, match="unknown prefetcher"):
            PREFETCHER_REGISTRY.get("psychic")

    def test_builtins_present(self):
        for name in ("conventional", "conventional_1k", "two_level", "phantom",
                     "ideal_16k", "perfect", "airbtb", "airbtb_standalone"):
            assert name in BTB_REGISTRY
        for name in ("none", "fdp", "shift", "perfect"):
            assert name in PREFETCHER_REGISTRY

    def test_bare_btb_construction_with_params(self):
        btb = build_btb("conventional", entries=2048, victim_entries=0, ways=8)
        assert btb.entries == 2048
        assert btb.ways == 8


# --------------------------------------------------------------------------- #
# DesignSpec and the catalog
# --------------------------------------------------------------------------- #

class TestDesignSpec:
    def test_param_overrides_reach_the_component(self, tiny_program):
        spec = DesignSpec(
            name="fat", label="fat", btb="conventional", prefetcher="none",
            btb_params={"entries": 4096, "victim_entries": 0},
        )
        simulator, _ = design_from_spec(spec, tiny_program)
        assert simulator.bpu.btb.entries == 4096
        assert simulator.design_name == "fat"

    def test_prefetcher_params_reach_the_component(self, tiny_program):
        spec = DesignSpec(
            name="deep_fdp", label="deep FDP", btb="conventional_1k",
            prefetcher="fdp", prefetcher_params={"queue_depth_basic_blocks": 12},
        )
        simulator, _ = design_from_spec(spec, tiny_program)
        assert simulator.prefetcher.queue_depth == 12

    def test_airbtb_params_reach_the_config(self, tiny_program):
        spec = resolve_design("confluence").derive(
            "conf_b4", btb_params={"branch_entries_per_bundle": 4}
        )
        simulator, _ = design_from_spec(spec, tiny_program)
        assert simulator.confluence.airbtb.config.branch_entries_per_bundle == 4

    def test_derive_merges_params(self):
        base = DesignSpec(
            name="a", label="a", btb="conventional", prefetcher="none",
            btb_params={"entries": 1024, "ways": 4},
        )
        derived = base.derive("b", btb_params={"entries": 2048})
        assert derived.btb_params == {"entries": 2048, "ways": 4}
        assert derived.name == "b"
        assert base.btb_params["entries"] == 1024  # original untouched

    def test_designpoint_positional_compat(self, tiny_program):
        # The old DesignPoint(name, label, btb, prefetcher, uses_shift, ...)
        # positional form must keep working against the grown spec.
        point = DesignPoint("compat", "Compat", "conventional_1k", "fdp", True)
        assert point.uses_shift is True
        assert point.btb_params == {}
        simulator, _ = design_from_spec(point, tiny_program)
        assert simulator.design_name == "compat"

    def test_dict_round_trip(self):
        spec = resolve_design("confluence").derive(
            "conf_rt", btb_params={"overflow_entries": 16}
        )
        assert DesignSpec.from_dict(spec.to_dict()) == spec

    def test_register_design_point_duplicate_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_design_point(DESIGN_POINTS["baseline"])

    def test_unknown_design_lists_known_names(self, tiny_program):
        with pytest.raises(KeyError, match="unknown design point 'warp_drive'"):
            build_design("warp_drive", tiny_program)

    def test_cmp_unknown_design_same_error(self, tiny_program):
        cmp_model = ChipMultiprocessor(tiny_program, cores=1, instructions_per_core=5_000)
        with pytest.raises(KeyError, match="unknown design point 'bogus'"):
            cmp_model.run_design("bogus")

    def test_registered_point_buildable_and_removable(self, tiny_program):
        spec = DesignSpec(
            name="tmp_point", label="tmp", btb="conventional", prefetcher="none",
            btb_params={"entries": 512, "victim_entries": 0},
        )
        register_design_point(spec)
        try:
            simulator, _ = build_design("tmp_point", tiny_program)
            assert simulator.bpu.btb.entries == 512
        finally:
            del DESIGN_POINTS["tmp_point"]

    def test_ideal_area_priced_without_shadow_btb(self, tiny_program):
        # The perfect BTB reports infinite storage; its area must come from
        # the spec's explicit accounting (the baseline BTB's storage).
        spec = resolve_design("ideal")
        assert spec.btb_storage_kb is not None
        _, ideal_area = build_design("ideal", tiny_program)
        _, baseline_area = build_design("baseline", tiny_program)
        assert ideal_area.components_mm2["btb"] == pytest.approx(
            baseline_area.components_mm2["btb"]
        )


# --------------------------------------------------------------------------- #
# Session facade + RunReport
# --------------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def small_session():
    return Session(profile="oltp_db2", scale=0.08, cores=2,
                   instructions_per_core=6_000)


@pytest.fixture(scope="module")
def small_report(small_session):
    return small_session.run(["baseline", "confluence"])


class TestSession:
    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError, match="unknown workload profile"):
            Session(profile="quantum_db")

    def test_empty_designs_rejected(self, small_session):
        with pytest.raises(ValueError, match="no designs"):
            small_session.run([])

    def test_bad_baseline_rejected(self, small_session):
        with pytest.raises(ValueError, match="not among the designs"):
            small_session.run(["confluence"], baseline="baseline")

    def test_duplicate_design_names_rejected(self, small_session):
        # Duplicates used to keep both entries in report.order while the
        # results dict silently collapsed them; now they fail loudly.
        with pytest.raises(ValueError, match="duplicate design name"):
            small_session.run(["baseline", "confluence", "baseline"])

    def test_duplicate_via_spec_and_name_rejected(self, small_session):
        spec = resolve_design("baseline")
        with pytest.raises(ValueError, match="duplicate design name"):
            small_session.run([spec, "baseline"])

    def test_derived_spec_with_fresh_name_accepted(self, small_session):
        thin = resolve_design("baseline").derive("thin", btb_params={"entries": 512})
        report = small_session.run(["baseline", thin])
        assert report.designs == ["baseline", "thin"]
        assert report["thin"]["ipc"] > 0

    def test_report_shape(self, small_report):
        assert small_report.designs == ["baseline", "confluence"]
        assert small_report.baseline == "baseline"
        assert small_report["baseline"]["speedup"] == pytest.approx(1.0)
        assert small_report["confluence"]["ipc"] > 0
        assert len(small_report["confluence"]["core_ipc"]) == 2
        assert small_report["confluence"]["area_mm2"] > 0

    def test_report_speedup_matches_ipc_ratio(self, small_report):
        expected = small_report["confluence"]["ipc"] / small_report["baseline"]["ipc"]
        assert small_report.speedup("confluence") == pytest.approx(expected)
        assert small_report["confluence"]["speedup"] == pytest.approx(expected)

    def test_json_round_trip(self, small_report):
        restored = RunReport.from_json(small_report.to_json())
        assert restored == small_report
        assert restored["confluence"]["ipc"] == small_report["confluence"]["ipc"]

    def test_session_caches_workload(self, small_session):
        assert small_session.program is small_session.program
        assert small_session.cmp is small_session.cmp

    def test_session_matches_cmp_driver(self, small_session, small_report):
        cmp_model = ChipMultiprocessor(
            small_session.program, cores=2, instructions_per_core=6_000
        )
        direct = cmp_model.run_design("confluence")
        assert small_report["confluence"]["ipc"] == pytest.approx(direct.ipc)


# --------------------------------------------------------------------------- #
# Custom component end-to-end (never imported by repro.core)
# --------------------------------------------------------------------------- #

class AlwaysHitBTB(BaseBTB):
    """A trivial custom BTB: remembers everything, hits after first sight."""

    def __init__(self, latency_cycles: int = 1) -> None:
        super().__init__("always_hit_btb")
        self.latency_cycles = latency_cycles
        self._entries = {}

    def lookup(self, branch_pc, taken=True):
        entry = self._entries.get(branch_pc)
        self.stats.record(entry is not None, taken)
        if entry is not None:
            return BTBLookupResult(True, entry, self.latency_cycles, "custom")
        return BTBLookupResult(False, None, 0, "miss")

    def peek_hit(self, branch_pc):
        return branch_pc in self._entries

    def update(self, branch_pc, kind, target, taken):
        self.stats.insertions += 1
        self._entries[branch_pc] = BTBEntry(branch_pc=branch_pc, kind=kind, target=target)

    @property
    def storage_kb(self):
        return 12.0


@pytest.fixture()
def custom_design():
    BTB_REGISTRY.register("always_hit", lambda ctx, **p: AlwaysHitBTB(**p))
    spec = register_design_point(DesignSpec(
        name="custom_hit", label="Custom", btb="always_hit", prefetcher="none",
        btb_params={"latency_cycles": 2},
    ))
    yield spec
    BTB_REGISTRY.unregister("always_hit")
    del DESIGN_POINTS["custom_hit"]


class TestCustomComponent:
    def test_custom_btb_through_session_run(self, custom_design):
        report = Session(profile="oltp_db2", scale=0.08, cores=2,
                         instructions_per_core=6_000).run(["baseline", "custom_hit"])
        assert "custom_hit" in report
        row = report["custom_hit"]
        assert row["label"] == "Custom"
        assert row["ipc"] > 0
        # The custom storage figure flows into the area model.
        assert row["area_mm2"] > 0
        restored = RunReport.from_json(report.to_json())
        assert "custom_hit" in restored

    def test_custom_btb_instantiated_with_params(self, custom_design, tiny_program):
        simulator, _ = build_design("custom_hit", tiny_program)
        assert isinstance(simulator.bpu.btb, AlwaysHitBTB)
        assert simulator.bpu.btb.latency_cycles == 2


# --------------------------------------------------------------------------- #
# Parallel CMP runner
# --------------------------------------------------------------------------- #

class TestParallelCMP:
    @pytest.mark.parametrize("design", ["confluence", "2level_shift"])
    def test_workers_bit_identical_to_serial(self, tiny_program, design):
        serial = ChipMultiprocessor(
            tiny_program, cores=3, instructions_per_core=6_000
        ).run_design(design)
        parallel = ChipMultiprocessor(
            tiny_program, cores=3, instructions_per_core=6_000, workers=2
        ).run_design(design)
        assert parallel.core_results == serial.core_results
        assert parallel.area == serial.area
        assert parallel.ipc == serial.ipc
        assert parallel.btb_taken_misses == serial.btb_taken_misses

    def test_workers_override_per_run(self, tiny_program):
        cmp_model = ChipMultiprocessor(tiny_program, cores=2, instructions_per_core=5_000)
        serial = cmp_model.run_design("baseline")
        parallel = cmp_model.run_design("baseline", workers=2)
        assert parallel.core_results == serial.core_results

    def test_invalid_workers_rejected(self, tiny_program):
        with pytest.raises(ValueError, match="workers"):
            ChipMultiprocessor(tiny_program, cores=2, workers=0)

    def test_run_designs_accepts_specs(self, tiny_program):
        cmp_model = ChipMultiprocessor(tiny_program, cores=1, instructions_per_core=5_000)
        spec = resolve_design("baseline").derive("thin", btb_params={"entries": 512})
        results = cmp_model.run_designs(["baseline", spec])
        assert set(results) == {"baseline", "thin"}
        assert results["thin"].design == "thin"

    def test_run_designs_duplicate_names_rejected(self, tiny_program):
        cmp_model = ChipMultiprocessor(tiny_program, cores=1, instructions_per_core=5_000)
        with pytest.raises(ValueError, match="duplicate design name"):
            cmp_model.run_designs(["baseline", resolve_design("baseline")])
