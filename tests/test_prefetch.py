"""Tests for the FDP and SHIFT instruction prefetchers."""

import pytest

from repro.branch import BranchPredictionUnit, PerfectBTB, ConventionalBTB
from repro.caches.l1i import InstructionCache
from repro.caches.llc import SharedLLC
from repro.prefetch import (
    FetchDirectedPrefetcher,
    NullPrefetcher,
    PrefetchContext,
    ShiftConfig,
    ShiftHistory,
    ShiftPrefetcher,
)
from repro.isa.instruction import BranchKind
from repro.workloads.trace import FetchRecord


def _chain_records(count=10, start=0x1000, region_bytes=0x100):
    """A simple chain of taken unconditional branches across blocks."""
    records = []
    for index in range(count):
        pc = start + index * region_bytes
        target = start + (index + 1) * region_bytes
        records.append(
            FetchRecord(start=pc, instruction_count=4, branch_pc=pc + 12,
                        kind=BranchKind.UNCONDITIONAL, taken=True,
                        target=target, next_pc=target)
        )
    return records


class TestNullPrefetcher:
    def test_returns_nothing(self):
        records = _chain_records()
        context = PrefetchContext(records=records, index=0, cycle=0, l1i=InstructionCache())
        assert NullPrefetcher().prefetch_targets(context) == []


class TestFDP:
    def test_prefetches_future_blocks_on_predicted_path(self):
        records = _chain_records()
        bpu = BranchPredictionUnit(PerfectBTB())
        for record in records:
            bpu.resolve(record)
        fdp = FetchDirectedPrefetcher(queue_depth_basic_blocks=4)
        context = PrefetchContext(records=records, index=0, cycle=0,
                                  l1i=InstructionCache(), bpu=bpu)
        targets = list(fdp.prefetch_targets(context))
        assert targets  # future blocks along the chain
        assert all(target % 64 == 0 for target in targets)
        assert fdp.issued_prefetches == len(targets)

    def test_runahead_stops_at_btb_miss(self):
        records = _chain_records()
        bpu = BranchPredictionUnit(ConventionalBTB(entries=64))  # untrained: all misses
        fdp = FetchDirectedPrefetcher(queue_depth_basic_blocks=6)
        context = PrefetchContext(records=records, index=0, cycle=0,
                                  l1i=InstructionCache(), bpu=bpu)
        targets = list(fdp.prefetch_targets(context))
        assert targets == []
        assert fdp.runahead_stops_on_btb_miss == 1

    def test_lookahead_bounded_by_queue_depth(self):
        records = _chain_records(count=20)
        bpu = BranchPredictionUnit(PerfectBTB())
        for record in records:
            bpu.resolve(record)
        fdp = FetchDirectedPrefetcher(queue_depth_basic_blocks=3)
        context = PrefetchContext(records=records, index=0, cycle=0,
                                  l1i=InstructionCache(), bpu=bpu)
        targets = list(fdp.prefetch_targets(context))
        assert len(targets) <= 3 * 2  # at most queue-depth regions' blocks

    def test_max_lead_matches_queue_depth(self):
        fdp = FetchDirectedPrefetcher(queue_depth_basic_blocks=6)
        assert fdp.max_lead_cycles == 6

    def test_no_bpu_means_no_prefetches(self):
        records = _chain_records()
        fdp = FetchDirectedPrefetcher()
        context = PrefetchContext(records=records, index=0, cycle=0, l1i=InstructionCache())
        assert list(fdp.prefetch_targets(context)) == []

    def test_invalid_queue_depth_rejected(self):
        with pytest.raises(ValueError):
            FetchDirectedPrefetcher(queue_depth_basic_blocks=0)


class TestShiftHistory:
    def test_record_and_lookup(self):
        history = ShiftHistory(ShiftConfig(history_entries=16))
        for block in (0x0, 0x40, 0x80):
            history.record(block)
        position = history.lookup(0x40)
        assert position is not None
        assert history.read_stream(position, 4) == [0x80]

    def test_lookup_unknown_block(self):
        history = ShiftHistory(ShiftConfig(history_entries=16))
        assert history.lookup(0x1234_0000) is None
        assert history.index_hit_rate == 0.0

    def test_circular_overwrite_updates_index(self):
        history = ShiftHistory(ShiftConfig(history_entries=4))
        for block in range(0, 8 * 64, 64):
            history.record(block)
        # The first blocks have been overwritten and must no longer resolve.
        assert history.lookup(0x0) is None
        assert history.lookup(7 * 64) is not None

    def test_read_stream_does_not_cross_head(self):
        history = ShiftHistory(ShiftConfig(history_entries=8))
        for block in (0x0, 0x40, 0x80):
            history.record(block)
        position = history.lookup(0x80)
        assert history.read_stream(position, 4) == []

    def test_llc_virtualization_reserves_blocks(self):
        llc = SharedLLC()
        history = ShiftHistory(ShiftConfig(history_entries=1024), llc=llc)
        assert llc.reserved_blocks > 0
        for block in range(0, 64 * 64, 64):
            history.record(block)
        assert llc.metadata_writes >= 1

    def test_storage_estimates(self):
        config = ShiftConfig()
        assert config.history_storage_kb > 100
        assert config.index_storage_kb > 100


class TestShiftHistorySnapshot:
    """snapshot()/restore() must preserve a *wrapped* circular buffer —
    including record()'s overwritten-slot index-drop bookkeeping."""

    @staticmethod
    def _wrapped_history(capacity=8, records=20):
        history = ShiftHistory(ShiftConfig(history_entries=capacity,
                                           index_entries=capacity))
        blocks = [index * 64 for index in range(records)]
        for block in blocks:
            history.record(block)
        assert history.records > capacity  # genuinely wrapped
        return history, blocks

    def test_restore_preserves_wrapped_lookup_and_streams(self):
        history, blocks = self._wrapped_history()
        restored = ShiftHistory.restore(history.snapshot())
        assert restored.capacity == history.capacity
        assert restored.records == history.records
        # Overwritten blocks stay gone; surviving blocks resolve to the same
        # positions and replay the same streams across the wrap boundary.
        for stale in blocks[:-8]:
            assert restored.lookup(stale) is None
        for live in blocks[-8:-1]:
            position = history.lookup(live)
            assert restored.lookup(live) == position
            assert (restored.read_stream(position, 4)
                    == history.read_stream(position, 4))

    def test_restored_history_keeps_recording_like_the_original(self):
        history, _ = self._wrapped_history()
        restored = ShiftHistory.restore(history.snapshot())
        for block in (0x9000, 0x9040, 0x9080):
            history.record(block)
            restored.record(block)
        # Identical post-restore evolution: head, index and buffer agree.
        original_state = history.snapshot()
        restored_state = restored.snapshot()
        for field in ("buffer", "valid", "head", "index"):
            assert restored_state[field] == original_state[field]

    def test_record_drops_index_entry_of_overwritten_slot(self):
        history = ShiftHistory(ShiftConfig(history_entries=4, index_entries=4))
        blocks = [0x0, 0x40, 0x80, 0xC0]
        for block in blocks:
            history.record(block)
        history.record(0x100)  # overwrites slot 0 (0x0), whose index points there
        assert history.lookup(0x0) is None
        for block in (0x40, 0x80, 0xC0, 0x100):
            assert history.lookup(block) is not None

    def test_record_keeps_stale_index_of_rerecorded_block(self):
        # 0x0 recurs later in the buffer: overwriting its *old* slot must not
        # drop the index entry pointing at the newer occurrence.
        history = ShiftHistory(ShiftConfig(history_entries=4, index_entries=4))
        for block in (0x0, 0x40, 0x0, 0x80):
            history.record(block)
        history.record(0xC0)  # overwrites slot 0, but index[0x0] == 2
        assert history.lookup(0x0) == 2

    def test_record_overwriting_slot_with_same_block_keeps_index(self):
        history = ShiftHistory(ShiftConfig(history_entries=2, index_entries=2))
        for block in (0x0, 0x40, 0x0):  # third record overwrites slot 0 with 0x0
            history.record(block)
        assert history.lookup(0x0) == 0
        assert history.lookup(0x40) == 1

    def test_snapshot_is_a_deep_copy(self):
        history, _ = self._wrapped_history()
        state = history.snapshot()
        history.record(0xABC0)
        restored = ShiftHistory.restore(state)
        assert restored.lookup(0xABC0) is None


class TestShiftPrefetcher:
    def _context(self, records, index, l1i, miss_block=None):
        return PrefetchContext(records=records, index=index, cycle=index,
                               l1i=l1i, demand_miss_block=miss_block)

    def test_recurring_stream_is_replayed(self):
        # More distinct blocks than the 512-block L1-I, traversed twice: the
        # second pass misses and must be covered by replaying the history.
        records = _chain_records(count=600) * 2
        history = ShiftHistory(ShiftConfig(history_entries=4096, read_ahead_degree=8))
        prefetcher = ShiftPrefetcher(history)
        l1i = InstructionCache()
        issued = []
        for index, record in enumerate(records):
            miss = record.blocks()[0] if not l1i.contains(record.start) else None
            targets = list(prefetcher.prefetch_targets(self._context(records, index, l1i, miss)))
            issued.extend(targets)
            for block in record.blocks():
                l1i.fill(block)
        # During the second pass the prefetcher must have predicted upcoming blocks.
        assert prefetcher.streams_started >= 1
        assert prefetcher.stream_confirmations > 0
        assert len(issued) > 0

    def test_non_recording_core_does_not_write_history(self):
        records = _chain_records(count=4)
        history = ShiftHistory(ShiftConfig(history_entries=64))
        prefetcher = ShiftPrefetcher(history, record_history=False)
        l1i = InstructionCache()
        for index, record in enumerate(records):
            prefetcher.prefetch_targets(self._context(records, index, l1i, record.blocks()[0]))
        assert history.records == 0

    def test_shared_history_serves_other_cores(self):
        records = _chain_records(count=12)
        history = ShiftHistory(ShiftConfig(history_entries=256, read_ahead_degree=8))
        recorder = ShiftPrefetcher(history, record_history=True)
        consumer = ShiftPrefetcher(history, record_history=False)
        l1i = InstructionCache()
        for index in range(len(records)):
            recorder.prefetch_targets(self._context(records, index, l1i, None))
        targets = list(
            consumer.prefetch_targets(self._context(records, 0, l1i, records[0].blocks()[0]))
        )
        assert targets  # consumer replays the recorder's history

    def test_divergence_reanchors_stream(self):
        records = _chain_records(count=8)
        history = ShiftHistory(ShiftConfig(history_entries=256, read_ahead_degree=4,
                                           divergence_threshold=1))
        prefetcher = ShiftPrefetcher(history, config=history.config)
        l1i = InstructionCache()
        for index in range(len(records)):
            prefetcher.prefetch_targets(self._context(records, index, l1i, None))
        # Misses on blocks unrelated to the recorded chain force re-anchoring
        # attempts (which fail: those blocks have no history).
        other = _chain_records(count=4, start=0x9000_0000)
        for index, record in enumerate(other):
            prefetcher.prefetch_targets(self._context(other, index, l1i, record.blocks()[0]))
        assert prefetcher.streams_started <= 2

    def test_no_dedicated_storage(self):
        history = ShiftHistory(ShiftConfig(history_entries=64))
        assert ShiftPrefetcher(history).storage_kb == 0.0
