"""Unit tests for the instruction, block and predecoder models."""

import pytest

from repro.isa import (
    BLOCK_SIZE_BYTES,
    INSTRUCTIONS_PER_BLOCK,
    BranchKind,
    Instruction,
    InstructionBlock,
    Predecoder,
    ProgramImage,
    block_address,
    block_index,
    block_offset,
)


class TestAddressHelpers:
    def test_block_address_masks_low_bits(self):
        assert block_address(0x1000) == 0x1000
        assert block_address(0x103C) == 0x1000
        assert block_address(0x1040) == 0x1040

    def test_block_index_divides_by_block_size(self):
        assert block_index(0) == 0
        assert block_index(BLOCK_SIZE_BYTES) == 1
        assert block_index(BLOCK_SIZE_BYTES * 7 + 4) == 7

    def test_block_offset_is_instruction_slot(self):
        assert block_offset(0x1000) == 0
        assert block_offset(0x1004) == 1
        assert block_offset(0x103C) == 15

    def test_sixteen_instructions_per_block(self):
        assert INSTRUCTIONS_PER_BLOCK == 16


class TestBranchKind:
    @pytest.mark.parametrize(
        "kind", [BranchKind.CONDITIONAL, BranchKind.UNCONDITIONAL, BranchKind.CALL]
    )
    def test_direct_kinds(self, kind):
        assert kind.is_direct

    @pytest.mark.parametrize(
        "kind", [BranchKind.INDIRECT, BranchKind.INDIRECT_CALL, BranchKind.RETURN]
    )
    def test_indirect_kinds(self, kind):
        assert kind.is_indirect
        assert not kind.is_direct

    def test_call_classification(self):
        assert BranchKind.CALL.is_call
        assert BranchKind.INDIRECT_CALL.is_call
        assert not BranchKind.CONDITIONAL.is_call

    def test_return_classification(self):
        assert BranchKind.RETURN.is_return

    def test_conditional_is_not_unconditional(self):
        assert not BranchKind.CONDITIONAL.is_unconditional
        assert BranchKind.UNCONDITIONAL.is_unconditional

    def test_storage_encoding_fits_two_bits(self):
        for kind in BranchKind:
            assert 0 <= kind.storage_encoding <= 3


class TestInstruction:
    def test_plain_instruction(self):
        instr = Instruction(address=0x2000)
        assert not instr.is_branch
        assert instr.fallthrough == 0x2004

    def test_branch_requires_target_when_direct(self):
        with pytest.raises(ValueError):
            Instruction(address=0x2000, kind=BranchKind.CONDITIONAL)

    def test_indirect_branch_needs_no_target(self):
        instr = Instruction(address=0x2000, kind=BranchKind.RETURN)
        assert instr.is_branch
        assert instr.target is None

    def test_misaligned_address_rejected(self):
        with pytest.raises(ValueError):
            Instruction(address=0x2001)

    def test_target_without_kind_rejected(self):
        with pytest.raises(ValueError):
            Instruction(address=0x2000, target=0x3000)

    def test_block_and_offset_properties(self):
        instr = Instruction(address=0x2044)
        assert instr.block == 0x2040
        assert instr.offset_in_block == 1


class TestInstructionBlock:
    def _block_with_branches(self):
        block = InstructionBlock(0x4000)
        block.add(Instruction(address=0x4000))
        block.add(Instruction(address=0x4004, kind=BranchKind.CONDITIONAL, target=0x5000))
        block.add(Instruction(address=0x4010, kind=BranchKind.RETURN))
        return block

    def test_misaligned_base_rejected(self):
        with pytest.raises(ValueError):
            InstructionBlock(0x4010)

    def test_add_foreign_instruction_rejected(self):
        block = InstructionBlock(0x4000)
        with pytest.raises(ValueError):
            block.add(Instruction(address=0x5000))

    def test_branch_listing_and_count(self):
        block = self._block_with_branches()
        assert block.branch_count == 2
        assert [b.address for b in block.branches] == [0x4004, 0x4010]

    def test_branch_bitmap_sets_branch_slots(self):
        block = self._block_with_branches()
        assert block.branch_bitmap == (1 << 1) | (1 << 4)

    def test_instruction_lookup_by_offset_and_address(self):
        block = self._block_with_branches()
        assert block.instruction_at_offset(1).address == 0x4004
        assert block.instruction_at(0x4010).kind is BranchKind.RETURN
        assert block.instruction_at_offset(2) is None

    def test_offset_bounds_checked(self):
        block = self._block_with_branches()
        with pytest.raises(ValueError):
            block.instruction_at_offset(16)

    def test_iteration_in_offset_order(self):
        block = self._block_with_branches()
        addresses = [instr.address for instr in block]
        assert addresses == sorted(addresses)


class TestProgramImage:
    def _image(self):
        image = ProgramImage()
        image.add_instructions(
            [
                Instruction(address=0x8000),
                Instruction(address=0x8004, kind=BranchKind.CALL, target=0x9000),
                Instruction(address=0x9000, kind=BranchKind.RETURN),
            ]
        )
        return image

    def test_block_grouping(self):
        image = self._image()
        assert image.block_count == 2
        assert image.block_at(0x8004).base_address == 0x8000
        assert 0x9000 in image

    def test_instruction_lookup(self):
        image = self._image()
        assert image.instruction_at(0x8004).kind is BranchKind.CALL
        assert image.instruction_at(0xA000) is None

    def test_footprint_and_branch_statistics(self):
        image = self._image()
        assert image.footprint_bytes == 2 * BLOCK_SIZE_BYTES
        assert image.static_branch_count == 2
        assert image.branch_density() == pytest.approx(1.0)

    def test_address_range(self):
        image = self._image()
        low, high = image.address_range()
        assert low == 0x8000
        assert high == 0x9040

    def test_empty_image(self):
        image = ProgramImage()
        assert image.block_count == 0
        assert image.address_range() == (0, 0)
        assert image.branch_density() == 0.0


class TestPredecoder:
    def test_predecode_extracts_branches_and_bitmap(self):
        block = InstructionBlock(0x4000)
        block.add(Instruction(address=0x4004, kind=BranchKind.CONDITIONAL, target=0x4100))
        block.add(Instruction(address=0x4020, kind=BranchKind.RETURN))
        predecoder = Predecoder(latency_cycles=3)
        decoded = predecoder.predecode(block)
        assert decoded.block_address == 0x4000
        assert decoded.branch_count == 2
        assert decoded.bitmap == (1 << 1) | (1 << 8)
        assert decoded.latency_cycles == 3
        assert decoded.branch_at_offset(1).target == 0x4100
        assert decoded.branch_at_offset(8).kind is BranchKind.RETURN
        assert decoded.branch_at_offset(2) is None

    def test_predecoder_counts_work(self):
        predecoder = Predecoder()
        block = InstructionBlock(0x4000)
        block.add(Instruction(address=0x4000, kind=BranchKind.RETURN))
        predecoder.predecode(block)
        predecoder.predecode(block)
        assert predecoder.blocks_scanned == 2
        assert predecoder.branches_extracted == 2

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Predecoder(latency_cycles=-1)

    def test_image_blocks_predecode_consistently(self, tiny_program):
        predecoder = Predecoder()
        checked = 0
        for block in tiny_program.image.blocks():
            decoded = predecoder.predecode(block)
            assert decoded.bitmap == block.branch_bitmap
            assert decoded.branch_count == block.branch_count
            checked += 1
            if checked >= 50:
                break
        assert checked == 50
