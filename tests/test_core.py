"""Tests for AirBTB, Confluence, the frontend model, designs, area, metrics."""

import pytest

from repro.branch import BranchPredictionUnit, ConventionalBTB
from repro.caches.l1i import InstructionCache, L1IConfig
from repro.caches.llc import SharedLLC
from repro.core import (
    AirBTB,
    AirBTBConfig,
    ChipMultiprocessor,
    Confluence,
    DESIGN_POINTS,
    FrontendConfig,
    FrontendSimulator,
    build_design,
)
from repro.core.area import AreaModel, sram_area_mm2
from repro.core.metrics import (
    fraction_of_ideal,
    geometric_mean,
    miss_coverage,
    mpki,
    normalize,
    speedup,
)
from repro.isa.block import InstructionBlock
from repro.isa.instruction import BranchKind, Instruction
from repro.isa.predecode import Predecoder
from repro.workloads.trace import FetchRecord, Trace


def _block_with_branches(base=0x4000, branch_offsets=(1, 4, 7), kind=BranchKind.CONDITIONAL):
    block = InstructionBlock(base)
    for offset in branch_offsets:
        block.add(Instruction(address=base + offset * 4, kind=kind, target=base + 0x400))
    return block


def _predecoded(base=0x4000, branch_offsets=(1, 4, 7)):
    return Predecoder().predecode(_block_with_branches(base, branch_offsets))


class TestAirBTBConfig:
    def test_default_matches_paper_storage(self):
        config = AirBTBConfig()
        assert 9.0 < config.storage_kb < 11.5  # paper: ~10.2 KB

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            AirBTBConfig(insertion_policy="magic")

    def test_bigger_bundles_cost_more(self):
        assert AirBTBConfig(branch_entries_per_bundle=4).storage_kb > AirBTBConfig().storage_kb


class TestAirBTB:
    def test_block_fill_installs_all_branches(self):
        airbtb = AirBTB()
        airbtb.on_block_fill(_predecoded())
        for offset in (1, 4, 7):
            assert airbtb.lookup(0x4000 + offset * 4).hit

    def test_eviction_removes_bundle(self):
        airbtb = AirBTB()
        airbtb.on_block_fill(_predecoded())
        airbtb.on_block_evict(0x4000)
        assert not airbtb.lookup(0x4004).hit
        assert airbtb.bundle_evictions == 1

    def test_overflowing_branches_go_to_overflow_buffer(self):
        airbtb = AirBTB(AirBTBConfig(branch_entries_per_bundle=3, overflow_entries=8))
        airbtb.on_block_fill(_predecoded(branch_offsets=(1, 3, 5, 7, 9)))
        hits = [airbtb.lookup(0x4000 + offset * 4) for offset in (1, 3, 5, 7, 9)]
        assert all(result.hit for result in hits)
        assert any(result.level == "overflow" for result in hits)
        assert airbtb.overflow_insertions == 2

    def test_without_overflow_buffer_excess_branches_miss(self):
        airbtb = AirBTB(AirBTBConfig(branch_entries_per_bundle=3, overflow_entries=0))
        airbtb.on_block_fill(_predecoded(branch_offsets=(1, 3, 5, 7, 9)))
        results = [airbtb.lookup(0x4000 + offset * 4).hit for offset in (1, 3, 5, 7, 9)]
        assert results.count(False) == 2

    def test_synchronized_mode_ignores_update_allocation(self):
        airbtb = AirBTB()
        airbtb.synchronized = True
        airbtb.update(0x4004, BranchKind.CONDITIONAL, 0x5000, taken=True)
        assert not airbtb.lookup(0x4004).hit

    def test_standalone_eager_mode_installs_whole_block(self, tiny_program):
        image = tiny_program.image
        block = next(b for b in image.blocks() if b.branch_count >= 2)
        airbtb = AirBTB(block_provider=image.block_at)
        branch = block.branches[0]
        airbtb.update(branch.address, branch.kind, branch.target, taken=True)
        other = block.branches[1]
        assert airbtb.lookup(other.address).hit

    def test_standalone_demand_mode_installs_single_entry(self, tiny_program):
        image = tiny_program.image
        block = next(b for b in image.blocks() if b.branch_count >= 2)
        airbtb = AirBTB(AirBTBConfig(insertion_policy="demand"), block_provider=image.block_at)
        branch = block.branches[0]
        airbtb.update(branch.address, branch.kind, branch.target, taken=True)
        assert airbtb.lookup(branch.address).hit
        assert not airbtb.lookup(block.branches[1].address).hit

    def test_peek_hit_matches_lookup(self):
        airbtb = AirBTB()
        airbtb.on_block_fill(_predecoded())
        assert airbtb.peek_hit(0x4004)
        assert not airbtb.peek_hit(0x4000)

    def test_resident_bundles_bounded_by_capacity(self):
        airbtb = AirBTB(AirBTBConfig(bundles=8, ways=4, overflow_entries=0))
        for index in range(32):
            airbtb.on_block_fill(_predecoded(base=0x4000 + index * 64, branch_offsets=(1,)))
        assert airbtb.resident_bundles <= 8


class TestConfluence:
    def test_l1i_fill_mirrors_into_airbtb(self, tiny_program):
        l1i = InstructionCache()
        confluence = Confluence(image=tiny_program.image, l1i=l1i, llc=SharedLLC())
        block = next(b for b in tiny_program.image.blocks() if b.branch_count >= 1)
        l1i.fill(block.base_address, demand=False)
        branch = block.branches[0]
        assert confluence.airbtb.lookup(branch.address).hit
        assert confluence.prefetch_predecodes == 1

    def test_l1i_eviction_mirrors_into_airbtb(self, tiny_program):
        l1i = InstructionCache(L1IConfig(size_bytes=64 * 8, associativity=1))
        confluence = Confluence(image=tiny_program.image, l1i=l1i)
        blocks = [b for b in tiny_program.image.blocks() if b.branch_count >= 1][:20]
        for block in blocks:
            l1i.fill(block.base_address)
        resident = set(l1i.resident_blocks())
        for block in blocks:
            hit = confluence.airbtb.lookup(block.branches[0].address).hit
            assert hit == (block.base_address in resident)

    def test_content_synchronization_invariant(self, tiny_program, tiny_trace):
        simulator, _ = build_design("confluence", tiny_program)
        simulator.run(tiny_trace.head(3000))
        l1i_blocks = set(simulator.l1i.resident_blocks())
        airbtb = simulator.confluence.airbtb
        bundle_blocks = set(airbtb._bundles.keys())
        # Every bundle corresponds to a resident L1-I block (bundles may be
        # missing for resident blocks that contain no branches).
        assert bundle_blocks <= l1i_blocks

    def test_storage_is_airbtb_only(self, tiny_program):
        confluence = Confluence(image=tiny_program.image, l1i=InstructionCache())
        assert confluence.storage_kb == confluence.airbtb.storage_kb


class TestFrontendSimulator:
    def test_ideal_design_has_no_l1i_stalls(self, tiny_program, tiny_trace):
        simulator, _ = build_design("ideal", tiny_program)
        result = simulator.run(tiny_trace)
        assert result.l1i_stall_cycles == 0
        assert result.l1i_misses == 0

    def test_baseline_suffers_misses(self, tiny_program, tiny_trace):
        simulator, _ = build_design("baseline", tiny_program)
        result = simulator.run(tiny_trace)
        assert result.l1i_misses > 0
        assert result.btb_taken_misses > 0
        assert result.cycles > result.base_cycles

    def test_results_account_post_warmup_only(self, tiny_program, tiny_trace):
        simulator, _ = build_design("baseline", tiny_program)
        result = simulator.run(tiny_trace, warmup_fraction=0.5)
        assert result.fetch_regions == len(tiny_trace) - int(len(tiny_trace) * 0.5)

    def test_speedup_over_self_is_one(self, tiny_program, tiny_trace):
        simulator, _ = build_design("baseline", tiny_program)
        result = simulator.run(tiny_trace)
        assert result.speedup_over(result) == pytest.approx(1.0)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            FrontendConfig(base_cpi=0)
        with pytest.raises(ValueError):
            FrontendConfig(warmup_fraction=1.0)

    def test_mpki_properties(self, tiny_program, tiny_trace):
        simulator, _ = build_design("baseline", tiny_program)
        result = simulator.run(tiny_trace)
        assert result.btb_mpki == pytest.approx(
            1000 * result.btb_taken_misses / result.instructions
        )
        assert result.l1i_mpki == pytest.approx(1000 * result.l1i_misses / result.instructions)

    def test_prefetcher_reduces_l1i_stalls(self, small_program, small_trace):
        baseline, _ = build_design("baseline", small_program)
        confluence, _ = build_design("confluence", small_program)
        base_result = baseline.run(small_trace)
        conf_result = confluence.run(small_trace)
        assert conf_result.l1i_stall_cycles < base_result.l1i_stall_cycles

    def test_repeated_runs_start_clean(self, tiny_program, tiny_trace):
        # _finalize claims repeated run() calls start clean: both the
        # in-flight prefetch table AND the cycle counter must rewind (warm
        # caches/predictors intentionally persist across traces).
        sim_a, _ = build_design("baseline", tiny_program)
        sim_b, _ = build_design("baseline", tiny_program)
        first_a = sim_a.run(tiny_trace)
        first_b = sim_b.run(tiny_trace)
        assert first_a == first_b
        assert sim_a._cycle == 0.0
        assert sim_a._inflight == {}
        second_a = sim_a.run(tiny_trace)
        second_b = sim_b.run(tiny_trace)
        # Reuse is deterministic: two identically-warmed simulators agree.
        assert second_a == second_b
        assert second_a.instructions == first_a.instructions


class TestStallTaxonomy:
    """Pin the misfetch vs direction-misprediction stall accounting."""

    CONFIG = FrontendConfig(warmup_fraction=0.0)

    @staticmethod
    def _taken_conditional():
        return FetchRecord(start=0x1000, instruction_count=4, branch_pc=0x100C,
                           kind=BranchKind.CONDITIONAL, taken=True,
                           target=0x2000, next_pc=0x2000)

    @staticmethod
    def _not_taken_conditional():
        return FetchRecord(start=0x1000, instruction_count=4, branch_pc=0x100C,
                           kind=BranchKind.CONDITIONAL, taken=False,
                           target=0x2000, next_pc=0x1010)

    def _not_taken_biased_bpu(self):
        """A BPU holding a valid BTB entry but predicting not-taken."""
        bpu = BranchPredictionUnit(ConventionalBTB(entries=64))
        bpu.resolve(self._taken_conditional())  # installs the BTB entry
        for _ in range(6):
            bpu.resolve(self._not_taken_conditional())
        return bpu

    def test_taken_direction_miss_with_btb_entry_is_not_misfetch(self):
        bpu = self._not_taken_biased_bpu()
        prediction = bpu.predict(self._taken_conditional())
        assert prediction.btb_hit
        assert not prediction.predicted_taken  # predictor says not-taken
        assert prediction.direction_mispredicted
        assert not prediction.misfetch  # fetch fell through; decode saw nothing

    def test_taken_direction_miss_charges_direction_penalty(self):
        bpu = self._not_taken_biased_bpu()
        simulator = FrontendSimulator(bpu=bpu, perfect_l1i=True, config=self.CONFIG)
        result = simulator.run(Trace([self._taken_conditional()], name="dirmiss"))
        assert result.direction_mispredictions == 1
        assert result.direction_stall_cycles == self.CONFIG.direction_mispredict_penalty_cycles
        assert result.misfetches == 0
        assert result.misfetch_stall_cycles == 0

    def test_btb_miss_on_predicted_taken_branch_is_misfetch(self):
        # An unconditional branch is always predicted taken; a cold BTB
        # cannot supply its target, which is the decode-time misfetch case.
        record = FetchRecord(start=0x1000, instruction_count=4, branch_pc=0x100C,
                             kind=BranchKind.UNCONDITIONAL, taken=True,
                             target=0x2000, next_pc=0x2000)
        simulator = FrontendSimulator(
            bpu=BranchPredictionUnit(ConventionalBTB(entries=64)),
            perfect_l1i=True, config=self.CONFIG,
        )
        result = simulator.run(Trace([record], name="misfetch"))
        assert result.misfetches == 1
        assert result.misfetch_stall_cycles == self.CONFIG.misfetch_penalty_cycles
        assert result.direction_mispredictions == 0
        assert result.direction_stall_cycles == 0

    def test_stall_classes_are_disjoint(self):
        # Every region is charged at most one of the two redirect penalties.
        bpu = self._not_taken_biased_bpu()
        taken = self._taken_conditional()
        prediction = bpu.predict(taken)
        assert not (prediction.misfetch and prediction.direction_mispredicted)


class TestDesignPoints:
    def test_all_named_designs_build(self, tiny_program):
        for name in DESIGN_POINTS:
            simulator, area = build_design(name, tiny_program)
            assert simulator.design_name == name
            assert area.total_mm2 >= 0

    def test_unknown_design_rejected(self, tiny_program):
        with pytest.raises(KeyError):
            build_design("warp_drive", tiny_program)

    def test_confluence_design_wires_confluence(self, tiny_program):
        simulator, _ = build_design("confluence", tiny_program)
        assert simulator.confluence is not None
        assert simulator.bpu.btb is simulator.confluence.airbtb
        assert simulator.prefetcher is simulator.confluence.prefetcher

    def test_two_level_design_has_larger_area_than_confluence(self, tiny_program):
        _, two_level_area = build_design("2level_shift", tiny_program)
        _, confluence_area = build_design("confluence", tiny_program)
        assert two_level_area.total_mm2 > confluence_area.total_mm2


class TestAreaModel:
    def test_power_law_matches_paper_anchor_points(self):
        assert sram_area_mm2(9.9) == pytest.approx(0.08, rel=0.05)
        assert sram_area_mm2(140) == pytest.approx(0.6, rel=0.05)

    def test_zero_and_negative_storage(self):
        assert sram_area_mm2(0) == 0.0
        with pytest.raises(ValueError):
            sram_area_mm2(-1)

    def test_confluence_area_about_one_percent_of_core(self, tiny_program):
        _, area = build_design("confluence", tiny_program)
        assert area.fraction_of_core < 0.03

    def test_two_level_area_much_larger(self, tiny_program):
        _, area = build_design("2level_shift", tiny_program)
        assert area.fraction_of_core > 0.07

    def test_relative_area_to_baseline(self, tiny_program):
        _, baseline = build_design("baseline", tiny_program)
        _, confluence = build_design("confluence", tiny_program)
        relative = confluence.relative_to(baseline)
        assert 1.0 < relative < 1.03

    def test_report_composition(self):
        model = AreaModel()
        report = model.report_for("x", btb_storage_kb=10, shift_shared=True,
                                  extra_components={"predecoder": 0.01})
        assert set(report.components_mm2) == {"btb", "shift", "predecoder"}
        assert report.total_mm2 == pytest.approx(sum(report.components_mm2.values()))


class TestMetrics:
    def test_mpki(self):
        assert mpki(50, 100_000) == pytest.approx(0.5)

    def test_mpki_rejects_degenerate_instruction_count(self):
        # A run that measured nothing is broken, not miss-free (the same
        # loud-failure policy as geometric_mean/normalize).
        with pytest.raises(ValueError, match="positive instruction count"):
            mpki(50, 0)
        with pytest.raises(ValueError, match="positive instruction count"):
            mpki(0, -3)

    def test_miss_coverage_signs(self):
        assert miss_coverage(100, 10) == pytest.approx(0.9)
        assert miss_coverage(100, 150) == pytest.approx(-0.5)

    def test_miss_coverage_rejects_missless_baseline(self):
        with pytest.raises(ValueError, match="positive baseline misses"):
            miss_coverage(0, 10)

    def test_speedup(self):
        assert speedup(200, 100) == pytest.approx(2.0)
        assert speedup(0, 100) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0

    def test_geometric_mean_rejects_non_positive(self):
        # A zero speedup means a broken run; it must not be silently dropped.
        with pytest.raises(ValueError, match="non-positive"):
            geometric_mean([1.0, 0.0, 4.0])
        with pytest.raises(ValueError):
            geometric_mean([-1.0])

    def test_fraction_of_ideal(self):
        assert fraction_of_ideal(1.30, 1.35) == pytest.approx(0.857, abs=0.01)
        assert fraction_of_ideal(1.1, 1.0) == 0.0

    def test_normalize(self):
        values = {"a": 2.0, "b": 4.0}
        assert normalize(values, "a") == {"a": 1.0, "b": 2.0}
        with pytest.raises(ValueError):
            normalize({"a": 0.0}, "a")

    def test_normalize_unknown_reference(self):
        with pytest.raises(ValueError, match="known: a, b"):
            normalize({"a": 1.0, "b": 2.0}, "missing")


class TestChipMultiprocessor:
    def test_small_cmp_runs_and_aggregates(self, tiny_program):
        cmp_model = ChipMultiprocessor(tiny_program, cores=2, instructions_per_core=8_000)
        result = cmp_model.run_design("confluence")
        assert len(result.core_results) == 2
        assert result.instructions > 0
        assert result.ipc > 0
        assert result.area is not None

    def test_requires_positive_cores(self, tiny_program):
        with pytest.raises(ValueError):
            ChipMultiprocessor(tiny_program, cores=0)

    def test_unknown_design_rejected(self, tiny_program):
        cmp_model = ChipMultiprocessor(tiny_program, cores=1, instructions_per_core=5_000)
        with pytest.raises(KeyError):
            cmp_model.run_design("bogus")

    def test_speedup_between_cmp_results(self, small_program):
        cmp_model = ChipMultiprocessor(small_program, cores=1, instructions_per_core=30_000)
        baseline = cmp_model.run_design("baseline")
        ideal = cmp_model.run_design("ideal")
        assert ideal.speedup_over(baseline) > 1.0
