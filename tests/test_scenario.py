"""Tests for consolidation scenarios: the spec, the heterogeneous CMP,
the sweep integration and the zero-copy core fan-out.

The two load-bearing pins:

* **Degenerate parity** — a single-profile scenario reproduces the
  homogeneous ``run_design`` result bit for bit (the PR's acceptance
  criterion), and
* **Composition** — a mixed scenario's per-profile core groups match the
  corresponding homogeneous CMPs exactly, because each profile's cores see
  the same traces and the same recorded history whether or not another
  workload shares the chip.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import Session, run_grid
from repro.core.cmp import ChipMultiprocessor, _replay_core
from repro.sweep import SweepCell, TraceStore, clear_workload_memo, run_sweep
from repro.workloads import get_profile, workload_program
from repro.workloads.scenario import (
    SCENARIOS,
    BoundScenario,
    Scenario,
    ScenarioEntry,
    get_scenario,
    register_scenario,
    scenario_from_profile,
)

DESIGNS = ["baseline", "confluence"]
SCALE = 0.08
INSTRUCTIONS = 5_000


def _strip_workload(result):
    """FrontendResult minus the trace-name-derived workload label.

    Used when comparing cores across runs whose traces are named by their
    (different) core slots; every measured field must still match.
    """
    return dataclasses.replace(result, workload="")


class TestCatalog:
    def test_builtin_scenarios_are_registered(self):
        for name in ("consolidated_oltp_dss", "noisy_neighbor_media",
                     "scale_out_consolidation"):
            assert get_scenario(name).name == name

    def test_unknown_scenario_lists_known_names(self):
        with pytest.raises(KeyError, match="known:.*consolidated_oltp_dss"):
            get_scenario("nope")

    def test_register_rejects_duplicates(self):
        scenario = scenario_from_profile("oltp_db2", name="scenario_test_dup")
        register_scenario(scenario)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_scenario(scenario)
            register_scenario(scenario, overwrite=True)  # explicit wins
        finally:
            del SCENARIOS["scenario_test_dup"]

    def test_entry_validation(self):
        with pytest.raises(ValueError, match="weights must be positive"):
            ScenarioEntry(profile="oltp_db2", weight=0)
        with pytest.raises(ValueError, match="at least one entry"):
            Scenario(name="empty", description="", entries=())


class TestBind:
    def test_equal_weights_split_evenly_and_contiguously(self):
        bound = get_scenario("consolidated_oltp_dss").bind(
            cores=4, scale=SCALE, instructions_per_core=INSTRUCTIONS
        )
        names = [workload.profile.name for workload in bound]
        assert names == ["oltp_db2", "oltp_db2", "dss_qry2", "dss_qry2"]

    def test_weighted_deal(self):
        bound = get_scenario("noisy_neighbor_media").bind(cores=4, scale=SCALE)
        assert bound.core_counts() == {"web_frontend": 3, "media_streaming": 1}

    def test_largest_remainder_is_deterministic(self):
        scenario = Scenario(
            name="thirds", description="",
            entries=tuple(
                ScenarioEntry(profile=name)
                for name in ("oltp_db2", "dss_qry2", "media_streaming")
            ),
        )
        bound = scenario.bind(cores=4, scale=SCALE)
        # 4 cores over three equal weights: the leftover core goes to the
        # first entry (ties broken by declaration order).
        assert bound.core_counts() == {
            "oltp_db2": 2, "dss_qry2": 1, "media_streaming": 1,
        }

    def test_seeds_are_per_profile_not_per_slot(self):
        bound = get_scenario("consolidated_oltp_dss").bind(
            cores=4, scale=SCALE, trace_seed_base=100
        )
        seeds = [(w.profile.name, w.seed) for w in bound]
        # Both profiles restart at the base: this is what lets scenarios
        # share trace artifacts with each other and with homogeneous runs.
        assert seeds == [
            ("oltp_db2", 100), ("oltp_db2", 101),
            ("dss_qry2", 100), ("dss_qry2", 101),
        ]

    def test_repeated_profile_entries_continue_the_seed_run(self):
        scenario = Scenario(
            name="split_oltp", description="",
            entries=(
                ScenarioEntry(profile="oltp_db2"),
                ScenarioEntry(profile="dss_qry2"),
                ScenarioEntry(profile="oltp_db2"),
            ),
        )
        bound = scenario.bind(cores=3, scale=SCALE)
        seeds = [(w.profile.name, w.seed) for w in bound]
        assert seeds == [
            ("oltp_db2", 100), ("dss_qry2", 100), ("oltp_db2", 101),
        ]

    def test_instruction_budget_precedence(self):
        scenario = Scenario(
            name="budgets", description="",
            entries=(
                ScenarioEntry(profile="oltp_db2", instructions=7_000),
                ScenarioEntry(profile="dss_qry2"),
            ),
        )
        explicit = scenario.bind(cores=2, scale=SCALE, instructions_per_core=4_000)
        assert [w.instructions for w in explicit] == [7_000, 4_000]
        fallback = scenario.bind(cores=2, scale=SCALE)
        recommended = get_profile("dss_qry2").scaled(SCALE).recommended_trace_instructions
        assert [w.instructions for w in fallback] == [7_000, recommended]

    def test_scale_reaches_the_profiles(self):
        bound = get_scenario("consolidated_oltp_dss").bind(cores=2, scale=SCALE)
        assert bound.assignments[0].profile == get_profile("oltp_db2").scaled(SCALE)

    def test_bind_validation(self):
        scenario = get_scenario("consolidated_oltp_dss")
        with pytest.raises(ValueError, match="at least one core"):
            scenario.bind(cores=0)
        with pytest.raises(ValueError, match="at least one core"):
            BoundScenario(name="empty", assignments=())

    def test_bind_refuses_to_starve_an_entry(self):
        # noisy_neighbor_media at 2 cores would deal [2, 0]: a consolidation
        # silently missing its noisy neighbor must raise, not run under a
        # name promising a mix it does not contain.
        with pytest.raises(ValueError, match="media_streaming"):
            get_scenario("noisy_neighbor_media").bind(cores=2, scale=SCALE)
        with pytest.raises(ValueError, match="leaves no cores"):
            get_scenario("scale_out_consolidation").bind(cores=4, scale=SCALE)

    def test_bound_scenario_is_hashable_and_reporting_helpers(self):
        bound = get_scenario("consolidated_oltp_dss").bind(
            cores=4, scale=SCALE, instructions_per_core=INSTRUCTIONS
        )
        assert hash(bound) == hash(
            get_scenario("consolidated_oltp_dss").bind(
                cores=4, scale=SCALE, instructions_per_core=INSTRUCTIONS
            )
        )
        assert bound.cores == len(bound) == 4
        assert bound.instructions_per_core == INSTRUCTIONS
        assert [profile.name for profile in bound.profiles] == [
            "oltp_db2", "dss_qry2",
        ]


class TestDegenerateParity:
    """The acceptance pin: one-profile scenario == homogeneous, bit for bit."""

    def test_single_profile_scenario_matches_homogeneous_run(self, tiny_program):
        homogeneous = ChipMultiprocessor(
            tiny_program, cores=3, instructions_per_core=INSTRUCTIONS
        ).run_design("confluence")
        bound = scenario_from_profile(tiny_program.profile).bind(
            cores=3, instructions_per_core=INSTRUCTIONS
        )
        heterogeneous = ChipMultiprocessor(scenario=bound).run_design("confluence")

        assert heterogeneous.core_results == homogeneous.core_results
        assert heterogeneous.ipc == homogeneous.ipc
        assert heterogeneous.btb_mpki == homogeneous.btb_mpki
        assert heterogeneous.area == homogeneous.area
        assert heterogeneous.workload == homogeneous.workload
        assert heterogeneous.core_profiles == homogeneous.core_profiles

    def test_parity_holds_through_the_sweep_layer(self, tmp_path):
        clear_workload_memo()
        profile_run = run_sweep(
            ["oltp_db2"], ["baseline"],
            scale=SCALE, cores=2, instructions_per_core=INSTRUCTIONS,
        )
        scenario = scenario_from_profile("oltp_db2", name="oltp_solo")
        scenario_run = run_sweep(
            [], ["baseline"], scenarios=[scenario],
            scale=SCALE, cores=2, instructions_per_core=INSTRUCTIONS,
        )
        via_profile = profile_run.summary("oltp_db2", "baseline")
        via_scenario = scenario_run.summary("oltp_solo", "baseline")
        # Identical measurements; only the workload labels may differ.
        for key in ("instructions", "cycles", "ipc", "btb_mpki", "l1i_mpki",
                    "core_ipc", "cores", "core_profiles", "per_profile"):
            assert via_scenario[key] == via_profile[key], key


class TestHeterogeneousExecution:
    @pytest.fixture(scope="class")
    def mixed(self):
        return get_scenario("consolidated_oltp_dss").bind(
            cores=4, scale=SCALE, instructions_per_core=INSTRUCTIONS
        )

    def test_mixed_run_composes_from_homogeneous_groups(self, mixed):
        """Each profile's core group matches its standalone homogeneous CMP."""
        result = ChipMultiprocessor(scenario=mixed).run_design("confluence")
        assert result.core_profiles == [
            "oltp_db2", "oltp_db2", "dss_qry2", "dss_qry2",
        ]
        start = 0
        for profile in mixed.profiles:
            count = mixed.core_counts()[profile.name]
            alone = ChipMultiprocessor(
                workload_program(profile), cores=count,
                instructions_per_core=INSTRUCTIONS,
            ).run_design("confluence")
            group = result.core_results[start:start + count]
            assert [_strip_workload(r) for r in group] \
                == [_strip_workload(r) for r in alone.core_results], profile.name
            start += count

    def test_per_profile_breakdown_sums_to_the_chip(self, mixed):
        result = ChipMultiprocessor(scenario=mixed).run_design("baseline")
        breakdown = result.per_profile()
        assert set(breakdown) == {"oltp_db2", "dss_qry2"}
        assert sum(group["cores"] for group in breakdown.values()) == 4
        assert sum(group["instructions"] for group in breakdown.values()) \
            == result.instructions
        assert sum(group["cycles"] for group in breakdown.values()) \
            == result.cycles

    def test_parallel_fanout_is_bit_identical(self, mixed):
        serial = ChipMultiprocessor(scenario=mixed).run_design("confluence")
        parallel = ChipMultiprocessor(scenario=mixed).run_design(
            "confluence", workers=2
        )
        assert parallel.core_results == serial.core_results

    def test_scenario_and_program_are_mutually_exclusive(self, tiny_program, mixed):
        with pytest.raises(ValueError, match="not both"):
            ChipMultiprocessor(tiny_program, scenario=mixed)
        with pytest.raises(ValueError, match="program or a scenario"):
            ChipMultiprocessor()


class TestZeroCopyCoreFanout:
    """Workers receive trace-store artifact paths, never pickled columns."""

    def test_store_backed_traces_ship_as_paths(self, tmp_path):
        bound = get_scenario("consolidated_oltp_dss").bind(
            cores=4, scale=SCALE, instructions_per_core=INSTRUCTIONS
        )
        store = TraceStore(tmp_path / "traces")
        cold = ChipMultiprocessor(scenario=bound, trace_store=store)
        serial = cold.run_design("baseline")
        assert cold._trace_paths is not None
        assert all(path is not None for path in cold._trace_paths)

        warm = ChipMultiprocessor(scenario=bound, trace_store=store)
        parallel = warm.run_design("baseline", workers=2)
        assert warm.traces_loaded == 4 and warm.traces_mapped == 4
        assert parallel.core_results == serial.core_results

    def test_replay_worker_maps_the_artifact(self, tmp_path, tiny_program):
        """_replay_core with (path, no trace) equals the in-process result."""
        store = TraceStore(tmp_path / "traces")
        cmp_model = ChipMultiprocessor(
            tiny_program, cores=2, instructions_per_core=INSTRUCTIONS,
            trace_store=store,
        )
        serial = cmp_model.run_design("baseline")
        from repro.core.designs import resolve_design
        from repro.prefetch.shift import ShiftHistory
        from repro.caches.llc import SharedLLC

        llc = SharedLLC(cmp_model._llc_config())
        history = ShiftHistory(llc=llc)
        # Replays core 1 from its on-disk artifact, exactly as a pool worker
        # does; the recorded history is empty on the baseline design (no
        # SHIFT), so an empty snapshot reproduces the serial replay.
        job = (
            resolve_design("baseline"),
            tiny_program,
            None,
            cmp_model._trace_paths[1],
            cmp_model._core_traces()[1].name,
            history.snapshot(),
            cmp_model._llc_config(),
            None,
            None,
            "test/core1",
        )
        assert _replay_core(job) == serial.core_results[1]

    def test_detaching_the_store_drops_stale_artifact_paths(self, tmp_path):
        # A memoized driver that recorded artifact paths under one store must
        # not keep shipping them to workers after the store is detached (or
        # swapped to another directory): the paths may no longer exist, and
        # the driver holds perfectly good heap traces.
        from repro.sweep import cmp_driver

        clear_workload_memo()
        profile = get_profile("oltp_db2").scaled(SCALE)
        store = TraceStore(tmp_path / "traces")
        attached = cmp_driver(profile, 2, INSTRUCTIONS, trace_store=store)
        with_store = attached.run_design("baseline")
        assert attached._trace_paths and all(attached._trace_paths)

        detached = cmp_driver(profile, 2, INSTRUCTIONS, trace_store=None)
        assert detached is attached
        assert detached._trace_paths is None
        store.prune(0)  # the old artifacts are gone; heap traces must serve
        without_store = detached.run_design("baseline", workers=2)
        assert without_store.core_results == with_store.core_results
        clear_workload_memo()

    def test_without_a_store_traces_still_travel(self, tiny_program):
        cmp_model = ChipMultiprocessor(
            tiny_program, cores=3, instructions_per_core=INSTRUCTIONS
        )
        serial = cmp_model.run_design("baseline")
        parallel = ChipMultiprocessor(
            tiny_program, cores=3, instructions_per_core=INSTRUCTIONS
        ).run_design("baseline", workers=2)
        assert parallel.core_results == serial.core_results


class TestScenarioSweeps:
    KW = dict(scale=SCALE, cores=4, instructions_per_core=6_000)

    def test_outcome_shape_and_summaries(self):
        outcome = run_sweep(
            [], DESIGNS, scenarios=["consolidated_oltp_dss"], **self.KW
        )
        assert outcome.profiles == []
        assert outcome.scenarios == ["consolidated_oltp_dss"]
        assert outcome.workloads == ["consolidated_oltp_dss"]
        summary = outcome.summary("consolidated_oltp_dss", "confluence")
        assert summary["scenario"] == "consolidated_oltp_dss"
        assert summary["core_profiles"] == [
            "oltp_db2", "oltp_db2", "dss_qry2", "dss_qry2",
        ]
        assert set(summary["per_profile"]) == {"oltp_db2", "dss_qry2"}

    def test_scenario_cells_are_cached(self, tmp_path):
        cache = tmp_path / "cache"
        cold = run_sweep(
            [], DESIGNS, scenarios=["consolidated_oltp_dss"],
            cache=cache, **self.KW,
        )
        assert cold.stats.simulated == len(DESIGNS)
        warm = run_sweep(
            [], DESIGNS, scenarios=["consolidated_oltp_dss"],
            cache=cache, **self.KW,
        )
        assert warm.stats.simulated == 0
        assert warm.stats.cache_hits == len(DESIGNS)
        assert warm.summaries == cold.summaries

    def test_cross_scenario_trace_dedup(self, tmp_path):
        """A scenario over a store warmed by homogeneous runs generates nothing."""
        store = tmp_path / "traces"
        clear_workload_memo()
        homog = run_sweep(
            ["oltp_db2", "dss_qry2"], ["baseline"], trace_store=store,
            scale=SCALE, cores=2, instructions_per_core=6_000,
        )
        assert homog.stats.traces_generated == 4
        clear_workload_memo()
        mixed = run_sweep(
            [], ["baseline"], scenarios=["consolidated_oltp_dss"],
            trace_store=store, scale=SCALE, cores=4,
            instructions_per_core=6_000,
        )
        assert mixed.stats.traces_generated == 0
        assert mixed.stats.traces_loaded == 4

    def test_mixed_grid_runs_profiles_and_scenarios_together(self):
        outcome = run_sweep(
            ["oltp_db2"], ["baseline"], scenarios=["consolidated_oltp_dss"],
            **self.KW,
        )
        assert outcome.workloads == ["oltp_db2", "consolidated_oltp_dss"]
        assert outcome.stats.cells == 2

    def test_scenario_parallel_cells_match_serial(self, tmp_path):
        serial = run_sweep(
            [], DESIGNS, scenarios=["consolidated_oltp_dss"], **self.KW
        )
        parallel = run_sweep(
            [], DESIGNS, scenarios=["consolidated_oltp_dss"], workers=2,
            **self.KW,
        )
        assert parallel.summaries == serial.summaries

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="no profiles or scenarios"):
            run_sweep([], DESIGNS, **self.KW)

    def test_scenario_profile_name_collision_rejected(self):
        collider = scenario_from_profile("oltp_db2")  # named "oltp_db2"
        with pytest.raises(ValueError, match="collide"):
            run_sweep(["oltp_db2"], ["baseline"], scenarios=[collider], **self.KW)


class TestScenarioCellKeys:
    def _cell(self, bound) -> SweepCell:
        from repro.core.designs import resolve_design

        return SweepCell(
            profile=bound,
            spec=resolve_design("baseline"),
            cores=bound.cores,
            instructions_per_core=bound.instructions_per_core,
        )

    def test_key_covers_the_full_assignment(self):
        bound = get_scenario("consolidated_oltp_dss").bind(
            cores=4, scale=SCALE, instructions_per_core=INSTRUCTIONS
        )
        base_key = self._cell(bound).key()
        assert base_key == self._cell(bound).key()

        bumped_seed = BoundScenario(
            name=bound.name,
            assignments=bound.assignments[:-1] + (
                dataclasses.replace(bound.assignments[-1], seed=999),
            ),
        )
        assert self._cell(bumped_seed).key() != base_key

        bumped_budget = BoundScenario(
            name=bound.name,
            assignments=bound.assignments[:-1] + (
                dataclasses.replace(
                    bound.assignments[-1], instructions=INSTRUCTIONS + 1
                ),
            ),
        )
        assert self._cell(bumped_budget).key() != base_key

    def test_scenario_key_differs_from_profile_key(self):
        bound = scenario_from_profile("oltp_db2").bind(
            cores=2, scale=SCALE, instructions_per_core=INSTRUCTIONS
        )
        scenario_cell = self._cell(bound)
        from repro.core.designs import resolve_design

        profile_cell = SweepCell(
            profile=get_profile("oltp_db2").scaled(SCALE),
            spec=resolve_design("baseline"),
            cores=2,
            instructions_per_core=INSTRUCTIONS,
        )
        assert scenario_cell.key() != profile_cell.key()


class TestSessionScenario:
    KW = dict(scale=SCALE, cores=4, instructions_per_core=6_000)

    def test_session_runs_a_scenario(self):
        session = Session(scenario="consolidated_oltp_dss", **self.KW)
        assert session.profile is None
        assert session.workload_name == "consolidated_oltp_dss"
        report = session.run(DESIGNS)
        assert report.profile == "consolidated_oltp_dss"
        assert report["confluence"]["core_profiles"][:2] == ["oltp_db2", "oltp_db2"]

    def test_session_matches_run_grid(self):
        report = Session(scenario="consolidated_oltp_dss", **self.KW).run(DESIGNS)
        grid = run_grid([], DESIGNS, scenarios=["consolidated_oltp_dss"], **self.KW)
        assert report == grid["consolidated_oltp_dss"]

    def test_scenario_session_has_no_single_program(self):
        session = Session(scenario="consolidated_oltp_dss", **self.KW)
        with pytest.raises(ValueError, match="spans multiple programs"):
            session.program

    def test_scenario_session_cmp_property(self):
        session = Session(scenario="consolidated_oltp_dss", **self.KW)
        assert session.cmp.workload_name == "consolidated_oltp_dss"
        assert session.cmp.cores == 4


class TestScenarioAnalysis:
    def test_scenario_grid_and_comparison_rows(self):
        from repro.analysis import scenario_comparison_rows, scenario_grid

        reports = scenario_grid(
            scenarios=("consolidated_oltp_dss",),
            designs=["baseline", "confluence"],
            scale=SCALE, cores=4, instructions_per_core=6_000,
        )
        rows = scenario_comparison_rows(reports)
        assert len(rows) == 2
        first = rows[0]
        assert first["scenario"] == "consolidated_oltp_dss"
        assert first["design"] == "baseline"
        assert first["speedup"] == 1.0
        assert "ipc[oltp_db2]" in first and "ipc[dss_qry2]" in first
