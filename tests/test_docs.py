"""Documentation integrity: intra-repo links resolve, CLI examples are real.

Two drift guards, both cheap enough for tier-1:

* every relative markdown link (and same-file anchor) in the repo's
  documentation points at something that exists — CI's docs job runs this
  file, so a renamed doc or dropped heading fails the build;
* every ``--flag`` used in a documented ``python -m repro <cmd>`` example
  is a real option of that subcommand's parser — the docs cannot describe
  a CLI that no longer exists.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.__main__ import _build_parser

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The documentation set under the link gate: repo-level markdown + docs/.
DOC_FILES = sorted(
    [
        *REPO_ROOT.glob("*.md"),
        *(REPO_ROOT / "docs").glob("*.md"),
    ]
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_FENCE = re.compile(r"```[a-z]*\n(.*?)```", re.DOTALL)


def _anchors(path: Path) -> set:
    """GitHub-style anchor slugs of every heading in a markdown file."""
    slugs = set()
    for heading in _HEADING.findall(path.read_text(encoding="utf-8")):
        text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
        slug = re.sub(r"[^\w\- ]", "", text.lower()).replace(" ", "-")
        slugs.add(slug)
    return slugs


def _intra_repo_links(path: Path):
    for target in _LINK.findall(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        yield target


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_markdown_links_resolve(doc):
    broken = []
    for target in _intra_repo_links(doc):
        file_part, _, anchor = target.partition("#")
        resolved = doc if not file_part else (doc.parent / file_part).resolve()
        if not resolved.exists():
            broken.append(f"{target} -> missing file {resolved}")
            continue
        if anchor and resolved.suffix == ".md" and anchor not in _anchors(resolved):
            broken.append(f"{target} -> no heading for anchor #{anchor}")
    assert not broken, f"{doc}: broken link(s): {broken}"


def test_every_doc_is_reachable_from_the_index():
    """docs/index.md is the TOC: every doc page must appear in it."""
    index = REPO_ROOT / "docs" / "index.md"
    listed = set(_intra_repo_links(index))
    for doc in (REPO_ROOT / "docs").glob("*.md"):
        if doc.name == "index.md":
            continue
        assert doc.name in listed, f"docs/index.md does not link {doc.name}"


def _documented_cli_flags():
    """(doc, subcommand, flag) for every flag in a documented CLI example."""
    out = []
    for doc in DOC_FILES:
        for block in _FENCE.findall(doc.read_text(encoding="utf-8")):
            # Join backslash-continued lines so multi-line examples parse.
            for line in block.replace("\\\n", " ").splitlines():
                match = re.search(r"python -m repro\s+(\w+)", line)
                if not match:
                    continue
                sub = match.group(1)
                for flag in re.findall(r"(--[\w-]+)", line):
                    out.append((doc.relative_to(REPO_ROOT), sub, flag))
    return out


def test_documented_cli_examples_use_real_flags():
    parser = _build_parser()
    actions = next(
        a for a in parser._actions if a.__class__.__name__ == "_SubParsersAction"
    )
    known = {
        name: {opt for action in sub._actions for opt in action.option_strings}
        for name, sub in actions.choices.items()
    }
    stale = []
    for doc, sub, flag in _documented_cli_flags():
        if sub not in known:
            stale.append(f"{doc}: unknown subcommand 'repro {sub}'")
        elif flag not in known[sub]:
            stale.append(f"{doc}: 'repro {sub}' has no flag {flag}")
    assert not stale, f"documentation drifted from the CLI: {stale}"
