"""Tests for the columnar trace representation and its on-disk format."""

from __future__ import annotations

import dataclasses

import pytest

from repro.isa.instruction import BLOCK_SIZE_BYTES, BranchKind, block_address
from repro.workloads import TraceWalker, generate_trace
from repro.workloads.packed import (
    KIND_CODES,
    NO_VALUE,
    PackedTrace,
    PackedTraceBuilder,
    kind_code,
    kind_from_code,
    load_packed,
    save_chunks,
)
from repro.workloads.trace import FetchRecord, Trace, TraceStatistics, pack_records

BASE = 0x4000_0000


def _record(start, count=4, kind=BranchKind.CONDITIONAL, taken=True,
            target=None, next_pc=None, branch=True):
    branch_pc = start + (count - 1) * 4 if branch else None
    if next_pc is None:
        next_pc = target if (taken and target is not None) else start + count * 4
    return FetchRecord(
        start=start,
        instruction_count=count,
        branch_pc=branch_pc,
        kind=kind if branch else None,
        taken=taken if branch else False,
        target=target,
        next_pc=next_pc,
    )


def _reference_statistics(records) -> TraceStatistics:
    """The original record-walk statistics algorithm (the view-path oracle)."""
    stats = TraceStatistics()
    blocks, taken_pcs = set(), set()
    for record in records:
        stats.fetch_region_count += 1
        stats.instruction_count += record.instruction_count
        blocks.update(record.blocks())
        if record.branch_pc is None:
            continue
        stats.branch_count += 1
        if record.kind is BranchKind.CONDITIONAL:
            stats.conditional_count += 1
            if record.taken:
                stats.conditional_taken_count += 1
        if record.kind is not None and record.kind.is_call:
            stats.call_count += 1
        if record.kind is BranchKind.RETURN:
            stats.return_count += 1
        if record.kind is not None and record.kind.is_indirect:
            stats.indirect_count += 1
        if record.taken:
            stats.taken_branch_count += 1
            taken_pcs.add(record.branch_pc)
    stats.unique_blocks = len(blocks)
    stats.unique_taken_branches = len(taken_pcs)
    return stats


class TestKindCodes:
    def test_round_trip_every_kind(self):
        for kind in BranchKind:
            assert kind_from_code(kind_code(kind)) is kind

    def test_none_round_trips_through_sentinel(self):
        assert kind_code(None) == NO_VALUE
        assert kind_from_code(NO_VALUE) is None

    def test_codes_are_stable_column_indices(self):
        # On-disk files depend on this ordering; changing it requires a
        # PACKED_TRACE_FORMAT_VERSION bump.
        assert [kind_code(kind) for kind in KIND_CODES] == list(range(len(KIND_CODES)))


class TestPackedBuilder:
    def test_records_round_trip_through_columns(self, tiny_trace):
        packed = pack_records(tiny_trace.records, name="copy")
        assert len(packed) == len(tiny_trace)
        assert all(a == b for a, b in zip(Trace.from_packed(packed), tiny_trace, strict=True))

    def test_chunked_flush_is_equivalent(self, tiny_trace):
        records = list(tiny_trace.records)[:500]
        small = PackedTraceBuilder(name="t", chunk_regions=7)
        big = PackedTraceBuilder(name="t")
        for record in records:
            small.append_record(record)
            big.append_record(record)
        small_packed, big_packed = small.build(), big.build()
        for attr in ("starts", "branch_pcs", "kinds", "takens", "block_counts"):
            assert getattr(small_packed, attr) == getattr(big_packed, attr)

    def test_block_span_columns_match_record_blocks(self, tiny_trace):
        packed = tiny_trace.packed
        for index, record in zip(range(300), tiny_trace.records, strict=False):
            assert packed.region_blocks(index) == record.blocks()
            assert packed.block_firsts[index] == block_address(record.start)

    def test_ragged_columns_rejected(self):
        builder = PackedTraceBuilder()
        builder.append(BASE, 4, BASE + 12, 0, 1, BASE + 64, BASE + 64)
        packed = builder.build()
        columns = [getattr(packed, attr) for attr in
                   ("starts", "instruction_counts", "branch_pcs", "kinds",
                    "takens", "targets", "next_pcs", "block_firsts", "block_counts")]
        columns[0] = columns[0] + columns[0]  # starts twice as long
        with pytest.raises(ValueError, match="ragged"):
            PackedTrace(columns)

    def test_take_chunk_detaches(self):
        builder = PackedTraceBuilder(name="s")
        assert builder.take_chunk() is None
        builder.append(BASE, 4, BASE + 12, 0, 1, NO_VALUE, BASE + 16)
        first = builder.take_chunk()
        assert first is not None and len(first) == 1
        assert builder.take_chunk() is None  # already detached


class TestStatisticsParity:
    """The columnar statistics pass must match the record-walk oracle."""

    def test_generated_trace(self, tiny_trace):
        assert tiny_trace.statistics() == _reference_statistics(tiny_trace.records)

    def test_handcrafted_trace_with_branchless_regions(self):
        records = [
            _record(BASE, count=20, kind=BranchKind.CALL, target=BASE + 0x400),
            _record(BASE + 0x400, count=3, kind=BranchKind.RETURN, next_pc=BASE + 80),
            _record(BASE + 80, count=5, branch=False),
            _record(BASE + 100, count=2, kind=BranchKind.INDIRECT, next_pc=BASE),
            _record(BASE, count=4, taken=False),
        ]
        trace = Trace(records, name="hand")
        assert trace.statistics() == _reference_statistics(records)

    def test_vectorized_statistics_match_the_pure_loop(self, tiny_trace):
        # statistics_tuple may take the numpy path; the pure-array fold is
        # the behavioral reference and the two must agree exactly.
        assert tiny_trace.packed.statistics_tuple() == \
            tiny_trace.packed.statistics_tuple_reference()

    def test_vectorized_statistics_match_on_handcrafted_edge_cases(self):
        records = [
            _record(BASE, count=20, kind=BranchKind.CALL, target=BASE + 0x400),
            _record(BASE + 0x400, count=3, kind=BranchKind.RETURN, next_pc=BASE + 80),
            _record(BASE + 80, count=5, branch=False),
            _record(BASE + 100, count=2, kind=BranchKind.INDIRECT, next_pc=BASE),
            _record(BASE, count=4, taken=False),
            _record(BASE + 0x800, count=40, kind=BranchKind.INDIRECT_CALL,
                    next_pc=BASE),
        ]
        packed = Trace(records, name="edges").packed
        assert packed.statistics_tuple() == packed.statistics_tuple_reference()

    def test_vectorized_branch_density_matches_the_pure_loop(self, tiny_trace):
        vectorized = tiny_trace.branch_density()
        reference = tiny_trace.branch_density_reference()
        assert vectorized["static"] == pytest.approx(reference["static"])
        assert vectorized["dynamic"] == pytest.approx(reference["dynamic"])

    def test_vectorized_branch_density_on_branchless_trace(self):
        trace = Trace([_record(BASE, branch=False) for _ in range(5)], name="nb")
        assert trace.branch_density() == {"static": 0.0, "dynamic": 0.0}
        assert trace.branch_density_reference() == {"static": 0.0, "dynamic": 0.0}

    def test_branch_density_matches_record_walk(self, tiny_trace):
        # Reference implementation over the record view.
        from repro.isa.instruction import block_address as baddr

        static_branches, dynamic_counts = {}, []
        current_block, current_branches = None, set()
        for record in tiny_trace.records:
            if record.branch_pc is None:
                continue
            branch_block = baddr(record.branch_pc)
            static_branches.setdefault(branch_block, set()).add(record.branch_pc)
            if branch_block != current_block:
                if current_block is not None:
                    dynamic_counts.append(len(current_branches))
                current_block = branch_block
                current_branches = set()
            if record.taken:
                current_branches.add(record.branch_pc)
        if current_block is not None:
            dynamic_counts.append(len(current_branches))
        expected_static = sum(len(p) for p in static_branches.values()) / len(static_branches)
        expected_dynamic = sum(dynamic_counts) / len(dynamic_counts)
        densities = tiny_trace.branch_density()
        assert densities["static"] == pytest.approx(expected_static)
        assert densities["dynamic"] == pytest.approx(expected_dynamic)


class TestBlockStream:
    def test_suppresses_duplicates_across_region_boundaries(self):
        # Region 1 ends in block B; region 2 starts in the same block B:
        # the L1-I sees B once, not twice.
        block = block_address(BASE)
        records = [
            _record(BASE, count=4, taken=False),            # stays in block
            _record(BASE + 16, count=4, taken=False),       # same block again
            _record(BASE + 32, count=24,                    # spans into next blocks
                    kind=BranchKind.UNCONDITIONAL, target=BASE),
            _record(BASE, count=4, taken=False),            # back to the first
        ]
        trace = Trace(records, name="dup")
        stream = list(trace.block_stream())
        assert stream == [
            block, block + BLOCK_SIZE_BYTES, block,
        ]
        # No consecutive duplicates, by construction.
        assert all(a != b for a, b in zip(stream, stream[1:], strict=False))

    def test_packed_and_view_streams_agree(self, tiny_trace):
        view_stream = []
        previous = None
        for record in tiny_trace.records:
            for block in record.blocks():
                if block != previous:
                    view_stream.append(block)
                    previous = block
        assert list(tiny_trace.block_stream()) == view_stream


class TestHeadAndConcatenate:
    def test_head_statistics_consistent(self, tiny_trace):
        head = tiny_trace.head(257)
        assert len(head) == 257
        stats = head.statistics()
        assert stats == _reference_statistics(head.records)
        assert stats.instruction_count == head.instruction_count
        assert stats.fetch_region_count == len(head)

    def test_concatenate_statistics_consistent(self, tiny_trace):
        a, b = tiny_trace.head(100), tiny_trace.head(40)
        combined = Trace.concatenate([a, b], name="ab")
        assert len(combined) == 140
        stats = combined.statistics()
        assert stats == _reference_statistics(list(a.records) + list(b.records))
        # Additive counters add; unique counters must not double-count.
        assert stats.instruction_count == a.instruction_count + b.instruction_count
        assert stats.unique_blocks == a.statistics().unique_blocks  # b ⊆ a
        assert combined[99] == a[99] and combined[100] == b[0]

    def test_view_and_packed_paths_agree(self, tiny_trace):
        # The same head/concatenate shapes built through the record view
        # (packing FetchRecords) and through packed slicing must agree.
        via_view = Trace(list(tiny_trace.records)[:64], name="x")
        via_packed = tiny_trace.head(64)
        assert via_view.statistics() == via_packed.statistics()
        assert all(a == b for a, b in zip(via_view, via_packed, strict=True))


class TestRecordView:
    def test_indexing_negative_and_slices(self, tiny_trace):
        records = tiny_trace.records
        assert records[-1] == records[len(records) - 1]
        assert records[5:8] == [records[5], records[6], records[7]]
        with pytest.raises(IndexError):
            records[len(records)]

    def test_iteration_matches_indexing(self, tiny_trace):
        from itertools import islice

        for index, record in enumerate(islice(tiny_trace.records, 200)):
            assert record == tiny_trace.records[index]


class TestSaveLoad:
    def test_round_trip(self, tiny_trace, tmp_path):
        path = tmp_path / "t.trace"
        tiny_trace.packed.save(path)
        reloaded = load_packed(path)
        assert reloaded.name == tiny_trace.name
        assert len(reloaded) == len(tiny_trace)
        assert Trace.from_packed(reloaded).statistics() == tiny_trace.statistics()
        assert all(a == b for a, b in zip(Trace.from_packed(reloaded), tiny_trace, strict=True))

    def test_chunked_write_equals_single_chunk(self, tiny_trace, tmp_path):
        one = tmp_path / "one.trace"
        many = tmp_path / "many.trace"
        tiny_trace.packed.save(one)
        tiny_trace.packed.save(many, chunk_regions=123)
        assert load_packed(one).starts == load_packed(many).starts

    def test_streamed_generation_matches_in_memory(self, tiny_program, tmp_path):
        path = tmp_path / "s.trace"
        walker = TraceWalker(tiny_program, seed=11)
        save_chunks(path, "stream", walker.run_chunks(8_000, chunk_regions=300))
        streamed = Trace.from_packed(load_packed(path))
        in_memory = generate_trace(tiny_program, 8_000, seed=11)
        assert len(streamed) == len(in_memory)
        assert all(a == b for a, b in zip(streamed, in_memory, strict=True))

    def test_truncated_file_rejected(self, tiny_trace, tmp_path):
        path = tmp_path / "t.trace"
        tiny_trace.packed.save(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError, match="truncated"):
            load_packed(path)

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.trace"
        path.write_bytes(b"NOPE" + b"\x00" * 64)
        with pytest.raises(ValueError, match="not a packed trace"):
            load_packed(path)


class TestMmapLoad:
    """``load_packed(path, mmap=True)``: zero-copy memoryview columns."""

    def _saved(self, tiny_trace, tmp_path, **save_kwargs):
        path = tmp_path / "t.trace"
        tiny_trace.packed.save(path, **save_kwargs)
        return path

    def test_mapped_columns_equal_heap_columns(self, tiny_trace, tmp_path):
        path = self._saved(tiny_trace, tmp_path)
        heap = load_packed(path)
        mapped = load_packed(path, mmap=True)
        assert mapped.mapped and not heap.mapped
        assert isinstance(mapped.starts, memoryview)
        for attr in ("starts", "instruction_counts", "branch_pcs", "kinds",
                     "takens", "targets", "next_pcs", "block_firsts",
                     "block_counts"):
            assert list(getattr(mapped, attr)) == list(getattr(heap, attr)), attr
        assert mapped.name == heap.name
        assert mapped.instruction_count == heap.instruction_count
        assert Trace.from_packed(mapped).statistics() == \
            Trace.from_packed(heap).statistics()

    def test_multi_chunk_artifact_falls_back_to_heap(self, tiny_trace, tmp_path):
        path = self._saved(tiny_trace, tmp_path, chunk_regions=123)
        mapped = load_packed(path, mmap=True)
        assert not mapped.mapped  # columns are split across chunks
        assert list(mapped.starts) == list(tiny_trace.packed.starts)

    def test_slices_of_mapped_traces_stay_views(self, tiny_trace, tmp_path):
        path = self._saved(tiny_trace, tmp_path)
        mapped = load_packed(path, mmap=True)
        window = mapped.slice(10, 50)
        assert window.mapped and len(window) == 40
        assert list(window.starts) == list(tiny_trace.packed.starts[10:50])

    def test_pickling_a_mapped_trace_materializes_heap_arrays(
        self, tiny_trace, tmp_path
    ):
        import pickle

        path = self._saved(tiny_trace, tmp_path)
        mapped = load_packed(path, mmap=True)
        clone = pickle.loads(pickle.dumps(mapped))
        assert not clone.mapped  # memoryviews cannot cross process boundaries
        assert clone.name == mapped.name
        assert list(clone.starts) == list(mapped.starts)
        assert list(clone.block_counts) == list(mapped.block_counts)

    def test_mapped_loader_rejects_corruption_like_the_heap_loader(
        self, tiny_trace, tmp_path
    ):
        path = self._saved(tiny_trace, tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError, match="truncated"):
            load_packed(path, mmap=True)
        path.write_bytes(b"NOPE" + data[4:])
        with pytest.raises(ValueError, match="not a packed trace"):
            load_packed(path, mmap=True)

    def test_torn_column_length_is_a_value_error_not_a_type_error(
        self, tiny_trace, tmp_path
    ):
        # A column byte length that is not a multiple of the element size is
        # corruption; the mapped loader must raise ValueError (so a trace
        # store counts a clean miss), never let memoryview.cast's TypeError
        # escape.
        import struct

        path = self._saved(tiny_trace, tmp_path)
        data = bytearray(path.read_bytes())
        # Layout: header(8) + u16 name length + name + chunk marker(1) +
        # u64 region count, then the first column's u64 byte length.
        (name_length,) = struct.unpack_from("<H", data, 8)
        offset = 8 + 2 + name_length + 1 + 8
        (byte_length,) = struct.unpack_from("<Q", data, offset)
        struct.pack_into("<Q", data, offset, byte_length - 1)
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError):
            load_packed(path, mmap=True)
        with pytest.raises(ValueError):
            load_packed(path)  # the heap reader agrees on the error type

    def test_from_buffers_validates_like_the_constructor(self, tiny_trace):
        packed = tiny_trace.packed
        columns = [getattr(packed, attr) for attr in
                   ("starts", "instruction_counts", "branch_pcs", "kinds",
                    "takens", "targets", "next_pcs", "block_firsts",
                    "block_counts")]
        adopted = PackedTrace.from_buffers(columns, name="adopted")
        assert len(adopted) == len(packed)
        with pytest.raises(ValueError, match="columns"):
            PackedTrace.from_buffers(columns[:-1], name="short")


class TestFrontendDefaultsToPacked:
    def test_run_uses_packed_and_matches_view(self, tiny_program, tiny_trace):
        from repro.core.designs import design_from_spec, resolve_design

        spec = resolve_design("baseline")
        fast_sim, _ = design_from_spec(spec, tiny_program)
        slow_sim, _ = design_from_spec(spec, tiny_program)
        fast = fast_sim.run(tiny_trace)  # default backend: scalar, columnar
        slow = slow_sim.run(tiny_trace, backend="reference")
        assert dataclasses.asdict(fast) == dataclasses.asdict(slow)
