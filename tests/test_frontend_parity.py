"""The tentpole acceptance pin: every backend == the reference oracle.

``FrontendSimulator.run`` delegates to a registered simulation backend
(:mod:`repro.backends`); the ``reference`` backend is the record-at-a-time
oracle loop, and every other backend — today the zero-allocation columnar
``scalar`` loop — must produce a bit-identical :class:`FrontendResult` on
multiple profiles x multiple design points (covering the SHIFT/Confluence
prefetch machinery, FDP's columnar runahead and the bare baseline).  A
backend is an optimization, never a model change.

The ``sim_backend`` fixture (see ``conftest.py``) parameterizes these tests
over every registered backend; CI's backend-parity matrix runs this file
once per backend with ``pytest --backend NAME``.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.designs import design_from_spec, resolve_design
from repro.sweep import TraceStore

#: Designs chosen to exercise disjoint machinery: baseline (BTB+L1-I only),
#: confluence (AirBTB + SHIFT-fed stream engine + predecode penalty), fdp
#: (record/columnar runahead), 2level_shift (BTB bubbles + shared history).
PARITY_DESIGNS = ("baseline", "confluence", "fdp", "2level_shift")


def _run_backend(program, trace, design, backend):
    spec = resolve_design(design)
    simulator, _ = design_from_spec(spec, program)
    return simulator.run(trace, backend=backend)


def _run_vs_reference(program, trace, design, backend):
    return (
        _run_backend(program, trace, design, backend),
        _run_backend(program, trace, design, "reference"),
    )


class TestBackendReferenceParity:
    """Two profiles x the design set: identical results field for field."""

    @pytest.mark.parametrize("design", PARITY_DESIGNS)
    def test_oltp_parity(self, tiny_program, tiny_trace, design, sim_backend):
        fast, oracle = _run_vs_reference(
            tiny_program, tiny_trace, design, sim_backend
        )
        assert dataclasses.asdict(fast) == dataclasses.asdict(oracle)

    @pytest.mark.parametrize("design", ("baseline", "confluence"))
    def test_web_parity(self, small_program, small_trace, design, sim_backend):
        fast, oracle = _run_vs_reference(
            small_program, small_trace, design, sim_backend
        )
        assert dataclasses.asdict(fast) == dataclasses.asdict(oracle)

    def test_parity_with_kindless_branch_records(self, tiny_program, sim_backend):
        # A record may carry a branch_pc but no kind (the FetchRecord
        # contract allows it); the packed path must decode the -1 kind
        # sentinel to None, not wrap it around the kind table into RETURN.
        from repro.workloads.trace import FetchRecord, Trace

        base = 0x4000_0000
        records = []
        for _repeat in range(40):
            records.append(FetchRecord(
                start=base, instruction_count=4, branch_pc=base + 12,
                kind=None, taken=True, target=base + 0x400, next_pc=base + 0x400,
            ))
            records.append(FetchRecord(
                start=base + 0x400, instruction_count=4, branch_pc=None,
                kind=None, taken=False, target=None, next_pc=base,
            ))
        trace = Trace(records, name="kindless")
        fast, oracle = _run_vs_reference(
            tiny_program, trace, "baseline", sim_backend
        )
        assert dataclasses.asdict(fast) == dataclasses.asdict(oracle)

    def test_parity_survives_the_trace_store_round_trip(
        self, tiny_program, tiny_trace, tmp_path, sim_backend
    ):
        # A store-loaded trace must drive the simulator to the exact result
        # the generated trace does (the store is a cache, not a model knob).
        store = TraceStore(tmp_path)
        profile = tiny_program.profile
        store.put(profile, 30_000, 3, tiny_trace)
        loaded = store.load(profile, 30_000, 3, name=tiny_trace.name)
        assert loaded is not None
        direct = _run_backend(tiny_program, tiny_trace, "confluence", sim_backend)
        via_store = _run_backend(tiny_program, loaded, "confluence", sim_backend)
        assert dataclasses.asdict(direct) == dataclasses.asdict(via_store)


class TestMmapHeapParity:
    """Zero-copy acceptance pin: mmap-backed columns are not a model knob.

    A warm :class:`TraceStore` serves memoryviews over an mmap of the
    artifact by default; every registered design point must produce the
    bit-identical :class:`FrontendResult` it produces on the generated heap
    trace — including artifacts written by the chunked streaming path,
    which the mapper cannot serve zero-copy and must fall back to heap for.
    """

    def _warm_store(self, tiny_program, tiny_trace, tmp_path, mmap=True):
        store = TraceStore(tmp_path, mmap=mmap)
        store.put(tiny_program.profile, 30_000, 3, tiny_trace)
        return store

    def test_store_serves_mmap_backed_columns(
        self, tiny_program, tiny_trace, tmp_path
    ):
        store = self._warm_store(tiny_program, tiny_trace, tmp_path)
        loaded = store.load(tiny_program.profile, 30_000, 3)
        assert loaded is not None and loaded.packed.mapped
        assert store.mapped == 1
        heap_store = TraceStore(tmp_path, mmap=False)
        heap = heap_store.load(tiny_program.profile, 30_000, 3)
        assert heap is not None and not heap.packed.mapped
        assert heap_store.mapped == 0

    def test_mmap_parity_across_the_whole_catalog(
        self, tiny_program, tiny_trace, tmp_path
    ):
        from repro.core.designs import DESIGN_POINTS

        store = self._warm_store(tiny_program, tiny_trace, tmp_path)
        mapped = store.load(tiny_program.profile, 30_000, 3, name=tiny_trace.name)
        assert mapped is not None and mapped.packed.mapped
        for design in DESIGN_POINTS:
            spec = resolve_design(design)
            heap_sim, _ = design_from_spec(spec, tiny_program)
            mapped_sim, _ = design_from_spec(spec, tiny_program)
            heap_result = heap_sim.run(tiny_trace)
            mapped_result = mapped_sim.run(mapped)
            assert dataclasses.asdict(heap_result) == dataclasses.asdict(
                mapped_result
            ), design

    def test_mmap_parity_after_chunked_streaming_round_trip(
        self, tiny_program, tiny_trace, tmp_path, sim_backend
    ):
        # save_chunks with a small chunk size writes a multi-chunk artifact;
        # the mapper cannot serve it zero-copy and must fall back to the
        # copying reader — with, again, bit-identical results.
        from repro.workloads.packed import load_packed, save_chunks
        from repro.workloads.trace import Trace

        path = tmp_path / "streamed.trace"
        save_chunks(
            path, tiny_trace.name, tiny_trace.packed._chunks(chunk_regions=512)
        )
        reloaded = load_packed(path, mmap=True)
        assert not reloaded.mapped  # multi-chunk: heap fallback
        direct = _run_backend(tiny_program, tiny_trace, "confluence", sim_backend)
        via_stream = _run_backend(
            tiny_program, Trace.from_packed(reloaded), "confluence", sim_backend
        )
        assert dataclasses.asdict(direct) == dataclasses.asdict(via_stream)


class TestAllocationFreeKernel:
    """The scalar loop must not construct per-region Python objects.

    The scratch-slot API (``predict_region_into``/``lookup_into``) and the
    hoisted ``PrefetchContext`` are regression-pinned by counting
    constructor/entry-point calls: a design on the hot path must complete a
    whole run with zero ``predict_region`` calls (slot API used instead),
    zero ``lookup`` calls on slot-capable BTBs, and at most one
    ``PrefetchContext`` ever built (zero when the design has no prefetcher).
    These pins target the default ``scalar`` backend specifically — the
    ``reference`` oracle allocates freely on purpose.
    """

    @staticmethod
    def _count_calls(monkeypatch, cls, method):
        calls = {"count": 0}
        original = getattr(cls, method)

        def wrapper(*args, **kwargs):
            calls["count"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(cls, method, wrapper)
        return calls

    def test_baseline_allocates_no_prediction_objects(
        self, tiny_program, tiny_trace, monkeypatch
    ):
        from repro.branch.btb_conventional import ConventionalBTB
        from repro.branch.unit import BranchPredictionUnit, PredictionSlot
        from repro.prefetch.base import PrefetchContext

        predictions = self._count_calls(
            monkeypatch, BranchPredictionUnit, "predict_region"
        )
        lookups = self._count_calls(monkeypatch, ConventionalBTB, "lookup")
        contexts = self._count_calls(monkeypatch, PrefetchContext, "__init__")
        slots = self._count_calls(monkeypatch, PredictionSlot, "__init__")

        simulator, _ = design_from_spec(resolve_design("baseline"), tiny_program)
        result = simulator.run(tiny_trace, backend="scalar")
        assert result.fetch_regions > 0
        assert predictions["count"] == 0  # slot API replaced predict_region
        assert lookups["count"] == 0  # lookup_into replaced lookup
        assert contexts["count"] == 0  # no prefetcher: no context at all
        assert slots["count"] == 1  # one reusable scratch for the whole run

    def test_two_level_btb_uses_the_slot_lookup(
        self, tiny_program, tiny_trace, monkeypatch
    ):
        from repro.branch.btb_two_level import TwoLevelBTB

        lookups = self._count_calls(monkeypatch, TwoLevelBTB, "lookup")
        simulator, _ = design_from_spec(
            resolve_design("2level_shift"), tiny_program
        )
        result = simulator.run(tiny_trace, backend="scalar")
        assert result.fetch_regions > 0
        assert lookups["count"] == 0

    def test_prefetching_design_reuses_one_context(
        self, tiny_program, tiny_trace, monkeypatch
    ):
        from repro.prefetch.base import PrefetchContext

        contexts = self._count_calls(monkeypatch, PrefetchContext, "__init__")
        simulator, _ = design_from_spec(resolve_design("confluence"), tiny_program)
        result = simulator.run(tiny_trace, backend="scalar")
        assert result.fetch_regions > 0
        assert contexts["count"] == 1  # hoisted out of the region loop

    def test_slot_fallback_btb_still_bit_identical(self, tiny_program, tiny_trace):
        # PhantomBTB/AirBTB keep the generic lookup_into (which delegates to
        # lookup); the slot plumbing must not change their results either.
        for design in ("phantom_shift", "confluence"):
            fast, oracle = _run_vs_reference(
                tiny_program, tiny_trace, design, "scalar"
            )
            assert dataclasses.asdict(fast) == dataclasses.asdict(oracle)


class TestDirectionMispredictionPredicate:
    """Counter and stall charge share one predicate (the satellite bugfix).

    A region without a terminating branch can never report a direction
    misprediction — whatever its ``taken`` column says — because there is
    no branch to mispredict; every backend must agree, counter and cycle
    charge alike.
    """

    def _branchless_taken_trace(self):
        from repro.workloads.trace import FetchRecord, Trace

        base = 0x4000_0000
        records = []
        for _ in range(50):
            # A branchless region whose raw taken flag is set (permitted by
            # the FetchRecord contract, e.g. a trace cut mid-branch).
            records.append(FetchRecord(
                start=base, instruction_count=4, branch_pc=None,
                kind=None, taken=True, target=None, next_pc=base + 0x400,
            ))
            records.append(FetchRecord(
                start=base + 0x400, instruction_count=4, branch_pc=base + 0x40C,
                kind=None, taken=True, target=base, next_pc=base,
            ))
        return Trace(records, name="branchless_taken")

    def test_branchless_region_reports_no_direction_misprediction(
        self, tiny_program, sim_backend
    ):
        trace = self._branchless_taken_trace()
        simulator, _ = design_from_spec(resolve_design("baseline"), tiny_program)
        result = simulator.run(trace, warmup_fraction=0.0, backend=sim_backend)
        # Half the regions are branchless-with-taken; none may be counted.
        assert result.fetch_regions == 100
        assert result.direction_mispredictions == 0
        assert result.direction_stall_cycles == 0

    def test_counter_equals_charge_on_generated_traces(
        self, tiny_program, tiny_trace
    ):
        config_penalty = 12  # FrontendConfig default
        for design in PARITY_DESIGNS:
            simulator, _ = design_from_spec(resolve_design(design), tiny_program)
            result = simulator.run(tiny_trace)
            assert result.direction_stall_cycles == (
                result.direction_mispredictions * config_penalty
            ), design


class TestSpeedupOverPolicy:
    """Zero-IPC operands fail loudly instead of reading as 0x."""

    def test_frontend_zero_ipc_raises(self, tiny_program, tiny_trace):
        from repro.core.frontend import FrontendResult

        spec = resolve_design("baseline")
        simulator, _ = design_from_spec(spec, tiny_program)
        result = simulator.run(tiny_trace)
        empty = FrontendResult(design="empty", workload="none")
        with pytest.raises(ValueError, match="zero IPC"):
            result.speedup_over(empty)
        with pytest.raises(ValueError, match="zero IPC"):
            empty.speedup_over(result)
        assert result.speedup_over(result) == pytest.approx(1.0)

    def test_cmp_zero_ipc_raises(self):
        from repro.core.cmp import CMPResult

        empty = CMPResult(design="empty", workload="none")
        with pytest.raises(ValueError, match="zero IPC"):
            empty.speedup_over(empty)
