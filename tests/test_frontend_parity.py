"""The tentpole acceptance pin: packed fast path == record-view path.

``FrontendSimulator.run`` walks the columnar trace by default and the lazy
record view with ``use_packed=False``.  Every field of the resulting
:class:`FrontendResult` must be bit-identical across the two paths — the
packed loop is an optimization, never a model change — on multiple
profiles x multiple design points (covering the SHIFT/Confluence prefetch
machinery, FDP's columnar runahead and the bare baseline).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.designs import design_from_spec, resolve_design
from repro.sweep import TraceStore
from repro.workloads import generate_trace

#: Designs chosen to exercise disjoint machinery: baseline (BTB+L1-I only),
#: confluence (AirBTB + SHIFT-fed stream engine + predecode penalty), fdp
#: (record/columnar runahead), 2level_shift (BTB bubbles + shared history).
PARITY_DESIGNS = ("baseline", "confluence", "fdp", "2level_shift")


def _run_both(program, trace, design):
    spec = resolve_design(design)
    fast_sim, _ = design_from_spec(spec, program)
    slow_sim, _ = design_from_spec(spec, program)
    fast = fast_sim.run(trace)
    slow = slow_sim.run(trace, use_packed=False)
    return fast, slow


class TestPackedRecordParity:
    """Two profiles x the design set: identical results field for field."""

    @pytest.mark.parametrize("design", PARITY_DESIGNS)
    def test_oltp_parity(self, tiny_program, tiny_trace, design):
        fast, slow = _run_both(tiny_program, tiny_trace, design)
        assert dataclasses.asdict(fast) == dataclasses.asdict(slow)

    @pytest.mark.parametrize("design", ("baseline", "confluence"))
    def test_web_parity(self, small_program, small_trace, design):
        fast, slow = _run_both(small_program, small_trace, design)
        assert dataclasses.asdict(fast) == dataclasses.asdict(slow)

    def test_parity_with_kindless_branch_records(self, tiny_program):
        # A record may carry a branch_pc but no kind (the FetchRecord
        # contract allows it); the packed path must decode the -1 kind
        # sentinel to None, not wrap it around the kind table into RETURN.
        from repro.workloads.trace import FetchRecord, Trace

        base = 0x4000_0000
        records = []
        for repeat in range(40):
            records.append(FetchRecord(
                start=base, instruction_count=4, branch_pc=base + 12,
                kind=None, taken=True, target=base + 0x400, next_pc=base + 0x400,
            ))
            records.append(FetchRecord(
                start=base + 0x400, instruction_count=4, branch_pc=None,
                kind=None, taken=False, target=None, next_pc=base,
            ))
        trace = Trace(records, name="kindless")
        fast, slow = _run_both(tiny_program, trace, "baseline")
        assert dataclasses.asdict(fast) == dataclasses.asdict(slow)

    def test_parity_survives_the_trace_store_round_trip(
        self, tiny_program, tiny_trace, tmp_path
    ):
        # A store-loaded trace must drive the simulator to the exact result
        # the generated trace does (the store is a cache, not a model knob).
        store = TraceStore(tmp_path)
        profile = tiny_program.profile
        store.put(profile, 30_000, 3, tiny_trace)
        loaded = store.load(profile, 30_000, 3, name=tiny_trace.name)
        assert loaded is not None
        fast, _ = _run_both(tiny_program, tiny_trace, "confluence")
        via_store, _ = _run_both(tiny_program, loaded, "confluence")
        assert dataclasses.asdict(fast) == dataclasses.asdict(via_store)


class TestSpeedupOverPolicy:
    """Zero-IPC operands fail loudly instead of reading as 0x."""

    def test_frontend_zero_ipc_raises(self, tiny_program, tiny_trace):
        from repro.core.frontend import FrontendResult

        spec = resolve_design("baseline")
        simulator, _ = design_from_spec(spec, tiny_program)
        result = simulator.run(tiny_trace)
        empty = FrontendResult(design="empty", workload="none")
        with pytest.raises(ValueError, match="zero IPC"):
            result.speedup_over(empty)
        with pytest.raises(ValueError, match="zero IPC"):
            empty.speedup_over(result)
        assert result.speedup_over(result) == pytest.approx(1.0)

    def test_cmp_zero_ipc_raises(self):
        from repro.core.cmp import CMPResult

        empty = CMPResult(design="empty", workload="none")
        with pytest.raises(ValueError, match="zero IPC"):
            empty.speedup_over(empty)
