"""Chaos suite: deterministic fault injection against the sweep engine.

Every fault here is a seeded :class:`repro.faultinject.FaultPlan` fired at
named injection points — no real ``kill`` races — and every recovery path
must reproduce the fault-free serial summaries bit for bit: resilience
never trades determinism for liveness (the contract staticcheck R006
enforces statically).
"""

from __future__ import annotations

import json

import pytest

from repro.core.cmp import ChipMultiprocessor
from repro.core.designs import resolve_design
from repro.faultinject import FaultPlan, FaultRule, active, flip_bits, truncate_file
from repro.resilience import (
    JOURNAL_SCHEMA_VERSION,
    CellExecutionError,
    RetryPolicy,
    RunJournal,
)
from repro.sweep import (
    CorruptArtifactWarning,
    ResultCache,
    TraceStore,
    clear_workload_memo,
    run_sweep,
)
from repro.workloads import get_profile, workload_program

PROFILES = ["oltp_db2", "dss_qry2"]
DESIGNS = ["baseline", "confluence"]
#: Small enough to keep every chaos run fast (2 x 2 cells, 2 cores).
GRID_KW = dict(scale=0.08, cores=2, instructions_per_core=4_000)

#: Zero backoff: retry semantics without wall-clock cost.
FAST = RetryPolicy(retries=2, backoff=0.0)


def sweep(**overrides):
    kwargs = dict(GRID_KW, cache=False, policy=FAST)
    kwargs.update(overrides)
    return run_sweep(PROFILES, DESIGNS, **kwargs)


@pytest.fixture(scope="module")
def reference():
    """Fault-free serial summaries: the bit-identity reference."""
    clear_workload_memo()
    return sweep().summaries


class TestRetryPolicy:
    def test_deterministic_capped_exponential_backoff(self):
        policy = RetryPolicy(retries=5, backoff=0.05, backoff_cap=0.3)
        delays = [policy.delay(attempt) for attempt in range(5)]
        assert delays == [0.05, 0.1, 0.2, 0.3, 0.3]
        # Determinism: the same policy always yields the same schedule.
        assert delays == [policy.delay(attempt) for attempt in range(5)]

    @pytest.mark.parametrize("kwargs", [
        {"retries": -1},
        {"backoff": -0.1},
        {"backoff_cap": -1.0},
        {"cell_timeout": 0.0},
        {"cell_timeout": -5.0},
        {"max_pool_rebuilds": -1},
    ])
    def test_invalid_knobs_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_negative_attempt_is_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(-1)


class TestFaultPlan:
    def test_rules_match_point_label_and_attempt(self):
        plan = FaultPlan()
        plan.fail("cell:simulate", match="oltp", attempts=2)
        with pytest.raises(OSError):
            plan.fire("cell:simulate", label="oltp_db2/baseline", attempt=0)
        with pytest.raises(OSError):
            plan.fire("cell:simulate", label="oltp_db2/baseline", attempt=1)
        # Past the attempt bound, and on non-matching labels/points: no-ops.
        plan.fire("cell:simulate", label="oltp_db2/baseline", attempt=2)
        plan.fire("cell:simulate", label="dss_qry2/baseline", attempt=0)
        plan.fire("trace:load", label="oltp_db2/baseline", attempt=0)
        assert len(plan.fired) == 2

    def test_times_bounds_total_fires(self):
        plan = FaultPlan()
        plan.fail("cache:get", times=1)
        with pytest.raises(OSError):
            plan.fire("cache:get", label="k1")
        plan.fire("cache:get", label="k2")  # exhausted

    def test_errors_are_fresh_instances_and_factories_work(self):
        plan = FaultPlan()
        rule = plan.fail("cell:simulate", error=OSError("flaky disk"))
        first = pytest.raises(OSError, plan.fire, "cell:simulate").value
        second = pytest.raises(OSError, plan.fire, "cell:simulate").value
        assert first is not second and str(first) == "flaky disk"
        assert rule.fired == 2
        plan2 = FaultPlan()
        plan2.fail("cell:simulate", error=lambda: ValueError("made to order"))
        with pytest.raises(ValueError, match="made to order"):
            plan2.fire("cell:simulate")

    def test_invalid_rules_are_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule(point="x", action="explode")
        with pytest.raises(ValueError, match="attempts"):
            FaultRule(point="x", attempts=0)
        with pytest.raises(ValueError, match="times"):
            FaultRule(point="x", times=0)

    def test_active_context_installs_and_removes(self):
        plan = FaultPlan()
        plan.fail("cell:simulate")
        from repro.faultinject import injection_point
        injection_point("cell:simulate")  # no active plan: no-op
        with active(plan):
            with pytest.raises(OSError):
                injection_point("cell:simulate")
        injection_point("cell:simulate")  # deactivated again

    def test_truncate_file_is_exact(self, tmp_path):
        path = tmp_path / "artifact"
        path.write_bytes(bytes(range(100)))
        assert truncate_file(path, 10) == 90
        assert path.read_bytes() == bytes(range(10))
        assert truncate_file(path, 10) == 0  # already small enough

    def test_flip_bits_is_seeded_deterministic(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        a.write_bytes(bytes(256))
        b.write_bytes(bytes(256))
        assert flip_bits(a, count=4, seed=7) == flip_bits(b, count=4, seed=7)
        assert a.read_bytes() == b.read_bytes()
        assert a.read_bytes() != bytes(256)


class TestRetryPaths:
    def test_transient_fault_then_success_serial(self, reference):
        plan = FaultPlan()
        plan.fail("cell:simulate", match="dss_qry2/baseline", attempts=2)
        clear_workload_memo()
        with active(plan):
            outcome = sweep()
        assert outcome.stats.retried == 2
        assert outcome.stats.simulated == 4
        assert outcome.summaries == reference

    def test_retry_budget_exhaustion_names_the_cell(self):
        plan = FaultPlan()
        plan.fail("cell:simulate", match="oltp_db2/confluence", attempts=10)
        clear_workload_memo()
        with active(plan):
            with pytest.raises(CellExecutionError, match="oltp_db2/confluence"):
                sweep(policy=RetryPolicy(retries=1, backoff=0.0))

    def test_transient_fault_then_success_pooled(self, reference):
        plan = FaultPlan()
        plan.fail("cell:simulate", match="oltp_db2/baseline", attempts=1)
        clear_workload_memo()
        with active(plan):
            outcome = sweep(workers=2)
        assert outcome.stats.retried >= 1
        assert outcome.summaries == reference


class TestPoolRecovery:
    def test_worker_kill_mid_sweep_rebuilds_and_completes(self, reference):
        plan = FaultPlan(seed=9)
        plan.kill_worker("cell:simulate", match="oltp_db2/confluence", attempts=1)
        clear_workload_memo()
        with active(plan):
            outcome = sweep(workers=2)
        assert outcome.stats.pool_rebuilds >= 1
        assert outcome.stats.retried >= 1
        assert outcome.stats.simulated == 4
        assert outcome.summaries == reference

    def test_hung_worker_trips_the_timeout_watchdog(self, reference):
        plan = FaultPlan()
        plan.hang("cell:simulate", seconds=30.0, match="dss_qry2/confluence",
                  attempts=1)
        clear_workload_memo()
        with active(plan):
            outcome = sweep(
                workers=2,
                policy=RetryPolicy(retries=2, backoff=0.0, cell_timeout=3.0),
            )
        assert outcome.stats.timed_out >= 1
        assert outcome.stats.pool_rebuilds >= 1
        assert outcome.summaries == reference

    def test_degrades_to_serial_after_rebuild_budget(self, reference):
        # max_pool_rebuilds=0: the first broken pool sends the remaining
        # cells down the serial path.  The kill rule only covers attempt 0,
        # so the degraded (attempt >= 1) re-execution survives the parent.
        plan = FaultPlan()
        plan.kill_worker("cell:simulate", match="oltp_db2/baseline", attempts=1)
        clear_workload_memo()
        with active(plan):
            outcome = sweep(
                workers=2,
                policy=RetryPolicy(retries=2, backoff=0.0, max_pool_rebuilds=0),
            )
        assert outcome.stats.pool_rebuilds == 1
        assert outcome.stats.simulated == 4
        assert outcome.summaries == reference


class TestArtifactIntegrity:
    def test_corrupt_cache_entry_quarantined_and_resimulated(
        self, tmp_path, reference
    ):
        cache_dir = tmp_path / "cache"
        clear_workload_memo()
        first = sweep(cache=cache_dir)
        assert first.stats.simulated == 4
        victim = sorted(cache_dir.glob("*.json"))[0]
        victim.write_text("{definitely not json")
        clear_workload_memo()
        with pytest.warns(CorruptArtifactWarning, match="cache entry"):
            second = sweep(cache=cache_dir)
        assert second.stats.quarantined == 1
        assert second.stats.cache_hits == 3
        assert second.stats.simulated == 1  # only the corrupt cell re-earns
        assert second.summaries == reference
        assert victim.with_name(victim.name + ".corrupt").exists()

    def test_truncated_trace_artifact_quarantined_and_regenerated(
        self, tmp_path, reference
    ):
        trace_dir = tmp_path / "traces"
        clear_workload_memo()
        sweep(trace_store=trace_dir)
        victim = sorted(trace_dir.glob("*.trace"))[0]
        # Drop the sidecar to emulate a legacy artifact: the truncation must
        # be caught structurally by the packed loader itself.
        victim.with_name(victim.name + ".sum").unlink()
        truncate_file(victim, victim.stat().st_size // 2)
        clear_workload_memo()
        with pytest.warns(CorruptArtifactWarning, match="trace artifact"):
            outcome = sweep(trace_store=trace_dir)
        assert outcome.stats.quarantined >= 1
        assert outcome.stats.traces_generated >= 1  # regenerated, not crashed
        assert outcome.summaries == reference
        assert victim.with_name(victim.name + ".corrupt").exists()

    def test_bit_flipped_trace_fails_its_checksum(self, tmp_path, reference):
        trace_dir = tmp_path / "traces"
        clear_workload_memo()
        sweep(trace_store=trace_dir)
        victim = sorted(trace_dir.glob("*.trace"))[1]
        flip_bits(victim, count=1, seed=3)
        clear_workload_memo()
        with pytest.warns(CorruptArtifactWarning, match="checksum"):
            outcome = sweep(trace_store=trace_dir)
        assert outcome.stats.quarantined >= 1
        assert outcome.summaries == reference

    def test_injected_cache_read_fault_quarantines(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("a" * 64, {"ipc": 1.0})
        plan = FaultPlan()
        plan.fail("cache:get", error=OSError("injected I/O error"), times=1)
        with active(plan):
            with pytest.warns(CorruptArtifactWarning):
                assert cache.get("a" * 64) is None
        assert cache.quarantined == 1
        assert not path.exists()

    def test_injected_trace_load_fault_quarantines(self, tmp_path):
        from repro.workloads import generate_trace, synthesize_program

        store = TraceStore(tmp_path)
        profile = get_profile("oltp_db2").scaled(0.08)
        program = synthesize_program(profile)
        store.put(profile, 4_000, 42, generate_trace(program, 4_000, seed=42))
        plan = FaultPlan()
        plan.fail("trace:load", error=OSError("injected I/O error"), times=1)
        with active(plan):
            with pytest.warns(CorruptArtifactWarning):
                assert store.load(profile, 4_000, 42) is None
        assert store.quarantined == 1
        # The quarantine took the sidecar along with the artifact.
        assert not list(tmp_path.glob("*.trace"))
        assert not list(tmp_path.glob("*.trace.sum"))


class TestRunJournal:
    def test_resume_simulates_exactly_the_missing_cells(
        self, tmp_path, reference
    ):
        journal_dir = tmp_path / "journal"
        clear_workload_memo()
        sweep(journal=journal_dir)
        journal_file = next(journal_dir.glob("*.jsonl"))
        lines = journal_file.read_text().splitlines()
        assert len(lines) == 5  # header + 4 cells
        # Emulate a sweep hard-killed after two cells: header + 2 records.
        journal_file.write_text("\n".join(lines[:3]) + "\n")
        clear_workload_memo()
        outcome = sweep(journal=journal_dir, resume=True)
        assert outcome.stats.resumed == 2
        assert outcome.stats.simulated == 2
        assert outcome.stats.cells == 4
        assert outcome.summaries == reference
        # The resumed run journaled its fresh cells: full resume now.
        clear_workload_memo()
        final = sweep(journal=journal_dir, resume=True)
        assert final.stats.simulated == 0
        assert final.stats.resumed == 4
        assert final.summaries == reference

    def test_without_resume_the_journal_is_written_not_read(self, tmp_path):
        journal_dir = tmp_path / "journal"
        clear_workload_memo()
        sweep(journal=journal_dir)
        clear_workload_memo()
        outcome = sweep(journal=journal_dir)  # no resume: a fresh run
        assert outcome.stats.simulated == 4
        assert outcome.stats.resumed == 0

    def test_resumed_cells_reseed_the_cache(self, tmp_path, reference):
        journal_dir = tmp_path / "journal"
        cache_dir = tmp_path / "cache"
        clear_workload_memo()
        sweep(journal=journal_dir)
        clear_workload_memo()
        outcome = sweep(journal=journal_dir, resume=True, cache=cache_dir)
        assert outcome.stats.resumed == 4
        clear_workload_memo()
        warm = sweep(cache=cache_dir)
        assert warm.stats.cache_hits == 4 and warm.stats.simulated == 0
        assert warm.summaries == reference

    def test_torn_tail_and_foreign_lines_are_skipped(self, tmp_path):
        keys = ["k1", "k2"]
        journal = RunJournal(tmp_path, keys)
        journal.record("k1", {"ipc": 1.0})
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"key": "elsewhere", "summary": {}}) + "\n")
            handle.write('{"key": "k2", "summ')  # torn tail from a crash
        loaded = RunJournal(tmp_path, keys)
        assert loaded.load() == {"k1": {"ipc": 1.0}}
        assert loaded.skipped_lines == 2

    def test_schema_mismatch_voids_the_whole_file(self, tmp_path):
        journal = RunJournal(tmp_path, ["k1"])
        journal.record("k1", {"ipc": 1.0})
        text = journal.path.read_text().replace(
            f'"schema": {JOURNAL_SCHEMA_VERSION}',
            f'"schema": {JOURNAL_SCHEMA_VERSION + 1}',
        )
        journal.path.write_text(text)
        assert RunJournal(tmp_path, ["k1"]).load() == {}

    def test_journal_identity_is_the_cell_key_set(self, tmp_path):
        same = RunJournal(tmp_path, ["k1", "k2"])
        shuffled = RunJournal(tmp_path, ["k2", "k1"])
        other = RunJournal(tmp_path, ["k1", "k3"])
        assert same.path == shuffled.path  # order-independent
        assert same.path != other.path  # any grid change lands elsewhere

    def test_record_rejects_keys_outside_the_sweep(self, tmp_path):
        journal = RunJournal(tmp_path, ["k1"])
        with pytest.raises(ValueError, match="not part of this sweep"):
            journal.record("k9", {})

    def test_missing_journal_loads_empty(self, tmp_path):
        assert RunJournal(tmp_path, ["k1"]).load() == {}

    def test_foreign_journal_instance_is_rejected(self):
        foreign = RunJournal("/tmp/nowhere", ["not-a-cell-key"])
        with pytest.raises(ValueError, match="different cell-key set"):
            run_sweep(PROFILES, DESIGNS, **GRID_KW, cache=False, journal=foreign)


class TestReplayCoreWrapping:
    def test_replay_worker_failure_names_the_core(self):
        profile = get_profile("oltp_db2").scaled(0.08)
        cmp_model = ChipMultiprocessor(
            workload_program(profile), cores=2, instructions_per_core=4_000
        )
        plan = FaultPlan()
        plan.fail("cmp:replay_core", error=RuntimeError("vanished"))
        with active(plan):
            with pytest.raises(
                CellExecutionError,
                match=r"replay worker for oltp_db2.*/core1.*failed",
            ):
                cmp_model.run_design(resolve_design("baseline"), workers=2)
