"""Tests for the ``python -m repro`` command-line entry points."""

from __future__ import annotations

import json
from pathlib import Path

from repro.__main__ import main
from repro.workloads import load_packed


class TestTraceCommand:
    def test_pack_verify_and_info(self, tmp_path, capsys):
        out = tmp_path / "oltp.trace"
        code = main([
            "trace", "--profile", "oltp_db2", "--scale", "0.08",
            "--instructions", "5000", "--seed", "3",
            "--out", str(out), "--verify", "--chunk-regions", "400",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert out.exists()
        assert "statistics match the generator output" in captured.out

        packed = load_packed(out)
        assert packed.instruction_count >= 5000

        code = main(["trace", "--info", str(out)])
        captured = capsys.readouterr()
        assert code == 0
        assert "fetch regions" in captured.out

    def test_out_requires_profile(self, tmp_path, capsys):
        code = main(["trace", "--out", str(tmp_path / "x.trace")])
        assert code == 2
        assert "--profile" in capsys.readouterr().err

    def test_requires_a_mode(self, capsys):
        code = main(["trace", "--profile", "oltp_db2"])
        assert code == 2
        assert "one of --out, --info or --prune" in capsys.readouterr().err


class TestTracePrune:
    def _populated_store(self, tmp_path):
        from repro.sweep import TraceStore
        from repro.workloads import generate_trace, get_profile, synthesize_program

        store = TraceStore(tmp_path / "traces")
        profile = get_profile("oltp_db2").scaled(0.08)
        program = synthesize_program(profile)
        for seed in (1, 2, 3):
            trace = generate_trace(program, 2_000, seed=seed)
            store.put(profile, 2_000, seed, trace)
        return store

    def test_prune_to_zero_empties_the_store(self, tmp_path, capsys):
        store = self._populated_store(tmp_path)
        assert len(list(store.directory.glob("*.trace"))) == 3
        code = main(["trace", "--prune", "0", "--trace-dir", str(store.directory)])
        assert code == 0
        assert "pruned 3 artifacts" in capsys.readouterr().out
        assert list(store.directory.glob("*.trace")) == []

    def test_prune_accepts_size_suffixes(self, tmp_path, capsys):
        store = self._populated_store(tmp_path)
        # 1G comfortably holds three tiny artifacts: nothing is evicted.
        code = main(["trace", "--prune", "1G", "--trace-dir", str(store.directory)])
        assert code == 0
        assert "pruned 0 artifacts" in capsys.readouterr().out
        assert len(list(store.directory.glob("*.trace"))) == 3

    def test_prune_rejects_garbage_sizes(self, capsys):
        code = main(["trace", "--prune", "lots"])
        assert code == 2
        assert "not a byte size" in capsys.readouterr().err

    def test_prune_missing_directory_exits_nonzero(self, tmp_path, capsys):
        # A typoed --trace-dir must be an error with a message, not a silent
        # "pruned 0 artifacts" success (and never a bare traceback).
        missing = tmp_path / "never-created"
        code = main(["trace", "--prune", "0", "--trace-dir", str(missing)])
        assert code == 1
        err = capsys.readouterr().err
        assert "does not exist" in err and str(missing) in err

    def test_prune_missing_env_directory_exits_nonzero(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "stale"))
        code = main(["trace", "--prune", "1G"])
        assert code == 1
        assert "REPRO_TRACE_DIR" in capsys.readouterr().err

    def test_prune_cannot_combine_with_out(self, tmp_path, capsys):
        code = main([
            "trace", "--prune", "0", "--profile", "oltp_db2",
            "--out", str(tmp_path / "x.trace"),
        ])
        assert code == 2
        assert "--prune cannot be combined" in capsys.readouterr().err


class TestBenchCommand:
    BENCH_ARGS = [
        "bench", "--scale", "0.05", "--instructions", "2000",
        "--repeats", "1", "--designs", "baseline",
    ]

    def test_bench_appends_a_stable_schema_point(self, tmp_path, capsys):
        from repro.backends import backend_names, get_backend
        from repro.perfbench import BENCH_SCHEMA_VERSION

        out = tmp_path / "bench.json"
        code = main(self.BENCH_ARGS + ["--json", str(out)])
        captured = capsys.readouterr()
        assert code == 0
        assert "speedup over reference backend" in captured.out
        trajectory = json.loads(out.read_text())
        assert trajectory["bench"] == "kernel_hotloop"
        payload = trajectory["points"][-1]
        assert payload["schema"] == BENCH_SCHEMA_VERSION
        assert payload["trace"]["mapped"] is True
        assert payload["designs"][0]["design"] == "baseline"
        assert payload["designs"][0]["backend"] == "scalar"
        assert payload["designs"][0]["regions_per_sec"] > 0
        assert {row["backend"] for row in payload["backends"]} \
            == {name for name in backend_names()
                if get_backend(name).available()}
        assert payload["speedup_over_reference"] > 0
        assert payload["scenario"]["scalar_regions_per_sec"] > 0
        assert payload["scenario"]["batch_available"] \
            == get_backend("batch").available()
        assert payload["peak_rss_kb"] > 0

    def test_json_appends_to_an_existing_trajectory(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(self.BENCH_ARGS + ["--json", str(out)]) == 0
        assert main(self.BENCH_ARGS + ["--json", str(out)]) == 0
        capsys.readouterr()
        assert len(json.loads(out.read_text())["points"]) == 2

    def test_bench_on_the_reference_backend(self, capsys):
        code = main(self.BENCH_ARGS + ["--backend", "reference"])
        assert code == 0
        assert "reference backend" in capsys.readouterr().out

    def test_unknown_backend_is_a_usage_error(self, capsys):
        code = main(self.BENCH_ARGS + ["--backend", "vector9000"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown backend" in err and "scalar" in err

    def test_compare_within_tolerance(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(self.BENCH_ARGS + ["--json", str(out)]) == 0
        capsys.readouterr()
        # A sub-floor tolerance can never fail: the check plumbing itself
        # is what this pins, not the (noisy, tiny-run) throughput.
        code = main(self.BENCH_ARGS + ["--compare", str(out),
                                       "--tolerance", "0.000001"])
        assert code == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_compare_fails_on_regression(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(self.BENCH_ARGS + ["--json", str(out)]) == 0
        capsys.readouterr()
        # Doctor the recorded point to claim impossible throughput; any
        # fresh run then reads as a regression beyond tolerance.
        trajectory = json.loads(out.read_text())
        for row in trajectory["points"][-1]["designs"]:
            row["regions_per_sec"] *= 1e6
        out.write_text(json.dumps(trajectory))
        code = main(self.BENCH_ARGS + ["--compare", str(out),
                                       "--tolerance", "0.85"])
        captured = capsys.readouterr()
        assert code == 1
        assert "REGRESSED" in captured.out
        assert "regressed beyond tolerance" in captured.err

    def test_failed_compare_does_not_append(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(self.BENCH_ARGS + ["--json", str(out)]) == 0
        capsys.readouterr()
        trajectory = json.loads(out.read_text())
        for row in trajectory["points"][-1]["designs"]:
            row["regions_per_sec"] *= 1e6
        out.write_text(json.dumps(trajectory))
        code = main(self.BENCH_ARGS + ["--json", str(out),
                                       "--compare", str(out)])
        assert code == 1
        # The regressed run must not have been recorded into the file.
        assert len(json.loads(out.read_text())["points"]) == 1

    @staticmethod
    def _schema1_point():
        # The retired schema-1 vocabulary: packed_speedup + record_path,
        # no per-row backend, no backends table.
        return {
            "schema": 1, "bench": "kernel_hotloop",
            "config": {"profile": "oltp_db2", "scale": 0.05,
                       "instructions": 2000, "seed": 3,
                       "designs": ["baseline"], "repeats": 1},
            "trace": {"regions": 100, "instructions": 2000,
                      "artifact_bytes": 1, "mapped": True},
            "stages": {"generate_s": 0.1, "save_s": 0.1, "load_s": 0.1},
            "designs": [{"design": "baseline", "seconds": 0.5,
                         "regions_per_sec": 200.0, "ipc": 0.7}],
            "packed_speedup": 1.5,
            "record_path": {"design": "baseline", "seconds": 0.75,
                            "regions_per_sec": 133.0, "ipc": 0.7},
            "peak_rss_kb": 1000,
            "host": {"python": "3.11", "platform": "linux",
                     "machine": "x86_64"},
        }

    def test_compare_works_against_a_schema1_point(self, tmp_path, capsys):
        # The satellite bugfix: old points compare like-for-like on their
        # per-design regions/sec rows instead of KeyErroring.
        out = tmp_path / "bench.json"
        out.write_text(json.dumps(
            {"bench": "kernel_hotloop", "points": [self._schema1_point()]}
        ))
        code = main(self.BENCH_ARGS + ["--compare", str(out),
                                       "--tolerance", "0.000001"])
        assert code == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_append_migrates_the_schema1_seed_point(self, tmp_path, capsys):
        from repro.perfbench import BENCH_SCHEMA_VERSION

        out = tmp_path / "bench.json"
        out.write_text(json.dumps(
            {"bench": "kernel_hotloop", "points": [self._schema1_point()]}
        ))
        assert main(self.BENCH_ARGS + ["--json", str(out)]) == 0
        capsys.readouterr()
        points = json.loads(out.read_text())["points"]
        assert [point["schema"] for point in points] == [2, BENCH_SCHEMA_VERSION]
        migrated = points[0]
        assert "packed_speedup" not in migrated
        assert "record_path" not in migrated
        assert migrated["speedup_over_reference"] == 1.5
        assert migrated["config"]["backend"] == "scalar"
        assert [row["backend"] for row in migrated["designs"]] == ["scalar"]
        assert {row["backend"] for row in migrated["backends"]} \
            == {"reference", "scalar"}

    def test_expect_schema_accepts_an_equivalent_run(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(self.BENCH_ARGS + ["--json", str(out)]) == 0
        capsys.readouterr()
        code = main(self.BENCH_ARGS + ["--expect-schema", str(out)])
        assert code == 0
        assert "schema matches" in capsys.readouterr().out

    def test_expect_schema_fails_on_drift(self, tmp_path, capsys):
        from repro.perfbench import BENCH_SCHEMA_VERSION

        drifted = tmp_path / "drifted.json"
        drifted.write_text(json.dumps({
            "schema": BENCH_SCHEMA_VERSION, "bench": "kernel_hotloop",
            "surprise": True,
        }))
        code = main(self.BENCH_ARGS + ["--expect-schema", str(drifted)])
        assert code == 1
        assert "drifted" in capsys.readouterr().err

    def test_committed_trajectory_point_matches_current_schema(self, capsys):
        # BENCH_kernel.json at the repo root is the recorded trajectory; a
        # fresh tiny run must still emit the same schema (the CI perf job's
        # contract, pinned here so it cannot rot unnoticed).
        from pathlib import Path

        committed = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
        assert committed.exists()
        code = main(self.BENCH_ARGS + ["--expect-schema", str(committed)])
        assert code == 0
        assert "schema matches" in capsys.readouterr().out


class TestSweepCommand:
    def test_trace_store_round_trip_via_cli(self, tmp_path, capsys):
        from repro.sweep import clear_workload_memo

        args = [
            "sweep", "--profiles", "oltp_db2", "--designs", "baseline",
            "--scale", "0.08", "--cores", "2", "--instructions-per-core",
            "5000", "--no-cache", "--trace-dir", str(tmp_path / "traces"),
            "--json",
        ]
        clear_workload_memo()
        assert main(args) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["stats"]["traces_generated"] == 2

        clear_workload_memo()
        assert main(args + ["--expect-trace-cached"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["stats"]["traces_generated"] == 0
        assert warm["stats"]["traces_loaded"] == 2
        assert warm["reports"] == cold["reports"]

    def test_expect_trace_cached_fails_cold(self, tmp_path, capsys):
        from repro.sweep import clear_workload_memo

        clear_workload_memo()
        code = main([
            "sweep", "--profiles", "oltp_db2", "--designs", "baseline",
            "--scale", "0.08", "--cores", "2", "--instructions-per-core",
            "5000", "--no-cache", "--trace-dir", str(tmp_path / "empty"),
            "--expect-trace-cached",
        ])
        assert code == 1
        assert "--expect-trace-cached" in capsys.readouterr().err

    def test_unusable_trace_dir_exits_nonzero_with_message(self, tmp_path, capsys):
        # $REPRO_TRACE_DIR (or --trace-dir) pointing somewhere that cannot be
        # created — here, under a regular file — must produce a clean error,
        # not a bare NotADirectoryError traceback from deep in the store.
        blocker = tmp_path / "blocker"
        blocker.write_text("in the way")
        from repro.sweep import clear_workload_memo

        clear_workload_memo()
        code = main([
            "sweep", "--profiles", "oltp_db2", "--designs", "baseline",
            "--scale", "0.08", "--cores", "1", "--instructions-per-core",
            "5000", "--no-cache", "--trace-dir", str(blocker / "traces"),
        ])
        assert code == 1
        assert "sweep:" in capsys.readouterr().err

    def test_unknown_scenario_exits_with_usage_error(self, capsys):
        code = main([
            "sweep", "--scenarios", "no_such_mix", "--designs", "baseline",
            "--scale", "0.08", "--cores", "2", "--no-cache",
            "--no-trace-store",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err and "consolidated_oltp_dss" in err

    def test_unknown_backend_exits_with_usage_error(self, capsys):
        code = main([
            "sweep", "--profiles", "oltp_db2", "--designs", "baseline",
            "--scale", "0.08", "--cores", "1", "--backend", "vector9000",
            "--no-cache", "--no-trace-store",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown backend" in err and "scalar" in err

    def test_sweep_on_the_reference_backend(self, capsys):
        from repro.sweep import clear_workload_memo

        clear_workload_memo()
        code = main([
            "sweep", "--profiles", "oltp_db2", "--designs", "baseline",
            "--scale", "0.08", "--cores", "1", "--instructions-per-core",
            "5000", "--backend", "reference", "--no-cache",
            "--no-trace-store",
        ])
        assert code == 0
        assert "baseline" in capsys.readouterr().out


class TestBackendsCommand:
    def test_listing_names_every_backend(self, capsys):
        from repro.backends import backend_names

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in backend_names():
            assert name in out
        assert "(default)" in out
        assert "trace form" in out

    def test_json_listing_is_machine_readable(self, capsys):
        from repro.backends import DEFAULT_BACKEND, backend_names

        assert main(["backends", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        rows = {row["name"]: row for row in payload["backends"]}
        assert set(rows) == set(backend_names())
        assert rows[DEFAULT_BACKEND]["default"] is True
        assert rows["reference"]["default"] is False
        assert rows["scalar"]["trace form"] == "columnar (.packed)"
        assert rows["scalar"]["available"] is True
        assert rows["scalar"]["unavailable reason"] is None

    def test_unavailable_backend_is_annotated(self, capsys, monkeypatch):
        import repro._np
        import repro.backends.batch

        monkeypatch.setattr(repro._np, "np", None)
        monkeypatch.setattr(repro.backends.batch, "np", None)
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "batch (unavailable: numpy is not installed)" in out
        assert main(["backends", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        rows = {row["name"]: row for row in payload["backends"]}
        assert rows["batch"]["available"] is False
        assert rows["batch"]["unavailable reason"] == "numpy is not installed"


class TestSweepScenarios:
    ARGS = [
        "sweep", "--scenarios", "consolidated_oltp_dss", "--designs",
        "baseline", "--scale", "0.08", "--cores", "4",
        "--instructions-per-core", "5000", "--json",
    ]

    def test_scenario_sweep_round_trip(self, tmp_path, capsys):
        from repro.sweep import clear_workload_memo

        args = self.ARGS + [
            "--cache-dir", str(tmp_path / "cache"),
            "--trace-dir", str(tmp_path / "traces"),
        ]
        clear_workload_memo()
        assert main(args) == 0
        cold = json.loads(capsys.readouterr().out)
        report = cold["reports"]["consolidated_oltp_dss"]
        assert report["results"]["baseline"]["core_profiles"] == [
            "oltp_db2", "oltp_db2", "dss_qry2", "dss_qry2",
        ]
        assert cold["stats"]["simulated"] == 1
        assert cold["stats"]["traces_generated"] == 4

        # Warm rerun: the scenario cell memoizes and the store serves every
        # trace — the CI scenario-cache job's contract.
        clear_workload_memo()
        assert main(args + ["--expect-cached", "--expect-trace-cached"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["stats"]["simulated"] == 0
        assert warm["stats"]["traces_generated"] == 0
        assert warm["reports"] == cold["reports"]

    def test_scenarios_only_sweep_skips_the_profile_default(self, tmp_path, capsys):
        # With --scenarios and no --profiles the sweep must not silently run
        # all eight profiles too.
        from repro.sweep import clear_workload_memo

        clear_workload_memo()
        args = self.ARGS + ["--no-cache", "--trace-dir", str(tmp_path / "traces")]
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert list(payload["reports"]) == ["consolidated_oltp_dss"]


class TestSweepResilience:
    ARGS = [
        "sweep", "--profiles", "oltp_db2", "--designs", "baseline",
        "confluence", "--scale", "0.08", "--cores", "2",
        "--instructions-per-core", "5000", "--no-cache", "--no-trace-store",
    ]

    def test_resume_simulates_only_the_missing_cells(self, tmp_path, capsys):
        from repro.sweep import clear_workload_memo

        journal = ["--journal-dir", str(tmp_path / "journal")]
        clear_workload_memo()
        assert main(self.ARGS + journal + ["--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["stats"]["simulated"] == 2
        # Hard-kill emulation: drop the last journaled cell, then resume.
        journal_file = next((tmp_path / "journal").glob("*.jsonl"))
        lines = journal_file.read_text().splitlines()
        journal_file.write_text("\n".join(lines[:-1]) + "\n")
        clear_workload_memo()
        assert main(self.ARGS + journal + ["--resume", "--json"]) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["stats"]["resumed"] == 1
        assert resumed["stats"]["simulated"] == 1
        assert resumed["reports"] == cold["reports"]
        # A fully journaled sweep resumes without any simulation at all —
        # --expect-cached holds even under --no-cache.
        clear_workload_memo()
        code = main(self.ARGS + journal + ["--resume", "--expect-cached"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 resumed from journal" in out

    def test_stats_output_carries_the_resilience_counters(self, capsys):
        from repro.sweep import clear_workload_memo

        clear_workload_memo()
        assert main(self.ARGS + ["--no-journal", "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)["stats"]
        for counter in (
            "retried", "timed_out", "quarantined", "resumed", "pool_rebuilds"
        ):
            assert stats[counter] == 0
        clear_workload_memo()
        assert main(self.ARGS + ["--no-journal"]) == 0
        assert "resilience:" in capsys.readouterr().out

    def test_resume_without_a_journal_is_a_usage_error(self, capsys):
        code = main(self.ARGS + ["--no-journal", "--resume"])
        assert code == 2
        assert "--resume requires the journal" in capsys.readouterr().err

    def test_bad_retry_policy_is_a_usage_error(self, capsys):
        code = main(self.ARGS + ["--no-journal", "--retries", "-3"])
        assert code == 2
        assert "sweep:" in capsys.readouterr().err

    def test_failed_sweep_mentions_resume(self, tmp_path, capsys):
        from repro.faultinject import FaultPlan, active
        from repro.sweep import clear_workload_memo

        plan = FaultPlan()
        plan.fail("cell:simulate", match="oltp_db2/confluence", attempts=10)
        clear_workload_memo()
        with active(plan):
            code = main(
                self.ARGS
                + ["--journal-dir", str(tmp_path / "journal"), "--retries", "0"]
            )
        assert code == 1
        err = capsys.readouterr().err
        assert "oltp_db2/confluence" in err and "--resume" in err


class TestLintCommand:
    FIXTURES = Path(__file__).resolve().parent / "staticcheck_fixtures"

    def test_default_target_is_the_installed_package(self, capsys):
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_seeded_fixture_exits_nonzero(self, capsys):
        code = main(["lint", str(self.FIXTURES / "r001_hot_alloc.py")])
        captured = capsys.readouterr()
        assert code == 1
        assert "R001" in captured.out
        assert "finding(s)" in captured.out

    def test_json_schema_is_stable(self, capsys):
        assert main(["lint", "--json", str(self.FIXTURES / "r002")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"schema", "count", "findings"}
        assert payload["schema"] == 1
        assert payload["count"] == len(payload["findings"]) > 0
        for finding in payload["findings"]:
            assert set(finding) == {"rule", "path", "line", "symbol", "message"}
        # Stable ordering: a second run emits the identical payload.
        assert main(["lint", "--json", str(self.FIXTURES / "r002")]) == 1
        assert json.loads(capsys.readouterr().out) == payload

    def test_baseline_round_trip(self, tmp_path, capsys):
        target = str(self.FIXTURES / "r004")
        baseline = tmp_path / "baseline.json"
        assert main(["lint", "--write-baseline", str(baseline), target]) == 0
        assert "wrote 1 suppression(s)" in capsys.readouterr().out
        # With the baseline applied the same target is clean (exit 0).
        assert main(["lint", "--baseline", str(baseline), target]) == 0
        out = capsys.readouterr().out
        assert "clean" in out and "1 baselined" in out

    def test_rule_selection_and_listing(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        listing = capsys.readouterr().out
        for rule_id in ("R001", "R002", "R003", "R004", "R005"):
            assert rule_id in listing
        # A rule filter that skips the seeded violation reports clean.
        code = main([
            "lint", str(self.FIXTURES / "r001_hot_alloc.py"), "--rules", "R002",
        ])
        assert code == 0

    def test_unknown_rule_is_a_usage_error(self, capsys):
        assert main(["lint", "--rules", "R999"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_unreadable_baseline_is_a_usage_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["lint", "--baseline", str(missing)]) == 2
        assert "cannot load baseline" in capsys.readouterr().err


class TestReportCommand:
    """``python -m repro report``: collection, rendering, the CI gate."""

    def _point(self, scale=1.0):
        return {
            "schema": 2,
            "bench": "kernel_hotloop",
            "config": {"profile": "oltp_db2", "scale": 0.1,
                       "instructions": 20000, "seed": 3, "repeats": 2,
                       "backend": "scalar"},
            "designs": [
                {"design": "baseline", "backend": "scalar",
                 "regions_per_sec": 50_000.0 * scale, "ipc": 0.70},
            ],
            "backends": [
                {"backend": "reference", "design": "baseline",
                 "regions_per_sec": 20_000.0 * scale, "ipc": 0.70},
                {"backend": "scalar", "design": "baseline",
                 "regions_per_sec": 50_000.0 * scale, "ipc": 0.70},
            ],
            "speedup_over_reference": 2.5,
        }

    def _trajectory(self, path, *scales):
        path.write_text(json.dumps({
            "bench": "kernel_hotloop",
            "points": [self._point(scale) for scale in scales],
        }))
        return str(path)

    def test_renders_self_contained_html(self, tmp_path, capsys):
        bench = self._trajectory(tmp_path / "bench.json", 1.0, 1.05)
        out = tmp_path / "report.html"
        assert main(["report", "--bench", bench, "--out", str(out)]) == 0
        assert f"wrote {out}" in capsys.readouterr().out
        html = out.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html and "<script" not in html

    def test_markdown_to_stdout(self, tmp_path, capsys):
        bench = self._trajectory(tmp_path / "bench.json", 1.0)
        assert main(["report", "--bench", bench, "--format", "md"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Confluence reproduction report")
        assert "baseline_regions_per_sec" not in out  # single point: no deltas
        assert "| point |" in out

    def test_check_passes_within_tolerance(self, tmp_path, capsys):
        bench = self._trajectory(tmp_path / "bench.json", 1.0, 0.9)
        code = main(["report", "--bench", bench, "--check",
                     "--tolerance", "0.5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ok" in out and "--check: within tolerance 0.5" in out

    def test_check_fails_on_seeded_regression(self, tmp_path, capsys):
        # The acceptance pin: a regressed newest point (30% of baseline)
        # against --tolerance 0.5 must exit non-zero, per backend.
        bench = self._trajectory(tmp_path / "bench.json", 0.3)
        baseline = self._trajectory(tmp_path / "baseline.json", 1.0)
        code = main(["report", "--bench", bench, "--baseline", baseline,
                     "--check", "--tolerance", "0.5"])
        captured = capsys.readouterr()
        assert code == 1
        assert "REGRESSED" in captured.out
        assert "regressed beyond tolerance 0.5" in captured.err

    def test_check_refuses_single_point_without_baseline(self, tmp_path, capsys):
        bench = self._trajectory(tmp_path / "bench.json", 1.0)
        code = main(["report", "--bench", bench, "--check",
                     "--tolerance", "0.5"])
        assert code == 1
        assert "no baseline" in capsys.readouterr().err

    def test_nonpositive_tolerance_is_a_usage_error(self, tmp_path, capsys):
        bench = self._trajectory(tmp_path / "bench.json", 1.0)
        code = main(["report", "--bench", bench, "--check", "--tolerance", "0"])
        assert code == 2
        assert "--tolerance must be positive" in capsys.readouterr().err

    def test_defaults_to_committed_trajectory_in_cwd(self, tmp_path,
                                                     monkeypatch, capsys):
        self._trajectory(tmp_path / "BENCH_kernel.json", 1.0, 1.02)
        monkeypatch.chdir(tmp_path)
        assert main(["report", "--format", "md"]) == 0
        assert "BENCH_kernel.json" in capsys.readouterr().out

    def test_nothing_to_collect_is_a_usage_error(self, tmp_path,
                                                 monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["report"]) == 2
        assert "nothing to collect" in capsys.readouterr().err

    def test_missing_bench_file_errors(self, tmp_path, capsys):
        code = main(["report", "--bench", str(tmp_path / "absent.json")])
        assert code == 1
        assert "cannot collect" in capsys.readouterr().err

    def test_unknown_format_is_a_usage_error(self, tmp_path, capsys):
        bench = self._trajectory(tmp_path / "bench.json", 1.0)
        assert main(["report", "--bench", bench, "--format", "pdf"]) == 2
        assert "pdf" in capsys.readouterr().err

    def test_save_bundle_is_content_addressed(self, tmp_path, capsys):
        bench = self._trajectory(tmp_path / "bench.json", 1.0)
        store = tmp_path / "bundles"
        for _ in range(2):
            assert main(["report", "--bench", bench, "--format", "md",
                         "--save-bundle", "--report-dir", str(store)]) == 0
        capsys.readouterr()
        assert len(list(store.glob("*.bundle.json"))) == 1

    def test_collects_sweep_save_report_output(self, tmp_path, capsys):
        # End-to-end through the CLI: a real (tiny) sweep saved with
        # --save-report renders into the report's sweep section.
        from repro.sweep import clear_workload_memo

        saved = tmp_path / "sweep.report.json"
        clear_workload_memo()
        assert main([
            "sweep", "--profiles", "oltp_db2", "--designs", "baseline",
            "--scale", "0.08", "--cores", "1", "--instructions-per-core",
            "5000", "--no-cache", "--no-trace-store", "--no-journal",
            "--save-report", str(saved),
        ]) == 0
        assert saved.exists()
        capsys.readouterr()

        bench = self._trajectory(tmp_path / "bench.json", 1.0)
        assert main(["report", "--bench", bench, "--sweep", str(saved),
                     "--format", "md"]) == 0
        out = capsys.readouterr().out
        assert "oltp_db2" in out
        assert "| design |" in out

    def test_save_report_json_stdout_stays_pure(self, tmp_path, capsys):
        from repro.sweep import clear_workload_memo

        saved = tmp_path / "sweep.report.json"
        clear_workload_memo()
        assert main([
            "sweep", "--profiles", "oltp_db2", "--designs", "baseline",
            "--scale", "0.08", "--cores", "1", "--instructions-per-core",
            "5000", "--no-cache", "--no-trace-store", "--no-journal",
            "--save-report", str(saved), "--json",
        ]) == 0
        stdout = capsys.readouterr().out
        payload = json.loads(stdout)  # no "wrote ..." line mixed in
        assert payload["stats"]["cells"] == 1
        from repro.api import load_reports

        reports, stats = load_reports(saved)
        assert reports["oltp_db2"].to_dict() == payload["reports"]["oltp_db2"]
        assert stats == payload["stats"]
