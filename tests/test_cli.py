"""Tests for the ``python -m repro`` command-line entry points."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.workloads import load_packed


class TestTraceCommand:
    def test_pack_verify_and_info(self, tmp_path, capsys):
        out = tmp_path / "oltp.trace"
        code = main([
            "trace", "--profile", "oltp_db2", "--scale", "0.08",
            "--instructions", "5000", "--seed", "3",
            "--out", str(out), "--verify", "--chunk-regions", "400",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert out.exists()
        assert "statistics match the generator output" in captured.out

        packed = load_packed(out)
        assert packed.instruction_count >= 5000

        code = main(["trace", "--info", str(out)])
        captured = capsys.readouterr()
        assert code == 0
        assert "fetch regions" in captured.out

    def test_out_requires_profile(self, tmp_path, capsys):
        code = main(["trace", "--out", str(tmp_path / "x.trace")])
        assert code == 2
        assert "--profile" in capsys.readouterr().err

    def test_requires_a_mode(self, capsys):
        code = main(["trace", "--profile", "oltp_db2"])
        assert code == 2
        assert "--out or --info" in capsys.readouterr().err


class TestSweepCommand:
    def test_trace_store_round_trip_via_cli(self, tmp_path, capsys):
        from repro.sweep import clear_workload_memo

        args = [
            "sweep", "--profiles", "oltp_db2", "--designs", "baseline",
            "--scale", "0.08", "--cores", "2", "--instructions-per-core",
            "5000", "--no-cache", "--trace-dir", str(tmp_path / "traces"),
            "--json",
        ]
        clear_workload_memo()
        assert main(args) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["stats"]["traces_generated"] == 2

        clear_workload_memo()
        assert main(args + ["--expect-trace-cached"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["stats"]["traces_generated"] == 0
        assert warm["stats"]["traces_loaded"] == 2
        assert warm["reports"] == cold["reports"]

    def test_expect_trace_cached_fails_cold(self, tmp_path, capsys):
        from repro.sweep import clear_workload_memo

        clear_workload_memo()
        code = main([
            "sweep", "--profiles", "oltp_db2", "--designs", "baseline",
            "--scale", "0.08", "--cores", "2", "--instructions-per-core",
            "5000", "--no-cache", "--trace-dir", str(tmp_path / "empty"),
            "--expect-trace-cached",
        ])
        assert code == 1
        assert "--expect-trace-cached" in capsys.readouterr().err
