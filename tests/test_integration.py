"""Integration tests: end-to-end design comparisons and experiment harnesses.

These assert the *shape* of the paper's headline results on a scaled-down
workload: design ordering, miss-coverage ordering and area ordering.
"""

import pytest

from repro.analysis import (
    airbtb_ablation,
    airbtb_sensitivity,
    branch_density_table,
    btb_capacity_sweep,
    frontend_comparison,
    miss_coverage_comparison,
)
from repro.analysis.experiments import performance_area_frontier, run_btb_coverage
from repro.analysis.reporting import format_series, format_table
from repro.branch import ConventionalBTB


@pytest.fixture(scope="module")
def outcomes(small_program, small_trace):
    designs = ("baseline", "fdp", "2level_shift", "confluence", "ideal")
    return frontend_comparison(small_program, small_trace, designs)


class TestDesignOrdering:
    def test_ideal_is_best(self, outcomes):
        base = outcomes["baseline"].result
        ideal_speedup = outcomes["ideal"].result.speedup_over(base)
        for outcome in outcomes.values():
            assert outcome.result.speedup_over(base) <= ideal_speedup + 1e-9

    def test_confluence_beats_baseline_and_fdp(self, outcomes):
        base = outcomes["baseline"].result
        confluence = outcomes["confluence"].result.speedup_over(base)
        assert confluence > 1.0
        assert confluence > outcomes["fdp"].result.speedup_over(base)

    def test_confluence_at_least_matches_2level_shift(self, outcomes):
        base = outcomes["baseline"].result
        confluence = outcomes["confluence"].result.speedup_over(base)
        two_level = outcomes["2level_shift"].result.speedup_over(base)
        assert confluence >= two_level * 0.97

    def test_confluence_area_far_below_two_level(self, outcomes):
        assert outcomes["confluence"].area.total_mm2 < 0.5 * outcomes["2level_shift"].area.total_mm2

    def test_frontier_rows_normalised_to_baseline(self, outcomes):
        rows = performance_area_frontier(outcomes)
        baseline_row = next(row for row in rows if row["design"] == "baseline")
        assert baseline_row["relative_performance"] == pytest.approx(1.0)
        assert baseline_row["relative_area"] == pytest.approx(1.0)


class TestBTBCapacitySweep:
    def test_mpki_decreases_with_capacity(self, small_trace):
        series = btb_capacity_sweep(small_trace, capacities=(1024, 4096, 16384))
        assert series[1024] >= series[4096] >= series[16384]
        assert series[1024] > 0

    def test_large_btb_captures_working_set(self, small_trace):
        series = btb_capacity_sweep(small_trace, capacities=(1024, 32768))
        assert series[32768] < 0.25 * series[1024]


class TestMissCoverage:
    def test_airbtb_beats_phantom_and_approaches_16k(self, small_program, small_trace):
        coverage = miss_coverage_comparison(small_program, small_trace)
        assert coverage["airbtb"] > coverage["phantombtb"]
        assert coverage["airbtb"] <= coverage["conventional_16k"] + 0.10
        assert coverage["conventional_16k"] > 0.7

    def test_ablation_steps_accumulate(self, small_program, small_trace):
        steps = airbtb_ablation(small_program, small_trace)
        assert steps["spatial_locality"] > steps["capacity"]
        assert steps["block_based_org"] >= steps["spatial_locality"] - 0.05
        assert steps["baseline_mpki"] > 0

    def test_sensitivity_overflow_buffer_helps(self, small_program, small_trace):
        coverage = airbtb_sensitivity(small_program, small_trace,
                                      bundle_sizes=(3,), overflow_sizes=(0, 32))
        assert coverage[(3, 32)] > coverage[(3, 0)]


class TestBranchDensity:
    def test_densities_in_table2_ballpark(self, small_program, small_trace):
        densities = branch_density_table(small_program, small_trace)
        assert 1.5 < densities["static"] < 6.0
        assert 0.5 < densities["dynamic"] < 3.0
        assert densities["dynamic"] < densities["static"]


class TestCoverageHarness:
    def test_run_btb_coverage_counts_post_warmup(self, small_trace):
        btb = ConventionalBTB(entries=1024, victim_entries=64)
        misses, instructions = run_btb_coverage(btb, small_trace, warmup_fraction=0.2)
        assert misses > 0
        assert instructions < small_trace.instruction_count


class TestReporting:
    def test_format_table(self):
        text = format_table(
            [{"design": "confluence", "speedup": 1.3}],
            columns=("design", "speedup"),
            title="Figure 6",
        )
        assert "Figure 6" in text
        assert "confluence" in text
        assert "1.300" in text

    def test_format_series(self):
        text = format_series({1024: 40.0, 2048: 20.0}, title="Figure 1")
        assert "Figure 1" in text
        assert "1024" in text
