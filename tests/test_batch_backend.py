"""The lane-vectorized ``batch`` backend (PR 8).

Cross-backend parity on generated traces already lives in
``test_frontend_parity.py`` (the ``sim_backend`` fixture covers ``batch``
the moment it registers).  This file pins what that suite cannot see:

* the multi-lane ``run_lanes`` entry point — one lane, unequal lane
  lengths, warm component reuse across runs — against per-core scalar runs,
* the divergence-mask edge cases (regions where *every* lane misfetches and
  regions where *no* lane does),
* the CMP lane-grouped dispatch: homogeneous and heterogeneous chips must
  reproduce the serial scalar path bit for bit, grouped one ``run_lanes``
  call per co-located profile, with the scalar fallback for designs outside
  the vectorized envelope,
* the optional-dependency story: without numpy the backend stays registered
  but reports unavailable and raises a :class:`ValueError` naming numpy.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.backends import get_backend
from repro.core.cmp import ChipMultiprocessor
from repro.core.designs import design_from_spec, resolve_design
from repro.isa.instruction import BranchKind
from repro.workloads import generate_trace
from repro.workloads.scenario import Scenario, ScenarioEntry
from repro.workloads.trace import FetchRecord, Trace

np = pytest.importorskip("numpy")


def _simulator(program, design="baseline"):
    simulator, _ = design_from_spec(resolve_design(design), program)
    return simulator


def _scalar_results(program, traces, design="baseline", warmup=None):
    results = []
    for trace in traces:
        simulator = _simulator(program, design)
        kwargs = {} if warmup is None else {"warmup_fraction": warmup}
        results.append(simulator.run(trace, backend="scalar", **kwargs))
    return results


def _as_dicts(results):
    return [dataclasses.asdict(result) for result in results]


class TestRunLanes:
    def test_single_lane_matches_scalar(self, tiny_program, tiny_trace):
        batch = get_backend("batch")
        lane = batch.run_lanes(
            [_simulator(tiny_program)], [tiny_trace], [0.2]
        )
        oracle = _scalar_results(tiny_program, [tiny_trace], warmup=0.2)
        assert _as_dicts(lane) == _as_dicts(oracle)

    def test_unequal_lane_lengths_match_scalar(self, tiny_program):
        # Lanes retire at different region counts; the shorter lanes' masks
        # go dead while the longest keeps running.
        batch = get_backend("batch")
        traces = [
            generate_trace(tiny_program, budget, seed=7 + i)
            for i, budget in enumerate((6_000, 21_000, 33_000))
        ]
        sims = [_simulator(tiny_program) for _ in traces]
        lanes = batch.run_lanes(sims, traces, [0.2] * len(traces))
        oracle = _scalar_results(tiny_program, traces, warmup=0.2)
        assert _as_dicts(lanes) == _as_dicts(oracle)

    def test_warm_reuse_across_runs_matches_scalar(self, tiny_program):
        # A second trace through the same simulator starts with warm caches
        # and predictors on both backends (the "core moves to the next
        # trace" model) — the warm-state import/export must round-trip.
        first = generate_trace(tiny_program, 12_000, seed=11)
        second = generate_trace(tiny_program, 12_000, seed=12)
        batch_sim = _simulator(tiny_program)
        scalar_sim = _simulator(tiny_program)
        for trace in (first, second):
            via_batch = batch_sim.run(trace, backend="batch")
            via_scalar = scalar_sim.run(trace, backend="scalar")
            assert dataclasses.asdict(via_batch) == dataclasses.asdict(via_scalar)


class TestDivergenceMaskEdges:
    _BASE = 0x4000_0000

    def _all_misfetch_trace(self, regions=240):
        # Every region ends in a taken conditional at a never-before-seen
        # pc: the BTB misses everywhere, so the misfetch mask is all-lanes
        # true on every region.
        records = []
        for index in range(regions):
            start = self._BASE + index * 0x1000
            target = self._BASE + (index + 1) * 0x1000
            records.append(FetchRecord(
                start=start, instruction_count=4, branch_pc=start + 12,
                kind=BranchKind.CONDITIONAL, taken=True, target=target,
                next_pc=target,
            ))
        return Trace(records, name="all_misfetch")

    def _steady_loop_trace(self, regions=240):
        # One taken loop branch repeated: after the first visit the BTB and
        # direction predictor are warm and nothing ever diverges again.
        records = []
        for _ in range(regions):
            records.append(FetchRecord(
                start=self._BASE, instruction_count=4,
                branch_pc=self._BASE + 12, kind=BranchKind.CONDITIONAL,
                taken=True, target=self._BASE, next_pc=self._BASE,
            ))
        return Trace(records, name="steady_loop")

    def test_every_lane_misfetches_every_region(self, tiny_program):
        batch = get_backend("batch")
        traces = [self._all_misfetch_trace() for _ in range(3)]
        sims = [_simulator(tiny_program) for _ in traces]
        lanes = batch.run_lanes(sims, traces, [0.0] * len(traces))
        oracle = _scalar_results(tiny_program, traces, warmup=0.0)
        assert _as_dicts(lanes) == _as_dicts(oracle)
        for result in lanes:
            assert result.misfetches == result.fetch_regions

    def test_no_lane_ever_misfetches(self, tiny_program):
        batch = get_backend("batch")
        traces = [self._steady_loop_trace() for _ in range(3)]
        sims = [_simulator(tiny_program) for _ in traces]
        lanes = batch.run_lanes(sims, traces, [0.2] * len(traces))
        oracle = _scalar_results(tiny_program, traces, warmup=0.2)
        assert _as_dicts(lanes) == _as_dicts(oracle)
        for result in lanes:
            # Post-warmup the loop is steady state: no misfetches, no
            # direction mispredictions, in any lane.
            assert result.misfetches == 0
            assert result.direction_mispredictions == 0


class TestRunLanesValidation:
    def test_mismatched_lane_sequences_raise(self, tiny_program, tiny_trace):
        batch = get_backend("batch")
        with pytest.raises(ValueError, match="matching lane sequences"):
            batch.run_lanes([_simulator(tiny_program)], [tiny_trace], [0.2, 0.2])

    def test_records_only_trace_raises(self, tiny_program, tiny_trace):
        class RecordsOnly:
            name = "records_only"
            packed = None
            records = tiny_trace.records

        batch = get_backend("batch")
        with pytest.raises(ValueError, match="cannot consume trace"):
            batch.run_lanes([_simulator(tiny_program)], [RecordsOnly()], [0.2])

    def test_non_vectorizing_design_raises_in_run_lanes(
        self, tiny_program, tiny_trace
    ):
        batch = get_backend("batch")
        confluence = _simulator(tiny_program, "confluence")
        assert not batch.vectorizes(confluence)
        with pytest.raises(ValueError, match="does not vectorize"):
            batch.run_lanes([confluence], [tiny_trace], [0.2])

    def test_run_delegates_non_vectorizing_designs_to_scalar(
        self, tiny_program, tiny_trace
    ):
        via_batch = _simulator(tiny_program, "confluence").run(
            tiny_trace, backend="batch"
        )
        oracle = _simulator(tiny_program, "confluence").run(
            tiny_trace, backend="scalar"
        )
        assert dataclasses.asdict(via_batch) == dataclasses.asdict(oracle)


class TestCMPDispatch:
    def _cmp(self, tiny_program, **kwargs):
        return ChipMultiprocessor(
            tiny_program, cores=4, instructions_per_core=8_000, **kwargs
        )

    def test_homogeneous_chip_matches_scalar(self, tiny_program):
        scalar = self._cmp(tiny_program).run_design("baseline", backend="scalar")
        batch = self._cmp(tiny_program).run_design("baseline", backend="batch")
        assert _as_dicts(scalar.core_results) == _as_dicts(batch.core_results)

    def test_homogeneous_chip_is_one_run_lanes_call(self, tiny_program, monkeypatch):
        from repro.backends.batch import BatchBackend

        calls = []
        original = BatchBackend.run_lanes

        def counting(self, simulators, traces, warmups):
            calls.append(len(simulators))
            return original(self, simulators, traces, warmups)

        monkeypatch.setattr(BatchBackend, "run_lanes", counting)
        self._cmp(tiny_program).run_design("baseline", backend="batch")
        assert calls == [4]  # all co-located cores ride one vectorized call

    def test_heterogeneous_scenario_groups_per_profile(self, monkeypatch):
        # A seeded two-profile mix with unequal per-entry budgets: the batch
        # path must issue one run_lanes call per profile group and land on
        # the scalar serial path's results, core for core.
        scenario = Scenario(
            name="mixed_test",
            description="two-profile mix with unequal per-entry budgets",
            entries=(
                ScenarioEntry("oltp_db2", weight=1, instructions=7_000),
                ScenarioEntry("web_frontend", weight=1, instructions=9_000),
            ),
        )

        def run(backend):
            cmp_ = ChipMultiprocessor(
                scenario=scenario.bind(cores=4, trace_seed_base=42)
            )
            return cmp_.run_design("baseline", backend=backend)

        scalar = run("scalar")

        from repro.backends.batch import BatchBackend

        calls = []
        original = BatchBackend.run_lanes

        def counting(self, simulators, traces, warmups):
            calls.append(len(simulators))
            return original(self, simulators, traces, warmups)

        monkeypatch.setattr(BatchBackend, "run_lanes", counting)
        batch = run("batch")
        assert calls == [2, 2]  # one call per co-located profile group
        assert _as_dicts(scalar.core_results) == _as_dicts(batch.core_results)
        assert scalar.per_profile() == batch.per_profile()

    def test_non_vectorizing_design_falls_back_per_core(self, tiny_program):
        scalar = self._cmp(tiny_program).run_design("confluence", backend="scalar")
        batch = self._cmp(tiny_program).run_design("confluence", backend="batch")
        assert _as_dicts(scalar.core_results) == _as_dicts(batch.core_results)


class TestNumpyAbsent:
    """Registered-but-unavailable: clear errors, never an AttributeError."""

    @pytest.fixture
    def no_numpy(self, monkeypatch):
        import repro._np
        import repro.backends.batch

        monkeypatch.setattr(repro._np, "np", None)
        monkeypatch.setattr(repro.backends.batch, "np", None)

    def test_reports_unavailable(self, no_numpy):
        batch = get_backend("batch")
        assert not batch.available()
        assert "numpy" in batch.unavailable_reason()

    def test_run_raises_a_value_error_naming_numpy(
        self, no_numpy, tiny_program, tiny_trace
    ):
        simulator = _simulator(tiny_program)
        with pytest.raises(ValueError, match="requires numpy"):
            simulator.run(tiny_trace, backend="batch")

    def test_vectorizes_is_false_without_numpy(self, no_numpy, tiny_program):
        batch = get_backend("batch")
        assert not batch.vectorizes(_simulator(tiny_program))

    def test_cmp_dispatch_skips_the_lane_path(self, no_numpy, tiny_program):
        # _batch_backend returns None when unavailable; the per-core path
        # then surfaces the uniform require_numpy error on the first run.
        cmp_ = ChipMultiprocessor(tiny_program, cores=2, instructions_per_core=6_000)
        with pytest.raises(ValueError, match="requires numpy"):
            cmp_.run_design("baseline", backend="batch")
