#!/usr/bin/env python
"""Consolidated scale-out server: a heterogeneous multi-program CMP.

The paper's deployment model is consolidation — OLTP next to decision
support next to media streaming on one chip — and a Scenario expresses it
directly: a named per-core workload mix, dealt over the cores, with one
shared SHIFT history per co-located profile (recorded by that profile's
first core, replayed by the rest).

This walkthrough runs the ``consolidated_oltp_dss`` catalog scenario
through the Session facade, then prints the per-profile breakdown —
who wins and who pays inside the consolidation — and the scenario
comparison table across the catalog's mixes.
"""

from repro import Session, get_scenario
from repro.analysis import scenario_comparison_rows, scenario_grid

DESIGNS = ["baseline", "2level_shift", "confluence"]


def main() -> None:
    scenario = get_scenario("consolidated_oltp_dss")
    session = Session(scenario=scenario, scale=0.3, cores=8, instructions_per_core=60_000)
    mix = session.scenario.core_counts()
    print(f"Simulating '{scenario.name}' on {session.cores} cores: "
          + ", ".join(f"{count}x {name}" for name, count in mix.items()) + "\n")

    report = session.run(DESIGNS)
    print(f"{'design':<16} {'chip IPC':>9} {'speedup':>9} {'BTB MPKI':>9}")
    for design in report.designs:
        row = report[design]
        print(f"{design:<16} {row['ipc']:>9.3f} {row['speedup']:>9.3f} "
              f"{row['btb_mpki']:>9.2f}")

    print("\nPer-profile breakdown (confluence):")
    breakdown = report["confluence"]["per_profile"]
    for profile, group in breakdown.items():
        print(f"  {profile:<18} {group['cores']} cores  "
              f"ipc {group['ipc']:.3f}  btb_mpki {group['btb_mpki']:.2f}")

    print("\nScenario comparison (chip IPC and the per-profile split):")
    reports = scenario_grid(
        scenarios=("consolidated_oltp_dss", "noisy_neighbor_media"),
        designs=["baseline", "confluence"],
        scale=0.15, cores=4, instructions_per_core=30_000,
    )
    for row in scenario_comparison_rows(reports):
        split = ", ".join(
            f"{key[4:-1]} {value:.3f}"
            for key, value in row.items() if key.startswith("ipc[")
        )
        print(f"  {row['scenario']:<24} {row['design']:<12} "
              f"ipc {row['ipc']:.3f}  speedup {row['speedup']:.3f}  ({split})")


if __name__ == "__main__":
    main()
