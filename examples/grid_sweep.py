#!/usr/bin/env python
"""Grid sweep with worker processes and the on-disk result cache.

The paper's evaluation is a grid — workload profiles x frontend design
points — and ``run_grid`` executes it through ``repro.sweep``: every
(profile, design) cell is an independent unit of work, fanned out across a
process pool and served from a content-addressed cache on disk, so an
unchanged cell is loaded instead of re-simulated.  Run this script twice:
the second run performs zero simulations.

The same sweep is available from the shell::

    python -m repro sweep --profiles oltp_db2 dss_qry2 media_streaming \\
        --designs baseline 2level_shift confluence ideal \\
        --scale 0.2 --cores 4 --workers 4
"""

from repro import ResultCache, reports_from_sweep, run_sweep
from repro.analysis import format_table, grid_speedup_rows

PROFILES = ("oltp_db2", "dss_qry2", "media_streaming")
DESIGNS = ("baseline", "2level_shift", "confluence", "ideal")


def main() -> None:
    cache = ResultCache()  # $REPRO_CACHE_DIR or ~/.cache/repro
    outcome = run_sweep(
        PROFILES,
        DESIGNS,
        scale=0.2,
        cores=4,
        instructions_per_core=60_000,
        workers=4,
        cache=cache,
    )
    print(
        f"{outcome.stats.cells} grid cells: {outcome.stats.simulated} simulated, "
        f"{outcome.stats.cache_hits} served from {cache.directory}\n"
    )

    reports = reports_from_sweep(outcome)
    print(format_table(
        grid_speedup_rows(reports),
        ("design",) + PROFILES + ("geomean",),
        title="Speedup over the 1K-entry BTB baseline, per workload",
    ))

    if outcome.stats.simulated == 0:
        print("\nEvery cell came from the cache — this sweep was free.")
    else:
        print("\nRun me again: the whole grid will be served from the cache.")


if __name__ == "__main__":
    main()
