#!/usr/bin/env python
"""BTB design-space study on an OLTP workload (the paper's Figures 1 and 9).

Sweeps conventional BTB capacities to show how large the branch working set
of a server workload is, then compares PhantomBTB, AirBTB (Confluence) and a
16K-entry BTB in terms of the fraction of baseline misses they eliminate.
"""

from repro import build_workload, get_profile
from repro.analysis import btb_capacity_sweep, format_series, miss_coverage_comparison


def main() -> None:
    profile = get_profile("oltp_oracle").scaled(0.4)
    program, trace = build_workload(profile, instructions=250_000)

    print("=== BTB MPKI vs capacity (conventional BTB) ===")
    series = btb_capacity_sweep(trace, capacities=(1024, 2048, 4096, 8192, 16384, 32768))
    print(format_series({f"{c // 1024}K entries": v for c, v in series.items()},
                        title=f"{profile.name}"))

    print("\n=== Fraction of 1K-BTB misses eliminated ===")
    coverage = miss_coverage_comparison(program, trace)
    for design, value in coverage.items():
        print(f"  {design:<18} {100 * value:6.1f}%")

    print("\nAirBTB approaches the coverage of a 16K-entry BTB with roughly the "
          "storage of the 1K-entry baseline, which is the core of the paper's claim.")


if __name__ == "__main__":
    main()
