#!/usr/bin/env python
"""A custom design point in 10 lines — no core files touched.

Registers a custom BTB component (a conventional BTB whose victim buffer is
replaced by a second, page-interleaved bank) plus a design point using it,
then runs it against the stock catalog through the Session facade.
"""

from repro import BTB_REGISTRY, DesignSpec, Session, register_design_point
from repro.branch import ConventionalBTB

# --- the 10 lines ---------------------------------------------------------


class BankedBTB(ConventionalBTB):
    """Two conventional banks, selected by bit 12 of the branch PC."""

    def __init__(self, entries=1024, ways=4):
        super().__init__(entries=entries // 2, ways=ways, name="banked_btb")
        self.odd_bank = ConventionalBTB(entries=entries // 2, ways=ways, name="banked_btb_1")

    def lookup(self, branch_pc, taken=True):
        if (branch_pc >> 12) & 1:
            return self.odd_bank.lookup(branch_pc, taken)
        return super().lookup(branch_pc, taken)

    def update(self, branch_pc, kind, target, taken):
        if (branch_pc >> 12) & 1:
            self.odd_bank.update(branch_pc, kind, target, taken)
        else:
            super().update(branch_pc, kind, target, taken)


BTB_REGISTRY.register("banked", lambda ctx, **params: BankedBTB(**params))
register_design_point(DesignSpec(
    name="banked_2k", label="2K banked BTB", btb="banked",
    prefetcher="none", btb_params={"entries": 2048},
))

# --- run it against the stock catalog -------------------------------------


def main() -> None:
    session = Session(profile="web_frontend", scale=0.25, cores=1,
                      instructions_per_core=120_000)
    report = session.run(["baseline", "banked_2k", "confluence"])
    print(f"{'design':<12} {'speedup':>8} {'BTB MPKI':>9}")
    for design in report.designs:
        row = report[design]
        print(f"{design:<12} {row['speedup']:>8.3f} {row['btb_mpki']:>9.2f}")


if __name__ == "__main__":
    main()
