#!/usr/bin/env python
"""Scale-out CMP study: shared instruction-supply metadata across cores.

Simulates a few cores of the 16-core CMP running the media-streaming
workload through the Session facade.  All cores share one SHIFT history
(virtualized in the LLC); only core 0 records it, the others replay it — the
sharing that lets Confluence amortize its metadata across the chip.  The
session's design points run through the sweep engine: ``workers=2`` fans the
(profile, design) cells out across worker processes, bit-identically to the
serial path (see examples/grid_sweep.py for multi-profile grids and the
on-disk result cache).
"""

from repro import Session


def main() -> None:
    session = Session(profile="media_streaming", scale=0.35, cores=4,
                      instructions_per_core=120_000, workers=2)
    print(f"Simulating a {session.cores}-core slice of the CMP on "
          f"'{session.profile.name}'...\n")
    report = session.run(["baseline", "2level_shift", "confluence"])

    print(f"{'design':<16} {'throughput (IPC)':>17} {'speedup':>9} "
          f"{'BTB MPKI':>9} {'L1-I MPKI':>10}")
    for design in report.designs:
        row = report[design]
        print(f"{design:<16} {row['ipc']:>17.3f} {row['speedup']:>9.3f} "
              f"{row['btb_mpki']:>9.2f} {row['l1i_mpki']:>10.2f}")

    saved = report["2level_shift"]["area_mm2"] - report["confluence"]["area_mm2"]
    print(f"\nPer-core area: Confluence {report['confluence']['area_mm2']:.3f} mm^2 vs "
          f"2LevelBTB+SHIFT {report['2level_shift']['area_mm2']:.3f} mm^2 "
          f"(saves {saved:.3f} mm^2 per core, {16 * saved:.1f} mm^2 across the chip).")


if __name__ == "__main__":
    main()
