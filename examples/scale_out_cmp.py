#!/usr/bin/env python
"""Scale-out CMP study: shared instruction-supply metadata across cores.

Simulates a few cores of the 16-core CMP running the media-streaming
workload.  All cores share one SHIFT history (virtualized in the LLC); only
core 0 records it, the others replay it — the sharing that lets Confluence
amortize its metadata across the chip.
"""

from repro import ChipMultiprocessor, get_profile, synthesize_program


def main() -> None:
    profile = get_profile("media_streaming").scaled(0.35)
    program = synthesize_program(profile)
    cmp_model = ChipMultiprocessor(program, cores=4, instructions_per_core=120_000)

    print(f"Simulating a {cmp_model.cores}-core slice of the CMP on '{profile.name}'...\n")
    baseline = cmp_model.run_design("baseline")
    two_level = cmp_model.run_design("2level_shift")
    confluence = cmp_model.run_design("confluence")

    print(f"{'design':<16} {'throughput (IPC)':>17} {'speedup':>9} {'BTB MPKI':>9} {'L1-I MPKI':>10}")
    for result in (baseline, two_level, confluence):
        print(f"{result.design:<16} {result.ipc:>17.3f} "
              f"{result.speedup_over(baseline):>9.3f} "
              f"{result.btb_mpki:>9.2f} {result.l1i_mpki:>10.2f}")

    saved = two_level.area.total_mm2 - confluence.area.total_mm2
    print(f"\nPer-core area: Confluence {confluence.area.total_mm2:.3f} mm^2 vs "
          f"2LevelBTB+SHIFT {two_level.area.total_mm2:.3f} mm^2 "
          f"(saves {saved:.3f} mm^2 per core, {16 * saved:.1f} mm^2 across the chip).")


if __name__ == "__main__":
    main()
