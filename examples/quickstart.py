#!/usr/bin/env python
"""Quickstart: one Session, three design points, one report.

A :class:`repro.Session` builds a scaled-down OLTP workload once and runs a
design grid over it — here the 1K-entry-BTB baseline, Confluence, and an
ideal frontend — returning a JSON-serializable report: a miniature version
of the paper's headline comparison.
"""

from repro import Session
from repro.core.metrics import fraction_of_ideal


def main() -> None:
    session = Session(profile="oltp_db2", scale=0.4, cores=1,
                      instructions_per_core=250_000)
    profile = session.profile
    print(f"Synthesizing workload '{profile.name}' "
          f"(~{profile.approximate_footprint_kb:.0f} KB instruction footprint)...")

    report = session.run(["baseline", "confluence", "ideal"])

    print(f"{'design':<12} {'speedup':>8} {'BTB MPKI':>9} {'L1-I MPKI':>10} {'area mm^2':>10}")
    for design in report.designs:
        row = report[design]
        print(f"{design:<12} {row['speedup']:>8.3f} {row['btb_mpki']:>9.2f} "
              f"{row['l1i_mpki']:>10.2f} {row['area_mm2']:>10.3f}")

    captured = fraction_of_ideal(report.speedup("confluence"), report.speedup("ideal"))
    area_fraction = report["confluence"]["area_fraction_of_core"]
    print(f"\nConfluence captures {100 * captured:.0f}% of the ideal frontend's "
          f"improvement at {100 * area_fraction:.1f}% core area overhead.")
    print("\nThe whole report is plain data; archive it with report.to_json().")


if __name__ == "__main__":
    main()
