#!/usr/bin/env python
"""Quickstart: build a server workload and compare Confluence to a baseline.

Runs a scaled-down OLTP workload through three frontend design points —
the 1K-entry-BTB baseline, Confluence, and an ideal frontend — and prints
speedups, MPKI and per-core area, i.e. a miniature version of the paper's
headline comparison.
"""

from repro import build_design, build_workload, get_profile
from repro.core.metrics import fraction_of_ideal


def main() -> None:
    profile = get_profile("oltp_db2").scaled(0.4)
    print(f"Synthesizing workload '{profile.name}' "
          f"(~{profile.approximate_footprint_kb:.0f} KB instruction footprint)...")
    program, trace = build_workload(profile, instructions=250_000)
    stats = trace.statistics()
    print(f"  trace: {stats.instruction_count} instructions, "
          f"{stats.unique_blocks} unique blocks, "
          f"{stats.unique_taken_branches} unique taken branches\n")

    results = {}
    areas = {}
    for design in ("baseline", "confluence", "ideal"):
        simulator, area = build_design(design, program)
        results[design] = simulator.run(trace)
        areas[design] = area

    base = results["baseline"]
    ideal_speedup = results["ideal"].speedup_over(base)
    print(f"{'design':<12} {'speedup':>8} {'BTB MPKI':>9} {'L1-I MPKI':>10} {'area mm^2':>10}")
    for design, result in results.items():
        print(f"{design:<12} {result.speedup_over(base):>8.3f} {result.btb_mpki:>9.2f} "
              f"{result.l1i_mpki:>10.2f} {areas[design].total_mm2:>10.3f}")

    confluence_speedup = results["confluence"].speedup_over(base)
    print(f"\nConfluence captures "
          f"{100 * fraction_of_ideal(confluence_speedup, ideal_speedup):.0f}% of the ideal "
          f"frontend's improvement at "
          f"{100 * areas['confluence'].fraction_of_core:.1f}% core area overhead.")


if __name__ == "__main__":
    main()
