"""Setup shim for environments without the ``wheel`` package.

The project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` can fall back to a legacy editable install on
offline machines where PEP 660 editable wheels cannot be built.
"""

from setuptools import setup

setup()
