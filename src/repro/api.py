"""High-level experiment API: the :class:`Session` facade and run reports.

One line builds a workload and runs a design grid::

    from repro import Session

    report = Session(profile="oltp_db2", scale=0.25, cores=16).run(
        ["baseline", "confluence"]
    )
    print(report["confluence"]["speedup"])

A :class:`Session` owns one workload: the synthetic program is synthesized
once and cached, and every per-core trace is generated once, so running many
design points amortizes the (comparatively expensive) workload construction.
Per-core simulation can be fanned out across worker processes with
``workers=N`` (opt-in; the serial default preserves seed determinism, and the
parallel path is bit-identical to it anyway).

The result is a :class:`RunReport` of plain data — JSON-serializable both
ways — so sweeps can be archived, diffed and post-processed without keeping
simulator objects alive.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.core.cmp import ChipMultiprocessor, CMPResult
from repro.core.designs import DesignSpec, resolve_design
from repro.core.frontend import FrontendConfig
from repro.workloads.cfg import SyntheticProgram, synthesize_program
from repro.workloads.profiles import WorkloadProfile, get_profile

__all__ = ["Session", "RunReport", "run_grid"]


@dataclass
class RunReport:
    """JSON-serializable outcome of one :meth:`Session.run`.

    ``results`` maps design name to a flat summary dict (instructions,
    cycles, ipc, mpki, speedup against ``baseline``, area).  The ``order``
    list preserves the caller's design order for table rendering.
    """

    profile: str
    scale: float
    cores: int
    instructions_per_core: int
    baseline: Optional[str]
    order: List[str] = field(default_factory=list)
    results: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def __getitem__(self, design: str) -> Dict[str, object]:
        return self.results[design]

    def __contains__(self, design: str) -> bool:
        return design in self.results

    @property
    def designs(self) -> List[str]:
        return list(self.order)

    def speedup(self, design: str, baseline: Optional[str] = None) -> float:
        """Speedup of ``design`` over ``baseline`` (the report's by default)."""
        reference = baseline if baseline is not None else self.baseline
        if reference is None:
            raise ValueError("report has no baseline design; pass one explicitly")
        base_ipc = float(self.results[reference]["ipc"])
        if base_ipc == 0:
            return 0.0
        return float(self.results[design]["ipc"]) / base_ipc

    def to_dict(self) -> Dict[str, object]:
        return {
            "profile": self.profile,
            "scale": self.scale,
            "cores": self.cores,
            "instructions_per_core": self.instructions_per_core,
            "baseline": self.baseline,
            "order": list(self.order),
            "results": {name: dict(summary) for name, summary in self.results.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunReport":
        return cls(
            profile=data["profile"],
            scale=data["scale"],
            cores=data["cores"],
            instructions_per_core=data["instructions_per_core"],
            baseline=data["baseline"],
            order=list(data["order"]),
            results={name: dict(summary) for name, summary in data["results"].items()},
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))


def _summarize(result: CMPResult, spec: DesignSpec, cores: int) -> Dict[str, object]:
    """Flatten one CMP result into plain JSON-compatible data."""
    summary: Dict[str, object] = {
        "design": result.design,
        "label": spec.label,
        "workload": result.workload,
        "cores": cores,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "ipc": result.ipc,
        "btb_mpki": result.btb_mpki,
        "l1i_mpki": result.l1i_mpki,
        "core_ipc": [core.ipc for core in result.core_results],
    }
    if result.area is not None:
        summary["area_mm2"] = result.area.total_mm2
        summary["area_fraction_of_core"] = result.area.fraction_of_core
        summary["area_components_mm2"] = dict(result.area.components_mm2)
    return summary


class Session:
    """One workload, many designs: build once, run a design grid.

    Args:
        profile: workload profile name (``"oltp_db2"``) or a
            :class:`~repro.workloads.profiles.WorkloadProfile` instance.
        scale: footprint/trace-length scale factor applied to the profile.
        cores: CMP cores to simulate per design.
        instructions_per_core: trace length per core (profile default if
            omitted).
        frontend_config: timing-model overrides shared by all designs.
        trace_seed_base: per-core trace seeds are ``base + core``.
        workers: default process-pool width for :meth:`run` (``None``/1 =
            serial, the deterministic default; results are identical either
            way, parallelism only buys wall-clock).
    """

    def __init__(
        self,
        profile: Union[str, WorkloadProfile] = "oltp_db2",
        scale: float = 1.0,
        cores: int = 16,
        instructions_per_core: Optional[int] = None,
        frontend_config: Optional[FrontendConfig] = None,
        trace_seed_base: int = 100,
        workers: Optional[int] = None,
    ) -> None:
        if isinstance(profile, str):
            profile = get_profile(profile)
        if scale != 1.0:
            profile = profile.scaled(scale)
        self.profile = profile
        self.scale = scale
        self.cores = cores
        self.instructions_per_core = (
            instructions_per_core or profile.recommended_trace_instructions
        )
        self.frontend_config = frontend_config
        self.trace_seed_base = trace_seed_base
        self.workers = workers
        self._program: Optional[SyntheticProgram] = None
        self._cmp: Optional[ChipMultiprocessor] = None

    @property
    def program(self) -> SyntheticProgram:
        """The synthesized workload program (built once, then cached)."""
        if self._program is None:
            self._program = synthesize_program(self.profile)
        return self._program

    @property
    def cmp(self) -> ChipMultiprocessor:
        """The CMP driver behind this session (traces cached inside)."""
        if self._cmp is None:
            self._cmp = ChipMultiprocessor(
                self.program,
                cores=self.cores,
                instructions_per_core=self.instructions_per_core,
                frontend_config=self.frontend_config,
                trace_seed_base=self.trace_seed_base,
                workers=self.workers,
            )
        return self._cmp

    def run(
        self,
        designs: Union[str, DesignSpec, Sequence[Union[str, DesignSpec]]],
        baseline: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> RunReport:
        """Run a set of design points and return a :class:`RunReport`.

        ``designs`` may mix catalog names and ad-hoc :class:`DesignSpec`
        instances.  ``baseline`` names the speedup reference; it defaults to
        ``"baseline"`` when present, else the first design.
        """
        if isinstance(designs, (str, DesignSpec)):
            designs = [designs]
        specs = [resolve_design(design) for design in designs]
        if not specs:
            raise ValueError("no designs given")
        names = [spec.name for spec in specs]
        if baseline is None:
            baseline = "baseline" if "baseline" in names else names[0]
        elif baseline not in names:
            raise ValueError(
                f"baseline {baseline!r} is not among the designs: {', '.join(names)}"
            )

        report = RunReport(
            profile=self.profile.name,
            scale=self.scale,
            cores=self.cores,
            instructions_per_core=self.instructions_per_core,
            baseline=baseline,
            order=names,
        )
        results = {
            spec.name: self.cmp.run_design(spec, workers=workers)
            for spec in specs
        }
        base_ipc = results[baseline].ipc
        for spec in specs:
            summary = _summarize(results[spec.name], spec, self.cores)
            summary["speedup"] = (
                results[spec.name].ipc / base_ipc if base_ipc else 0.0
            )
            report.results[spec.name] = summary
        return report


def run_grid(
    profiles: Iterable[Union[str, WorkloadProfile]],
    designs: Sequence[Union[str, DesignSpec]],
    **session_kwargs,
) -> Dict[str, RunReport]:
    """Run a workload x design grid: one :class:`Session` per profile.

    Any :class:`Session` keyword argument (scale, cores, workers, ...) applies
    to every cell.  Returns ``{profile name: RunReport}``.
    """
    reports: Dict[str, RunReport] = {}
    for profile in profiles:
        session = Session(profile=profile, **session_kwargs)
        reports[session.profile.name] = session.run(designs)
    return reports
