"""High-level experiment API: the :class:`Session` facade and run reports.

One line builds a workload and runs a design grid::

    from repro import Session

    report = Session(profile="oltp_db2", scale=0.25, cores=16).run(
        ["baseline", "confluence"]
    )
    print(report["confluence"]["speedup"])

A :class:`Session` owns one workload: the synthetic program is synthesized
once and memoized per process, and every per-core trace is generated once,
so running many design points amortizes the (comparatively expensive)
workload construction.  Runs execute through :mod:`repro.sweep`: each
(profile, design) grid cell can be fanned out across worker processes with
``workers=N`` (opt-in; the serial default preserves seed determinism, and
the parallel path is bit-identical to it anyway) and served from the
on-disk result cache with ``cache=...`` so an unchanged cell is loaded
instead of re-simulated.

The result is a :class:`RunReport` of plain data — JSON-serializable both
ways — so sweeps can be archived, diffed and post-processed without keeping
simulator objects alive.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.backends.base import DEFAULT_BACKEND, get_backend
from repro.core.cmp import ChipMultiprocessor
from repro.core.designs import DesignSpec, resolve_design
from repro.core.frontend import FrontendConfig
from repro.registry import ensure_unique_names
from repro.resilience import RetryPolicy
from repro.sweep import (
    ResultCache,
    SweepCell,
    SweepOutcome,
    TraceStore,
    cmp_driver,
    run_cells,
    run_sweep,
    workload_program,
)
from repro.workloads.cfg import SyntheticProgram
from repro.workloads.profiles import WorkloadProfile, get_profile
from repro.workloads.scenario import BoundScenario, Scenario, resolve_scenario

__all__ = [
    "SWEEP_REPORT_SCHEMA_VERSION",
    "RunReport",
    "Session",
    "load_reports",
    "reports_from_sweep",
    "run_grid",
    "save_reports",
]

#: Schema of the saved sweep-report files (:func:`save_reports`); bumped
#: whenever their layout changes meaning so ``repro report`` never misreads
#: another build's summaries.
SWEEP_REPORT_SCHEMA_VERSION = 1

#: The ``kind`` tag distinguishing saved sweep reports from the other JSON
#: artifacts the repo writes (bench trajectories, report bundles).
SWEEP_REPORT_KIND = "repro-sweep-reports"


@dataclass
class RunReport:
    """JSON-serializable outcome of one :meth:`Session.run`.

    ``results`` maps design name to a flat summary dict (instructions,
    cycles, ipc, mpki, speedup against ``baseline``, area).  The ``order``
    list preserves the caller's design order for table rendering.
    """

    profile: str
    scale: float
    cores: int
    instructions_per_core: int
    baseline: Optional[str]
    order: List[str] = field(default_factory=list)
    results: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def __getitem__(self, design: str) -> Dict[str, object]:
        return self.results[design]

    def __contains__(self, design: str) -> bool:
        return design in self.results

    @property
    def designs(self) -> List[str]:
        return list(self.order)

    def speedup(self, design: str, baseline: Optional[str] = None) -> float:
        """Speedup of ``design`` over ``baseline`` (the report's by default)."""
        reference = baseline if baseline is not None else self.baseline
        if reference is None:
            raise ValueError("report has no baseline design; pass one explicitly")
        base_ipc = float(self.results[reference]["ipc"])
        if base_ipc == 0:
            return 0.0
        return float(self.results[design]["ipc"]) / base_ipc

    def to_dict(self) -> Dict[str, object]:
        return {
            "profile": self.profile,
            "scale": self.scale,
            "cores": self.cores,
            "instructions_per_core": self.instructions_per_core,
            "baseline": self.baseline,
            "order": list(self.order),
            "results": {name: dict(summary) for name, summary in self.results.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunReport":
        return cls(
            profile=data["profile"],
            scale=data["scale"],
            cores=data["cores"],
            instructions_per_core=data["instructions_per_core"],
            baseline=data["baseline"],
            order=list(data["order"]),
            results={name: dict(summary) for name, summary in data["results"].items()},
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))


def _pick_baseline(names: Sequence[str], baseline: Optional[str]) -> str:
    """The speedup reference: ``"baseline"`` when present, else the first."""
    if baseline is None:
        return "baseline" if "baseline" in names else names[0]
    if baseline not in names:
        raise ValueError(
            f"baseline {baseline!r} is not among the designs: {', '.join(names)}"
        )
    return baseline


def _assemble_report(
    profile: str,
    scale: float,
    cores: int,
    instructions_per_core: int,
    baseline: str,
    names: Sequence[str],
    summaries: Mapping[str, Mapping[str, object]],
) -> RunReport:
    """Fold baseline-independent cell summaries into one :class:`RunReport`."""
    report = RunReport(
        profile=profile,
        scale=scale,
        cores=cores,
        instructions_per_core=instructions_per_core,
        baseline=baseline,
        order=list(names),
    )
    base_ipc = float(summaries[baseline]["ipc"])
    for name in names:
        summary = dict(summaries[name])
        summary["speedup"] = float(summary["ipc"]) / base_ipc if base_ipc else 0.0
        report.results[name] = summary
    return report


class Session:
    """One workload, many designs: build once, run a design grid.

    Args:
        profile: workload profile name (``"oltp_db2"``) or a
            :class:`~repro.workloads.profiles.WorkloadProfile` instance.
        scale: footprint/trace-length scale factor applied to the profile.
        cores: CMP cores to simulate per design.
        instructions_per_core: trace length per core (profile default if
            omitted).
        frontend_config: timing-model overrides shared by all designs.
        trace_seed_base: per-core trace seeds are ``base + core``.
        workers: default process-pool width for :meth:`run` (``None``/1 =
            serial, the deterministic default; results are identical either
            way, parallelism only buys wall-clock).
        cache: on-disk result cache for :meth:`run` cells — ``True`` for the
            default directory (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``), a
            path, or a :class:`repro.sweep.ResultCache`; ``None`` (default)
            disables caching.
        trace_store: on-disk packed-trace artifact store — ``True`` for the
            default directory (``$REPRO_TRACE_DIR`` or ``<cache>/traces``), a
            path, or a :class:`repro.sweep.TraceStore`; ``None`` (default)
            generates traces in-process.  Stored traces are shared by every
            design, run and process touching the same workload parameters.
        scenario: a heterogeneous consolidation instead of one profile — a
            catalog name (``"consolidated_oltp_dss"``), a
            :class:`~repro.workloads.scenario.Scenario` (bound here against
            ``cores``/``scale``/``instructions_per_core``/
            ``trace_seed_base``) or a pre-bound assignment.  When given it
            replaces ``profile``; ``session.profile`` is then ``None`` and
            the report is keyed by the scenario's name.
        backend: simulation backend name for every run (a
            :data:`repro.backends.BACKEND_REGISTRY` entry; default
            ``"scalar"``, the zero-allocation columnar loop).  The name
            joins every cell's cache key, so sessions on different backends
            never share cache entries.
        retry_policy: resilience knobs for every :meth:`run` — bounded
            retry with deterministic backoff, per-cell timeouts and pool
            rebuilds (see :class:`repro.resilience.RetryPolicy` and
            ``docs/resilience.md``).  ``None`` uses the defaults.
    """

    def __init__(
        self,
        profile: Union[str, WorkloadProfile] = "oltp_db2",
        scale: float = 1.0,
        cores: int = 16,
        instructions_per_core: Optional[int] = None,
        frontend_config: Optional[FrontendConfig] = None,
        trace_seed_base: int = 100,
        workers: Optional[int] = None,
        cache: Union[None, bool, str, Path, ResultCache] = None,
        trace_store: Union[None, bool, str, Path, TraceStore] = None,
        scenario: Union[None, str, Scenario, BoundScenario] = None,
        backend: str = DEFAULT_BACKEND,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        # Fail on unknown backend names at construction, not mid-run.
        get_backend(backend)
        if scenario is not None:
            if not isinstance(scenario, BoundScenario):
                scenario = resolve_scenario(scenario).bind(
                    cores=cores,
                    scale=scale,
                    instructions_per_core=instructions_per_core,
                    trace_seed_base=trace_seed_base,
                )
            self.scenario: Optional[BoundScenario] = scenario
            self.profile: Optional[WorkloadProfile] = None
            self.cores = scenario.cores
            self.instructions_per_core = scenario.instructions_per_core
        else:
            if isinstance(profile, str):
                profile = get_profile(profile)
            if scale != 1.0:
                profile = profile.scaled(scale)
            self.scenario = None
            self.profile = profile
            self.cores = cores
            self.instructions_per_core = (
                instructions_per_core or profile.recommended_trace_instructions
            )
        self.scale = scale
        self.backend = backend
        self.frontend_config = frontend_config
        self.trace_seed_base = trace_seed_base
        self.workers = workers
        self.cache = ResultCache.coerce(cache)
        self.trace_store = TraceStore.coerce(trace_store)
        self.retry_policy = retry_policy
        self._program: Optional[SyntheticProgram] = None
        self._cmp: Optional[ChipMultiprocessor] = None

    @property
    def workload(self) -> Union[WorkloadProfile, BoundScenario]:
        """What this session runs: its profile, or its bound scenario."""
        if self.scenario is not None:
            return self.scenario
        return self.profile

    @property
    def workload_name(self) -> str:
        return self.workload.name

    @property
    def program(self) -> SyntheticProgram:
        """The synthesized workload program (built once per process)."""
        if self.scenario is not None:
            raise ValueError(
                "a scenario session spans multiple programs; use "
                "repro.workloads.workload_program(profile) per profile"
            )
        if self._program is None:
            # The sweep engine's per-process memo, so a Session and the cells
            # it schedules share one synthesized program.
            self._program = workload_program(self.profile)
        return self._program

    @property
    def cmp(self) -> ChipMultiprocessor:
        """The CMP driver behind this session (traces cached inside)."""
        if self._cmp is None:
            if self.workers is None:
                # Same memoized driver the session's sweep cells use, so
                # run() and direct cmp access share one trace set.
                self._cmp = cmp_driver(
                    self.workload,
                    self.cores,
                    self.instructions_per_core,
                    self.trace_seed_base,
                    self.frontend_config,
                    trace_store=self.trace_store,
                    backend=self.backend,
                )
            elif self.scenario is not None:
                self._cmp = ChipMultiprocessor(
                    scenario=self.scenario,
                    workers=self.workers,
                    trace_store=self.trace_store,
                    frontend_config=self.frontend_config,
                    trace_seed_base=self.trace_seed_base,
                    backend=self.backend,
                )
            else:
                # A session-level core-parallel default is baked into the
                # driver, which the shared memo must not carry: keep private.
                self._cmp = ChipMultiprocessor(
                    self.program,
                    cores=self.cores,
                    instructions_per_core=self.instructions_per_core,
                    frontend_config=self.frontend_config,
                    trace_seed_base=self.trace_seed_base,
                    workers=self.workers,
                    trace_store=self.trace_store,
                    backend=self.backend,
                )
        return self._cmp

    def run(
        self,
        designs: Union[str, DesignSpec, Sequence[Union[str, DesignSpec]]],
        baseline: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> RunReport:
        """Run a set of design points and return a :class:`RunReport`.

        ``designs`` may mix catalog names and ad-hoc :class:`DesignSpec`
        instances; duplicate design names are rejected (they would silently
        collapse report rows).  ``baseline`` names the speedup reference; it
        defaults to ``"baseline"`` when present, else the first design.
        Cells execute through :mod:`repro.sweep`, so the session's ``cache``
        serves unchanged design points from disk and the session's
        ``retry_policy`` governs fault handling.
        """
        if isinstance(designs, (str, DesignSpec)):
            designs = [designs]
        specs = [resolve_design(design) for design in designs]
        if not specs:
            raise ValueError("no designs given")
        names = [spec.name for spec in specs]
        ensure_unique_names("design", names)
        baseline = _pick_baseline(names, baseline)

        workers = workers if workers is not None else self.workers
        cells = [
            SweepCell(
                profile=self.workload,
                spec=spec,
                cores=self.cores,
                instructions_per_core=self.instructions_per_core,
                trace_seed_base=self.trace_seed_base,
                frontend_config=self.frontend_config,
                backend=self.backend,
            )
            for spec in specs
        ]
        summaries, _ = run_cells(
            cells,
            workers=workers,
            cache=self.cache,
            trace_store=self.trace_store,
            policy=self.retry_policy,
        )
        return _assemble_report(
            profile=self.workload_name,
            scale=self.scale,
            cores=self.cores,
            instructions_per_core=self.instructions_per_core,
            baseline=baseline,
            names=names,
            summaries=dict(zip(names, summaries, strict=True)),
        )


def reports_from_sweep(
    outcome: SweepOutcome, baseline: Optional[str] = None
) -> Dict[str, RunReport]:
    """Fold a :class:`~repro.sweep.SweepOutcome` into per-workload reports.

    One report per grid row — workload profiles first, then scenarios, both
    keyed by name.
    """
    baseline = _pick_baseline(outcome.designs, baseline)
    cell_by_profile = {}
    for cell in outcome.cells:
        cell_by_profile.setdefault(cell.profile.name, cell)
    reports: Dict[str, RunReport] = {}
    for profile_name in outcome.workloads:
        cell = cell_by_profile[profile_name]
        reports[profile_name] = _assemble_report(
            profile=profile_name,
            scale=outcome.scale,
            cores=cell.cores,
            instructions_per_core=cell.instructions_per_core,
            baseline=baseline,
            names=outcome.designs,
            summaries={
                design: outcome.summary(profile_name, design)
                for design in outcome.designs
            },
        )
    return reports


def run_grid(
    profiles: Iterable[Union[str, WorkloadProfile]],
    designs: Sequence[Union[str, DesignSpec]],
    baseline: Optional[str] = None,
    **sweep_kwargs: Any,
) -> Dict[str, RunReport]:
    """Run a workload x design grid through the parallel sweep engine.

    Every (workload, design) cell of the grid — not just the cores inside one
    design point — is a unit of work: ``workers=N`` fans cells out across
    processes and ``cache=...`` serves unchanged cells from the on-disk
    result cache (see :mod:`repro.sweep`).  ``scenarios=[...]`` adds
    heterogeneous consolidation rows (``profiles`` may then be empty); the
    remaining keyword arguments (``scale``, ``cores``,
    ``instructions_per_core``, ``frontend_config``, ``trace_seed_base``,
    ``backend``) apply to every cell.  Returns ``{workload name: RunReport}``, identical
    to running one serial :class:`Session` per workload.
    """
    outcome = run_sweep(profiles, designs, **sweep_kwargs)
    return reports_from_sweep(outcome, baseline=baseline)


def save_reports(
    path: Union[str, Path],
    reports: Mapping[str, RunReport],
    stats: Optional[Mapping[str, int]] = None,
) -> Path:
    """Persist a sweep's :class:`RunReport` set (plus counters) to one file.

    This is the summary-persistence half of the reporting pipeline: a sweep
    that prints tables and exits used to leave nothing behind for
    ``python -m repro report`` to collect.  The file carries a schema and a
    ``kind`` tag, every report as its :meth:`RunReport.to_dict` data, and
    the sweep's :class:`~repro.sweep.SweepStats` counters; the write is
    atomic (temp file + rename) like every store in the repo.  The CLI
    exposes it as ``python -m repro sweep --save-report PATH``.
    """
    path = Path(path)
    payload = {
        "schema": SWEEP_REPORT_SCHEMA_VERSION,
        "kind": SWEEP_REPORT_KIND,
        "reports": {name: report.to_dict() for name, report in reports.items()},
        "stats": dict(stats) if stats is not None else {},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=".tmp-", suffix=".json"
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as tmp:
            json.dump(payload, tmp, indent=2, sort_keys=True)
            tmp.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_reports(
    path: Union[str, Path],
) -> Tuple[Dict[str, RunReport], Dict[str, int]]:
    """Read a :func:`save_reports` file back: ``(reports, stats)``.

    Also accepts the bare ``{"reports": ..., "stats": ...}`` shape that
    ``python -m repro sweep --json`` prints, so a redirected stdout is
    collectable too.  Raises :class:`ValueError` on any other layout or a
    schema this build does not read.
    """
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or not isinstance(payload.get("reports"), dict):
        raise ValueError(f"{path} is not a saved sweep-report file")
    if "schema" in payload and payload["schema"] != SWEEP_REPORT_SCHEMA_VERSION:
        raise ValueError(
            f"{path} uses sweep-report schema {payload['schema']!r} "
            f"(this build reads schema {SWEEP_REPORT_SCHEMA_VERSION})"
        )
    reports = {
        str(name): RunReport.from_dict(data)
        for name, data in payload["reports"].items()
    }
    stats_raw = payload.get("stats", {})
    stats = (
        {str(key): int(value) for key, value in stats_raw.items()}
        if isinstance(stats_raw, dict)
        else {}
    )
    return reports, stats
