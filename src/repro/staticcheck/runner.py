"""Lint driver: parse targets, run rules, apply baseline suppression."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.staticcheck.model import Baseline, Finding, PackageGraph, parse_tree
from repro.staticcheck.registry import RULE_REGISTRY


def parse_target(path: Union[str, Path]) -> PackageGraph:
    """Parse one lint target (package directory, plain directory or file).

    A directory containing an ``__init__.py`` is scanned as a package: its
    directory name seeds the dotted module names (``src/repro`` lints as
    ``repro.*``), which is what lets the wiring and scope rules see the
    same names imports use.
    """
    root = Path(path).resolve()
    prefix = ""
    if root.is_dir() and (root / "__init__.py").exists():
        prefix = root.name
    return parse_tree(root, module_prefix=prefix)


def run_rules(
    package: PackageGraph, rule_ids: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Run the selected rules (default: all registered) over one target."""
    if rule_ids is None:
        rule_ids = RULE_REGISTRY.names()
    findings: List[Finding] = []
    for rule_id in rule_ids:
        findings.extend(RULE_REGISTRY.get(rule_id)(package))
    return findings


def run_lint(
    paths: Iterable[Union[str, Path]],
    *,
    rule_ids: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
) -> List[Finding]:
    """Lint every target and return the surviving findings, sorted.

    ``baseline`` suppresses known findings by fingerprint; sorting is by
    (path, line, rule) so output and ``--json`` payloads are stable across
    runs and platforms.
    """
    findings: List[Finding] = []
    for path in paths:
        findings.extend(run_rules(parse_target(path), rule_ids))
    if baseline is not None:
        findings = [f for f in findings if not baseline.suppresses(f)]
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings
