"""Invariant markers: runtime no-ops that static rules anchor on.

The analyzer works on source, so a marker's only job is to make an
invariant *visible in the AST* at the function that promises it.  At
runtime the decorators do nothing beyond tagging the function object (the
tag lets tests and tools enumerate marked functions without parsing).
"""

from __future__ import annotations

from typing import Callable, TypeVar

_F = TypeVar("_F", bound=Callable[..., object])

#: Attribute set on functions carrying the ``@hot_loop`` promise.
HOT_LOOP_ATTRIBUTE = "__repro_hot_loop__"


def hot_loop(func: _F) -> _F:
    """Declare a function part of the zero-allocation simulation kernel.

    Rule **R001** (:mod:`repro.staticcheck.rules.r001_hot_loop`) enforces the
    promise at analysis time: no object construction, comprehensions,
    closures or other per-iteration allocation inside the function's steady
    state.  For a function containing loops the steady state is its loop
    bodies (hoisting scratch objects into the prelude is exactly the
    discipline the kernel follows); a function without loops is a
    per-iteration leaf called *from* a hot loop, so its entire body is hot.

    The decorator itself is free: it tags and returns the function unchanged
    (no wrapper frame on the hot path).
    """
    setattr(func, HOT_LOOP_ATTRIBUTE, True)
    return func
