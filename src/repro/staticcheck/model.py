"""Data model of the analyzer: parsed modules, findings, baselines.

A lint run parses every module of the target tree once into a
:class:`ParsedModule` (source, AST, inline-suppression map) and hands the
whole :class:`PackageGraph` to each rule — cross-module rules (cache-key
closure, registry wiring) need the global view, single-module rules just
iterate.  Findings are plain data so the CLI can render them as text or
JSON, and a :class:`Baseline` suppresses known findings by a line-number-
independent fingerprint (rule, path, enclosing symbol, message), so
unrelated edits never resurrect a suppressed finding.
"""

from __future__ import annotations

import ast
import contextlib
import io
import json
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

#: Inline suppression comments: ``# staticcheck: allow[R001]`` (or a
#: comma-separated list) on the offending line waives those rules there.
_ALLOW_PREFIX = "staticcheck: allow["

#: Schema version of ``--json`` output and baseline files; bump on layout
#: changes so stale baselines fail loudly instead of silently matching.
LINT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    symbol: str
    message: str

    def fingerprint(self) -> Tuple[str, str, str, str]:
        """Line-number-independent identity used by baseline suppression."""
        return (self.rule, self.path, self.symbol, self.message)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} [{self.symbol}] {self.message}"


def _allow_map(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule IDs waived by an inline allow comment."""
    allowed: Dict[int, Set[str]] = {}
    # The ast parse already succeeded; comments are best-effort.
    with contextlib.suppress(tokenize.TokenError):
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            text = token.string.lstrip("#").strip()
            if not text.startswith(_ALLOW_PREFIX) or not text.endswith("]"):
                continue
            rules = text[len(_ALLOW_PREFIX):-1]
            names = {rule.strip() for rule in rules.split(",") if rule.strip()}
            if names:
                allowed.setdefault(token.start[0], set()).update(names)
    return allowed


@dataclass
class ParsedModule:
    """One parsed source file of the lint target."""

    path: Path
    #: Path relative to the scan root, with ``/`` separators (stable in
    #: findings and baselines across platforms and checkouts).
    relpath: str
    #: Dotted module name relative to the scan root (``repro.core.frontend``
    #: when scanning ``src/repro``; fixture trees get fixture-local names).
    name: str
    source: str
    tree: ast.Module
    allow: Dict[int, Set[str]] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """Dotted name of the package containing this module."""
        if self.name.endswith(".__init__"):
            return self.name.rsplit(".", 1)[0].rpartition(".")[0]
        return self.name.rpartition(".")[0]

    @property
    def is_package_init(self) -> bool:
        return self.path.name == "__init__.py"

    def allows(self, line: int, rule: str) -> bool:
        return rule in self.allow.get(line, ())


def enclosing_symbol(
    module: ParsedModule, node: ast.AST
) -> str:
    """Qualified name of the innermost function/class containing ``node``.

    Computed lazily by walking the tree (modules are small); falls back to
    ``<module>`` for top-level statements.
    """
    target_line = getattr(node, "lineno", None)
    if target_line is None:
        return "<module>"
    best: Optional[Tuple[int, str]] = None

    def visit(scope: ast.AST, prefix: str) -> None:
        nonlocal best
        for child in ast.iter_child_nodes(scope):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                qualname = f"{prefix}{child.name}"
                end = getattr(child, "end_lineno", child.lineno)
                if child.lineno <= target_line <= (end or child.lineno):
                    best = (child.lineno, qualname)
                    visit(child, f"{qualname}.")
            else:
                visit(child, prefix)

    visit(module.tree, "")
    return best[1] if best is not None else "<module>"


@dataclass
class PackageGraph:
    """Every parsed module of one lint target, plus the scan root."""

    root: Path
    modules: List[ParsedModule]

    def __iter__(self) -> Iterator[ParsedModule]:
        return iter(self.modules)

    def module_named(self, name: str) -> Optional[ParsedModule]:
        for module in self.modules:
            if module.name == name:
                return module
        return None

    def package_init(self, package: str) -> Optional[ParsedModule]:
        """The ``__init__`` module of a dotted package name, if scanned."""
        return self.module_named(f"{package}.__init__")


def parse_tree(root: Path, *, module_prefix: str = "") -> PackageGraph:
    """Parse every ``*.py`` under ``root`` (or ``root`` itself for a file).

    ``module_prefix`` seeds the dotted names (``"repro"``-rooted scans pass
    the package name; fixture scans leave it empty).  Files that fail to
    parse raise — a lint run over unparsable source has nothing true to say.
    """
    root = root.resolve()
    if root.is_file():
        paths = [root]
        base = root.parent
    else:
        paths = sorted(root.rglob("*.py"))
        base = root
    modules: List[ParsedModule] = []
    for path in paths:
        if "__pycache__" in path.parts:
            continue
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        relpath = path.relative_to(base).as_posix()
        dotted = relpath[:-3].replace("/", ".")  # strip ".py"
        if module_prefix:
            dotted = f"{module_prefix}.{dotted}" if dotted != "__init__" else (
                f"{module_prefix}.__init__"
            )
        modules.append(
            ParsedModule(
                path=path,
                relpath=relpath,
                name=dotted,
                source=source,
                tree=tree,
                allow=_allow_map(source),
            )
        )
    return PackageGraph(root=root, modules=modules)


class Baseline:
    """Known-finding suppression file (the ratchet for adopting new rules).

    The file is JSON: ``{"schema": 1, "suppressions": [finding dicts]}``.
    Matching is by :meth:`Finding.fingerprint` — line numbers are recorded
    for humans but never matched, so moving code does not resurrect
    suppressed findings.
    """

    def __init__(self, entries: Iterable[Finding] = ()) -> None:
        self._entries: Set[Tuple[str, str, str, str]] = {
            entry.fingerprint() for entry in entries
        }

    def __len__(self) -> int:
        return len(self._entries)

    def suppresses(self, finding: Finding) -> bool:
        return finding.fingerprint() in self._entries

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != LINT_SCHEMA_VERSION
            or not isinstance(payload.get("suppressions"), list)
        ):
            raise ValueError(
                f"not a staticcheck baseline (schema {LINT_SCHEMA_VERSION}): {path}"
            )
        entries = []
        for raw in payload["suppressions"]:
            if not isinstance(raw, dict):
                raise ValueError(f"malformed baseline entry in {path}: {raw!r}")
            entries.append(
                Finding(
                    rule=str(raw.get("rule", "")),
                    path=str(raw.get("path", "")),
                    line=int(raw.get("line", 0)),
                    symbol=str(raw.get("symbol", "")),
                    message=str(raw.get("message", "")),
                )
            )
        return cls(entries)

    @staticmethod
    def dump(findings: Iterable[Finding], path: Path) -> None:
        payload = {
            "schema": LINT_SCHEMA_VERSION,
            "suppressions": [finding.to_dict() for finding in findings],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
