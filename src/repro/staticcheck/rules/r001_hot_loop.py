"""R001 — hot-loop allocation discipline.

Functions marked ``@hot_loop`` (:mod:`repro.staticcheck.markers`) promise
the zero-allocation discipline the packed simulation kernel is built on
(PR 4): the steady state constructs no objects, builds no containers and
defines no closures — scratch objects are hoisted into the prelude and
mutated in place.  The monkeypatch-counting allocation tests proved this at
runtime for the configurations they happened to run; this rule proves it at
analysis time for every code path of every marked function.

Hot region:

* a marked function containing loops is checked inside its loop bodies
  (the prelude may allocate — hoisting is the point of the discipline);
* a marked function without loops is a per-iteration leaf (``lookup_into``,
  ``predict_region_into``) and is checked in full.

Flagged inside the hot region: comprehensions and generator expressions,
``lambda`` and nested ``def`` (closure objects), list/set/dict displays and
non-constant tuple displays, f-strings, calls packing ``*args``/
``**kwargs``, ``setattr`` (dynamic attribute creation), calls to container
constructors (``list``, ``dict``, ``set``, ...) and calls to CamelCase
names (the class-construction heuristic).  Scalar builtins (``int``,
``bool``, ``range``, ``min``...) are free or interned and stay allowed.

Two carve-outs keep the vectorized ``batch`` kernel lintable (PR 8):

* index tuples — a ``Tuple`` serving as a ``Subscript``'s slice
  (``tags[rows, ways]``) parses as a Load-context tuple but performs numpy
  advanced indexing, not a tuple allocation, and is exempt;
* numpy module calls (``np.*``/``numpy.*``) inside the hot region are
  flagged *unless* they pass an ``out=`` keyword — the allow-pattern is a
  buffer preallocated in the prelude and filled in place per iteration
  (``np.equal(a, b, out=buffer)``).  Method calls on arrays are judged by
  the existing heuristics, like any other call.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List

from repro.staticcheck.astutil import (
    call_name,
    decorator_names,
    functions,
    is_constant_tuple,
    last_attr,
)
from repro.staticcheck.model import (
    Finding,
    PackageGraph,
    ParsedModule,
    enclosing_symbol,
)
from repro.staticcheck.registry import RULE_REGISTRY

RULE_ID = "R001"

#: Builtin constructors that always heap-allocate a fresh container.
_CONTAINER_BUILTINS = frozenset(
    {"list", "dict", "set", "tuple", "frozenset", "bytearray", "memoryview",
     "object", "deque", "defaultdict", "Counter", "OrderedDict"}
)

#: Names the numpy module travels under; ``repro._np`` re-exports it as
#: ``np``, and vectorized kernels conventionally alias it the same way.
_NUMPY_MODULES = frozenset({"np", "numpy", "_np"})


def _is_hot_loop_marked(node: ast.FunctionDef) -> bool:
    return any(name == "hot_loop" or name.endswith(".hot_loop")
               for name in decorator_names(node))


def _loops(func: ast.FunctionDef) -> List[ast.AST]:
    return [node for node in ast.walk(func) if isinstance(node, (ast.For, ast.While))]


def _camelcase(name: str) -> bool:
    return bool(name) and name[0].isupper() and not name.isupper()


def _numpy_call_without_out(name: str, node: ast.Call) -> bool:
    """A ``np.*`` call in the hot region allocates a fresh array per
    iteration unless it writes into a preallocated buffer via ``out=``."""
    head, _, rest = name.partition(".")
    if head not in _NUMPY_MODULES or not rest:
        return False
    return not any(keyword.arg == "out" for keyword in node.keywords)


def _check_region(
    module: ParsedModule,
    func: ast.FunctionDef,
    nodes: Iterator[ast.AST],
    symbol: str,
    index_tuples: FrozenSet[int],
) -> Iterator[Finding]:
    for node in nodes:
        message = None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            message = "comprehension builds a fresh container per iteration"
        elif isinstance(node, ast.GeneratorExp):
            message = "generator expression allocates a generator object"
        elif isinstance(node, ast.Lambda):
            message = "lambda allocates a closure object"
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            message = f"nested function {node.name!r} allocates a closure object"
        elif isinstance(node, ast.List):
            message = "list display allocates"
        elif isinstance(node, ast.Set):
            message = "set display allocates"
        elif isinstance(node, ast.Dict):
            message = "dict display allocates"
        elif isinstance(node, ast.Tuple) and not is_constant_tuple(node):
            # Index tuples (a Subscript's slice) are numpy advanced
            # indexing, not a container allocation.
            if isinstance(node.ctx, ast.Load) and id(node) not in index_tuples:
                message = "non-constant tuple display allocates"
        elif isinstance(node, ast.JoinedStr):
            message = "f-string builds strings"
        elif isinstance(node, ast.Call):
            name = call_name(node)
            tail = last_attr(name) if name is not None else None
            if any(isinstance(arg, ast.Starred) for arg in node.args) or any(
                keyword.arg is None for keyword in node.keywords
            ):
                message = "*args/**kwargs call packs a container per call"
            elif tail == "setattr" and name == "setattr":
                message = "setattr creates attributes dynamically"
            elif name in _CONTAINER_BUILTINS:
                message = f"{name}() allocates a container"
            elif name is not None and _numpy_call_without_out(name, node):
                message = (
                    f"{name}() allocates a fresh array per iteration "
                    "(preallocate the buffer in the prelude and pass out=)"
                )
            elif tail is not None and _camelcase(tail):
                message = f"call to {name}() constructs an object"
        if message is None:
            continue
        line = getattr(node, "lineno", func.lineno)
        if module.allows(line, RULE_ID):
            continue
        yield Finding(
            rule=RULE_ID,
            path=module.relpath,
            line=line,
            symbol=symbol,
            message=f"allocation in @hot_loop function: {message}",
        )


@RULE_REGISTRY.register(RULE_ID)
def check_hot_loop_allocations(package: PackageGraph) -> Iterator[Finding]:
    """@hot_loop functions must not allocate in their steady state."""
    for module in package:
        for func in functions(module.tree):
            if not _is_hot_loop_marked(func):
                continue
            loops = _loops(func)
            symbol = enclosing_symbol(module, func)
            hot_nodes: List[ast.AST] = []
            seen = set()
            if loops:
                # Nested loops are already covered by walking the outer
                # body; the id-set keeps each node checked exactly once.
                # A loop's else: clause runs once and counts as prelude.
                regions = [stmt for loop in loops for stmt in loop.body]
            else:
                regions = list(func.body)
            index_tuple_ids = set()
            for stmt in regions:
                for node in ast.walk(stmt):
                    if id(node) not in seen:
                        seen.add(id(node))
                        hot_nodes.append(node)
                    if isinstance(node, ast.Subscript) and isinstance(
                        node.slice, ast.Tuple
                    ):
                        index_tuple_ids.add(id(node.slice))
            yield from _check_region(
                module, func, iter(hot_nodes), symbol, frozenset(index_tuple_ids)
            )
