"""R004 — pickle-boundary safety for mmap-backed buffers.

The trace store hands out ``PackedTrace`` objects whose columns are
``memoryview`` slices of an mmap.  A raw ``memoryview`` cannot pickle, and
an object *holding* one pickles only if it materializes first — which is
exactly what ``PackedTrace.__reduce__`` does.  Shipping an unmaterialized
view into ``ProcessPoolExecutor.submit``/``map`` either crashes at the
pickle boundary or, worse with a custom reducer that forgets the buffers,
silently sends a core an empty trace.

The rule runs a small per-function taint analysis:

* ``memoryview(...)`` is always tainted (no ``__reduce__`` can save it);
* ``X.from_buffers(...)`` is tainted when ``X`` is a class defined in the
  linted package **without** ``__reduce__``/``__reduce_ex__``/
  ``__getstate__`` (``PackedTrace`` defines one, so it passes);
* taint propagates through assignment, tuple/list displays and
  ``.append``/``.extend`` onto local containers;
* any tainted argument reaching an ``executor.submit(...)`` /
  ``executor.map(...)`` call is flagged.

The sanctioned pattern — what :mod:`repro.core.cmp` actually does — is to
ship artifact *paths* (or materialized traces) across the boundary and
reopen the mmap inside the worker.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set, Tuple

from repro.staticcheck.astutil import call_name, functions
from repro.staticcheck.model import (
    Finding,
    PackageGraph,
    enclosing_symbol,
)
from repro.staticcheck.registry import RULE_REGISTRY

RULE_ID = "R004"

_REDUCERS = frozenset({"__reduce__", "__reduce_ex__", "__getstate__"})
_BOUNDARY_METHODS = frozenset({"submit", "map"})


def _classify_classes(package: PackageGraph) -> Tuple[Set[str], Set[str]]:
    """(safe, unsafe) class names: classes with a materializing reducer
    versus buffer-holding classes (a ``from_buffers`` constructor) without
    one."""
    safe: Set[str] = set()
    unsafe: Set[str] = set()
    for module in package:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                stmt.name for stmt in node.body if isinstance(stmt, ast.FunctionDef)
            }
            if methods & _REDUCERS:
                safe.add(node.name)
            elif "from_buffers" in methods:
                unsafe.add(node.name)
    return safe, unsafe


def _buffer_source(node: ast.AST, safe: Set[str], unsafe: Set[str]) -> bool:
    """Does this expression *create* an unpicklable buffer view?"""
    if not isinstance(node, ast.Call):
        return False
    name = call_name(node)
    if name is None:
        return False
    if name == "memoryview":
        return True
    if name.endswith(".from_buffers"):
        owner = name.rsplit(".", 2)[-2]
        return owner in unsafe and owner not in safe
    return False


def _expr_tainted(
    node: ast.AST, tainted: Set[str], safe: Set[str], unsafe: Set[str]
) -> bool:
    if _buffer_source(node, safe, unsafe):
        return True
    if isinstance(node, ast.Name):
        return node.id in tainted
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return any(_expr_tainted(e, tainted, safe, unsafe) for e in node.elts)
    if isinstance(node, ast.Starred):
        return _expr_tainted(node.value, tainted, safe, unsafe)
    return False


def _taint_names(func: ast.FunctionDef, safe: Set[str], unsafe: Set[str]) -> Set[str]:
    """Fixpoint over the function body: names bound to buffer views,
    directly or through assignment/container propagation."""
    tainted: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for node in ast.walk(func):
            targets = ()
            value = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = (node.target,), node.value
            if value is not None and _expr_tainted(value, tainted, safe, unsafe):
                for target in targets:
                    names = [
                        t for t in ast.walk(target) if isinstance(t, ast.Name)
                    ]
                    for name_node in names:
                        if name_node.id not in tainted:
                            tainted.add(name_node.id)
                            changed = True
            # container.append(view) / container.extend([view, ...])
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("append", "extend")
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id not in tainted
                and any(
                    _expr_tainted(arg, tainted, safe, unsafe) for arg in node.args
                )
            ):
                tainted.add(node.func.value.id)
                changed = True
    return tainted


@RULE_REGISTRY.register(RULE_ID)
def check_pickle_boundary(package: PackageGraph) -> Iterator[Finding]:
    """mmap-backed buffers must not cross a process-pool pickle boundary."""
    safe, unsafe = _classify_classes(package)
    for module in package:
        for func in functions(module.tree):
            taint_cache: Dict[int, Set[str]] = {}
            for node in ast.walk(func):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _BOUNDARY_METHODS
                ):
                    continue
                if id(func) not in taint_cache:
                    taint_cache[id(func)] = _taint_names(func, safe, unsafe)
                tainted = taint_cache[id(func)]
                offending = [
                    arg
                    for arg in (*node.args, *(kw.value for kw in node.keywords))
                    if _expr_tainted(arg, tainted, safe, unsafe)
                ]
                for arg in offending:
                    line = getattr(arg, "lineno", node.lineno)
                    if module.allows(line, RULE_ID):
                        continue
                    yield Finding(
                        rule=RULE_ID,
                        path=module.relpath,
                        line=line,
                        symbol=enclosing_symbol(module, node),
                        message=(
                            "mmap-backed buffer crosses the "
                            f".{node.func.attr}() pickle boundary without a "
                            "materializing __reduce__; ship the artifact "
                            "path (or a materialized trace) instead"
                        ),
                    )
