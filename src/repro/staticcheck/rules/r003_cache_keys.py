"""R003 — cache-key closure completeness.

The sweep's result cache is content-addressed: a cell's key must close over
*every* parameter that can change its result.  A dataclass field added to
``DesignSpec`` or ``Scenario`` but left out of the key closure makes two
different experiments collide on one cache entry — the cache silently
serves results for a configuration that was never run.

The rule checks each *tracked* dataclass (``DesignSpec``, ``Scenario``,
``ScenarioEntry``, ``CoreWorkload`` — matched by class name, so fixture
trees defining their own are checked identically):

* a tracked class defining a serialization method (``to_dict`` or ``bind``)
  is held to explicit enumeration: every field name must appear inside that
  method (or a same-module helper it calls by name) as an attribute access,
  keyword argument, string constant or dict key;
* a tracked class without one must be reachable from a ``cell_key``
  closure builder, either by explicit field mentions or through a generic
  flattener that calls ``dataclasses.fields``/``asdict``/``astuple``
  (which covers every field by construction);
* a tracked class with neither surface is flagged outright — nothing keys
  it at all.

``Scenario.description`` is exempt: it is prose about the mix, dealt to no
core and serialized into no trace, so keying on it would only split cache
entries that are bit-identical.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.staticcheck.astutil import call_name, last_attr
from repro.staticcheck.model import Finding, PackageGraph, ParsedModule
from repro.staticcheck.registry import RULE_REGISTRY

RULE_ID = "R003"

#: Dataclass names whose fields must be closed over by cache keys.
TRACKED_DATACLASSES = ("DesignSpec", "Scenario", "ScenarioEntry", "CoreWorkload")

#: Method names that constitute a class's own serialization surface.
_SURFACE_METHODS = frozenset({"to_dict", "bind"})

#: Functions whose presence in the package marks the key-closure builders.
_CLOSURE_BUILDERS = frozenset({"cell_key"})

#: (class, field) pairs exempt from closure coverage, with the reason
#: recorded here rather than in a suppression file: these fields are
#: documentation, not parameters.
EXEMPT_FIELDS = frozenset({("Scenario", "description")})

#: Calls that flatten a dataclass generically — every field is covered.
_GENERIC_FLATTENERS = frozenset({"fields", "asdict", "astuple"})


def _is_dataclass_def(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name == "dataclass":
            return True
    return False


def _field_defs(node: ast.ClassDef) -> List[Tuple[str, int]]:
    """(field name, line) for each annotated class-level assignment."""
    out: List[Tuple[str, int]] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if isinstance(stmt.annotation, ast.Name) and stmt.annotation.id == "ClassVar":
                continue
            if (
                isinstance(stmt.annotation, ast.Subscript)
                and isinstance(stmt.annotation.value, ast.Name)
                and stmt.annotation.value.id == "ClassVar"
            ):
                continue
            out.append((stmt.target.id, stmt.lineno))
    return out


def _module_functions(module: ParsedModule) -> Dict[str, ast.FunctionDef]:
    """Module-level function definitions, by name."""
    return {
        node.name: node
        for node in module.tree.body
        if isinstance(node, ast.FunctionDef)
    }


def _expand_surface(
    module: ParsedModule, roots: List[ast.FunctionDef]
) -> List[ast.FunctionDef]:
    """``roots`` plus same-module helpers they call by bare name,
    transitively (``cell_key`` -> ``_jsonable`` -> ...)."""
    locals_by_name = _module_functions(module)
    surface: List[ast.FunctionDef] = []
    seen: Set[int] = set()
    queue = list(roots)
    while queue:
        func = queue.pop()
        if id(func) in seen:
            continue
        seen.add(id(func))
        surface.append(func)
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                callee = locals_by_name.get(node.func.id)
                if callee is not None and id(callee) not in seen:
                    queue.append(callee)
    return surface


def _mentions(funcs: List[ast.FunctionDef]) -> Set[str]:
    """Names the surface can close over: attribute accesses, keyword
    arguments, string constants and (string) dict keys."""
    names: Set[str] = set()
    for func in funcs:
        for node in ast.walk(func):
            if isinstance(node, ast.Attribute):
                names.add(node.attr)
            elif isinstance(node, ast.keyword) and node.arg is not None:
                names.add(node.arg)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                names.add(node.value)
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        names.add(key.value)
    return names


def _is_generic(funcs: List[ast.FunctionDef]) -> bool:
    for func in funcs:
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name is not None and last_attr(name) in _GENERIC_FLATTENERS:
                    return True
    return False


def _own_surface(
    module: ParsedModule, cls: ast.ClassDef
) -> Optional[List[ast.FunctionDef]]:
    methods = [
        stmt
        for stmt in cls.body
        if isinstance(stmt, ast.FunctionDef) and stmt.name in _SURFACE_METHODS
    ]
    if not methods:
        return None
    return _expand_surface(module, methods)


@RULE_REGISTRY.register(RULE_ID)
def check_cache_key_closure(package: PackageGraph) -> Iterator[Finding]:
    """Every tracked dataclass field must reach the cache-key closure."""
    # The package-wide closure builders (``cell_key`` + helpers), pooled.
    builder_surface: List[ast.FunctionDef] = []
    for module in package:
        roots = [
            func
            for func in _module_functions(module).values()
            if func.name in _CLOSURE_BUILDERS
        ]
        if roots:
            builder_surface.extend(_expand_surface(module, roots))
    builder_mentions = _mentions(builder_surface)
    builder_generic = _is_generic(builder_surface)

    for module in package:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name not in TRACKED_DATACLASSES or not _is_dataclass_def(node):
                continue
            own = _own_surface(module, node)
            if own is not None:
                covered = _mentions(own)
                generic = False
            elif builder_surface:
                covered = builder_mentions
                generic = builder_generic
            else:
                if not module.allows(node.lineno, RULE_ID):
                    yield Finding(
                        rule=RULE_ID,
                        path=module.relpath,
                        line=node.lineno,
                        symbol=node.name,
                        message=(
                            f"tracked dataclass {node.name!r} has no "
                            "to_dict/bind method and no cell_key builder "
                            "reaches it; nothing keys its fields"
                        ),
                    )
                continue
            for field_name, line in _field_defs(node):
                if (node.name, field_name) in EXEMPT_FIELDS:
                    continue
                if generic or field_name in covered:
                    continue
                if module.allows(line, RULE_ID):
                    continue
                where = (
                    f"{node.name}'s own serialization surface "
                    f"({'/'.join(sorted(_SURFACE_METHODS))})"
                    if own is not None
                    else "the cell_key closure"
                )
                yield Finding(
                    rule=RULE_ID,
                    path=module.relpath,
                    line=line,
                    symbol=f"{node.name}.{field_name}",
                    message=(
                        f"dataclass field {field_name!r} never reaches "
                        f"{where}; two specs differing only in it would "
                        "collide on one cache entry"
                    ),
                )
