"""R006 — retry loops must be bounded, with deterministic backoff.

The resilience layer's contract (``docs/resilience.md``) is that fault
handling never trades determinism for liveness: a retry loop that spins
forever can wedge a sweep exactly like the hung worker it was meant to
survive, and randomized backoff jitter makes two runs of the same plan
take different schedules — breaking the bit-identical-recovery guarantee
the chaos suite pins.  This rule extends R002's determinism contract to
the retry/backoff machinery itself.

Scope: modules whose dotted name falls under ``sweep``, ``resilience``,
``faultinject`` or ``retry``.  Within scope the rule flags:

* a ``while`` loop whose test is a truthy constant (``while True:``)
  containing a ``sleep`` call — the signature of an unbounded
  retry-with-backoff loop.  Bound the attempts instead
  (``for attempt in range(policy.retries + 1)``), as
  :func:`repro.sweep._attempt_cell` does;
* an unseeded ``random.*`` call inside a ``sleep`` argument —
  nondeterministic backoff jitter.  Deterministic backoff is a pure
  function of the attempt number (:meth:`repro.resilience.RetryPolicy.
  delay`); decorrelation is unnecessary here because the
  content-addressed stores make duplicated work harmless.
  (``random.Random(seed)`` instances remain the sanctioned pattern,
  exactly as in R002.)
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.staticcheck.astutil import call_name
from repro.staticcheck.model import (
    Finding,
    PackageGraph,
    ParsedModule,
    enclosing_symbol,
)
from repro.staticcheck.registry import RULE_REGISTRY

RULE_ID = "R006"

#: Dotted-name fragments selecting retry/backoff-bearing modules.
_SCOPE_FRAGMENTS = ("sweep", "resilience", "faultinject", "retry")

#: ``random.<fn>`` module-level calls share one *unseeded* global RNG;
#: seedable constructors and re-seeding are allowed (the R002 set).
_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom", "seed"})


def in_scope(module: ParsedModule) -> bool:
    parts = module.name.split(".")
    return any(
        fragment in parts or parts[-1] == fragment
        for fragment in _SCOPE_FRAGMENTS
    )


def _is_sleep_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = call_name(node)
    if name is None:
        return False
    return name == "sleep" or name.endswith(".sleep")


def _constant_truthy(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


def _first_sleep(nodes: Iterator[ast.AST]) -> Optional[ast.Call]:
    for node in nodes:
        if _is_sleep_call(node) and isinstance(node, ast.Call):
            return node
    return None


def _jittered_argument(sleep: ast.Call) -> Optional[str]:
    """The unseeded ``random.*`` callee inside a sleep argument, if any."""
    arguments = list(sleep.args) + [kw.value for kw in sleep.keywords]
    for argument in arguments:
        for node in ast.walk(argument):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if (
                name is not None
                and name.startswith("random.")
                and name.split(".")[1] not in _RANDOM_ALLOWED
            ):
                return name
    return None


@RULE_REGISTRY.register(RULE_ID)
def check_retry_loops(package: PackageGraph) -> Iterator[Finding]:
    """Retry loops must be bounded and back off deterministically."""
    for module in package:
        if not in_scope(module):
            continue
        for node in ast.walk(module.tree):
            # (a) while <constant truthy>: ... sleep(...) — unbounded retry.
            if isinstance(node, ast.While) and _constant_truthy(node.test):
                body_nodes = (
                    walked for child in node.body for walked in ast.walk(child)
                )
                sleep = _first_sleep(body_nodes)
                if sleep is not None:
                    line = sleep.lineno
                    if not module.allows(line, RULE_ID):
                        yield Finding(
                            rule=RULE_ID,
                            path=module.relpath,
                            line=line,
                            symbol=enclosing_symbol(module, sleep),
                            message=(
                                "unbounded retry loop (while True with a "
                                "sleep); bound the attempts, e.g. "
                                "for attempt in range(retries + 1)"
                            ),
                        )
            # (b) sleep(... random.x() ...) — nondeterministic jitter.
            if _is_sleep_call(node) and isinstance(node, ast.Call):
                jitter = _jittered_argument(node)
                if jitter is not None:
                    line = node.lineno
                    if module.allows(line, RULE_ID):
                        continue
                    yield Finding(
                        rule=RULE_ID,
                        path=module.relpath,
                        line=line,
                        symbol=enclosing_symbol(module, node),
                        message=(
                            f"backoff jitter via {jitter}() is "
                            "nondeterministic; backoff must be a pure "
                            "function of the attempt number "
                            "(see RetryPolicy.delay)"
                        ),
                    )
