"""R005 — registry wiring: registered components must be imported.

Components self-register at import time (``@BTB_REGISTRY.register(...)``,
``@PREFETCHER_REGISTRY.register(...)`` — and this package's own
``@RULE_REGISTRY.register``).  The contract that makes "registration" mean
"availability" is that each package's ``__init__`` imports every module
that registers something; a module left out of the ``__init__`` defines a
component that exists on disk but never appears in the registry, and the
failure mode is an unknown-name error naming a component that is plainly
right there in the source tree.

The rule flags any module containing a registration decorator — a
``*_REGISTRY.register`` attribute or a bare ``register_*`` name — whose
package ``__init__`` (when it is part of the scan) does not import it,
directly (``import pkg.mod``, ``from pkg import mod``, ``from .mod import
X``) or by symbol (``from pkg.mod import X``).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.staticcheck.astutil import decorator_names
from repro.staticcheck.model import Finding, PackageGraph, ParsedModule
from repro.staticcheck.registry import RULE_REGISTRY

RULE_ID = "R005"


def _is_registration_decorator(name: str) -> bool:
    parts = name.split(".")
    if parts[-1].startswith("register_"):
        return True
    return (
        len(parts) >= 2
        and parts[-1] == "register"
        and "REGISTRY" in parts[-2].upper()
    )


def _registration_line(module: ParsedModule) -> int:
    """Line of the first registration decorator, or 0 when there is none."""
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if any(_is_registration_decorator(name) for name in decorator_names(node)):
            return node.lineno
    return 0


def _imported_modules(init: ParsedModule) -> Set[str]:
    """Dotted module names the ``__init__`` imports, relative imports
    resolved against its package."""
    # ``repro.branch.__init__`` resolves level-1 imports against
    # ``repro.branch``.
    own_package = init.name.rsplit(".", 1)[0]
    imported: Set[str] = set()
    for node in ast.walk(init.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imported.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                parts = own_package.split(".")
                if node.level - 1 >= len(parts):
                    continue
                kept = parts[: len(parts) - (node.level - 1)]
                base = ".".join(kept)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            if base:
                imported.add(base)
            for alias in node.names:
                if base:
                    imported.add(f"{base}.{alias.name}")
                else:
                    imported.add(alias.name)
    return imported


@RULE_REGISTRY.register(RULE_ID)
def check_registry_wiring(package: PackageGraph) -> Iterator[Finding]:
    """Modules registering components must be imported by their package."""
    for module in package:
        if module.is_package_init:
            continue
        line = _registration_line(module)
        if line == 0:
            continue
        init = package.package_init(module.package)
        if init is None:
            # Top-level module or package scanned without its __init__;
            # there is no wiring contract to check.
            continue
        if module.name in _imported_modules(init):
            continue
        if module.allows(line, RULE_ID):
            continue
        yield Finding(
            rule=RULE_ID,
            path=module.relpath,
            line=line,
            symbol=module.name,
            message=(
                f"module registers components but {init.relpath} never "
                "imports it; its registrations are unreachable"
            ),
        )
