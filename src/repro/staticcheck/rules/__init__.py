"""Built-in invariant rules.

Each module registers one rule with :data:`~repro.staticcheck.registry.
RULE_REGISTRY` at import time; this ``__init__`` imports every rule module
so importing the package is enough to populate the registry — the same
wiring contract rule **R005** enforces on the simulator's component
packages (and, since this package registers components too, on itself).
"""

from repro.staticcheck.rules import (  # noqa: F401  (imported for registration)
    r001_hot_loop,
    r002_determinism,
    r003_cache_keys,
    r004_pickle_boundary,
    r005_registry_wiring,
    r006_retry_loops,
)

__all__ = [
    "r001_hot_loop",
    "r002_determinism",
    "r003_cache_keys",
    "r004_pickle_boundary",
    "r005_registry_wiring",
    "r006_retry_loops",
]
