"""R002 — determinism of trace generation, seed dealing and cache keys.

Confluence replays must be bit-exact: every trace, seed deal and cache key
is a pure function of its declared parameters.  One unseeded RNG, wall
clock read, ``id()`` or set-order iteration in that path silently corrupts
a trajectory — and only shows up thousands of cells later, if ever.

Scope: modules whose dotted name falls under ``*.workloads`` (program
synthesis, trace generation, scenario seed dealing) and modules named
``sweep`` (cache-key construction).  Within scope the rule flags:

* unseeded module-level RNG calls — ``random.random()``, ``random.
  randint`` etc. (``random.Random(seed)`` instances are the sanctioned
  pattern and stay allowed),
* wall-clock and entropy sources: ``time.time``/``time_ns``/``monotonic``/
  ``perf_counter``, ``datetime.now``/``utcnow``/``today``, ``os.urandom``,
  ``uuid.uuid1``/``uuid4``, ``secrets.*``,
* ``id()`` — CPython addresses differ run to run,
* ``hash()`` — salted per process for str/bytes (PYTHONHASHSEED),
* iteration over a set expression (``for x in {...}`` / ``set(...)`` /
  a set comprehension) — set order is hash-order, i.e. run order,
* unsorted directory listings: ``os.listdir`` / ``Path.iterdir`` /
  ``glob.glob`` results are filesystem-order unless wrapped in
  ``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.staticcheck.astutil import call_name
from repro.staticcheck.model import (
    Finding,
    PackageGraph,
    ParsedModule,
    enclosing_symbol,
)
from repro.staticcheck.registry import RULE_REGISTRY

RULE_ID = "R002"

#: Dotted-name fragments selecting determinism-critical modules.
_SCOPE_FRAGMENTS = ("workloads", "sweep")

#: Exact dotted callee names that are nondeterministic, with the reason.
_BANNED_CALLS = {
    "time.time": "wall clock",
    "time.time_ns": "wall clock",
    "time.monotonic": "process-relative clock",
    "time.perf_counter": "process-relative clock",
    "datetime.now": "wall clock",
    "datetime.datetime.now": "wall clock",
    "datetime.utcnow": "wall clock",
    "datetime.datetime.utcnow": "wall clock",
    "date.today": "wall clock",
    "datetime.date.today": "wall clock",
    "os.urandom": "OS entropy",
    "uuid.uuid1": "host/time-derived UUID",
    "uuid.uuid4": "OS entropy",
    "id": "CPython object address, differs run to run",
    "hash": "salted per process for str/bytes (PYTHONHASHSEED)",
}

#: ``random.<fn>`` module-level calls share one *unseeded* global RNG.
#: ``random.Random`` (seedable instance) and ``random.seed`` are allowed.
_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom", "seed"})

#: Callables returning filesystem-order listings (must be ``sorted(...)``).
_FS_ORDER_CALLS = {
    "os.listdir": "os.listdir",
    "os.scandir": "os.scandir",
    "glob.glob": "glob.glob",
    "glob.iglob": "glob.iglob",
}
_FS_ORDER_METHODS = frozenset({"iterdir", "glob", "rglob"})


def in_scope(module: ParsedModule) -> bool:
    parts = module.name.split(".")
    return any(
        fragment in parts or parts[-1] == fragment
        for fragment in _SCOPE_FRAGMENTS
    )


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        return name in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
    ):
        # ``a & b`` etc. over sets; only flag when an operand is visibly a set.
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


def _violation(node: ast.AST, parent_sorted: bool) -> Optional[Tuple[str, ast.AST]]:
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name is None:
            return None
        reason = _BANNED_CALLS.get(name)
        if reason is not None:
            return (f"{name}() is nondeterministic ({reason})", node)
        if name.startswith("random.") and name.split(".")[1] not in _RANDOM_ALLOWED:
            return (
                f"{name}() draws from the unseeded global RNG; "
                "use a seeded random.Random instance",
                node,
            )
        if name.startswith("secrets."):
            return (f"{name}() draws OS entropy", node)
        if not parent_sorted:
            fs_name = _FS_ORDER_CALLS.get(name)
            if fs_name is not None:
                return (
                    f"{fs_name}() yields filesystem order; wrap in sorted(...)",
                    node,
                )
            tail = name.rpartition(".")[2]
            if "." in name and tail in _FS_ORDER_METHODS:
                return (
                    f".{tail}() yields filesystem order; wrap in sorted(...)",
                    node,
                )
    return None


@RULE_REGISTRY.register(RULE_ID)
def check_determinism(package: PackageGraph) -> Iterator[Finding]:
    """Trace/seed/cache-key code must be a pure function of its inputs."""
    for module in package:
        if not in_scope(module):
            continue
        sorted_wrapped = set()
        for node in ast.walk(module.tree):
            # Record call nodes whose result is immediately ordered.
            if isinstance(node, ast.Call) and call_name(node) in ("sorted", "list"):
                for arg in node.args:
                    if isinstance(arg, ast.Call):
                        sorted_wrapped.add(id(arg))
            # Set-order iteration: for-loops and comprehension generators.
            iter_exprs = []
            if isinstance(node, ast.For):
                iter_exprs.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iter_exprs.extend(gen.iter for gen in node.generators)
            for expr in iter_exprs:
                if _is_set_expression(expr):
                    line = getattr(expr, "lineno", getattr(node, "lineno", 1))
                    if module.allows(line, RULE_ID):
                        continue
                    yield Finding(
                        rule=RULE_ID,
                        path=module.relpath,
                        line=line,
                        symbol=enclosing_symbol(module, node),
                        message=(
                            "iteration over a set is hash-order "
                            "(run-dependent); sort it first"
                        ),
                    )
        for node in ast.walk(module.tree):
            found = _violation(node, parent_sorted=id(node) in sorted_wrapped)
            if found is None:
                continue
            message, site = found
            line = getattr(site, "lineno", 1)
            if module.allows(line, RULE_ID):
                continue
            yield Finding(
                rule=RULE_ID,
                path=module.relpath,
                line=line,
                symbol=enclosing_symbol(module, site),
                message=message,
            )
