"""Plugin registry for lint rules, mirroring :mod:`repro.registry`.

Rules self-register at import time with a decorator, exactly like BTB and
prefetcher factories do::

    from repro.staticcheck.registry import RULE_REGISTRY

    @RULE_REGISTRY.register("R101")
    def check_my_invariant(package: PackageGraph) -> Iterator[Finding]:
        ...

A rule is a callable taking the :class:`~repro.staticcheck.model.
PackageGraph` of one lint target and yielding
:class:`~repro.staticcheck.model.Finding` objects.  Built-in rules live in
:mod:`repro.staticcheck.rules`; user code can register more without
touching this package (rule IDs outside ``R0xx`` are reserved for
extensions).
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict, Iterator, List, Optional

from repro.staticcheck.model import Finding, PackageGraph
from repro.registry import unknown_name_error

#: A rule inspects one parsed tree and yields its findings.
LintRule = Callable[[PackageGraph], Iterator[Finding]]


class RuleRegistry:
    """Rule ID -> rule mapping with decorator-based registration."""

    def __init__(self) -> None:
        self._rules: Dict[str, LintRule] = {}
        self._descriptions: Dict[str, str] = {}

    def register(
        self,
        rule_id: str,
        rule: Optional[LintRule] = None,
        *,
        overwrite: bool = False,
    ) -> Callable[[LintRule], LintRule]:
        """Register ``rule`` under ``rule_id``; usable as a decorator.

        The rule's docstring first line becomes its catalog description.
        """
        if rule is None:

            def decorator(func: LintRule) -> LintRule:
                self.register(rule_id, func, overwrite=overwrite)
                return func

            return decorator
        if not overwrite and rule_id in self._rules:
            raise ValueError(
                f"lint rule {rule_id!r} is already registered; "
                "pass overwrite=True to replace it"
            )
        self._rules[rule_id] = rule
        doc = (rule.__doc__ or "").strip().splitlines()
        self._descriptions[rule_id] = doc[0] if doc else ""

        def identity(func: LintRule) -> LintRule:
            return func

        return identity

    def unregister(self, rule_id: str) -> None:
        """Remove a registration (tests and plugin teardown)."""
        self._rules.pop(rule_id, None)
        self._descriptions.pop(rule_id, None)

    def get(self, rule_id: str) -> LintRule:
        """Resolve ``rule_id``, loading the built-in rules on first miss."""
        try:
            return self._rules[rule_id]
        except KeyError:
            load_builtin_rules()
        try:
            return self._rules[rule_id]
        except KeyError:
            raise unknown_name_error("lint rule", rule_id, self._rules) from None

    def describe(self, rule_id: str) -> str:
        self.get(rule_id)  # ensure built-ins are loaded
        return self._descriptions.get(rule_id, "")

    def __contains__(self, rule_id: str) -> bool:
        if rule_id not in self._rules:
            load_builtin_rules()
        return rule_id in self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def names(self) -> List[str]:
        load_builtin_rules()
        return sorted(self._rules)


#: The rule registry (``RULE_REGISTRY.register(...)`` is the extension
#: point, like ``BTB_REGISTRY`` / ``PREFETCHER_REGISTRY``).
RULE_REGISTRY = RuleRegistry()

_builtins_loaded = False


def load_builtin_rules() -> None:
    """Import :mod:`repro.staticcheck.rules` so its rules register."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    importlib.import_module("repro.staticcheck.rules")
