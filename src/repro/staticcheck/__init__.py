"""repro.staticcheck — AST-based invariant checker suite.

The simulator's correctness rests on contracts no unit test can pin for
every code path: the packed kernel allocates nothing in its steady state
(PR 4), traces and cache keys are pure functions of their parameters
(PR 3/5), mmap-backed buffers never cross pickle boundaries raw, and
registered components are actually imported.  This package enforces those
contracts at analysis time, over source, with a plugin rule registry that
mirrors :mod:`repro.registry`:

=====  ===========================================================
rule   invariant
=====  ===========================================================
R001   ``@hot_loop`` functions allocate nothing in the steady state
R002   trace/seed/cache-key code is deterministic
R003   tracked dataclass fields reach the cache-key closure
R004   mmap buffers don't cross pickle boundaries unmaterialized
R005   registering modules are imported by their package __init__
=====  ===========================================================

Run it as ``python -m repro lint`` (``--json`` for machine-readable
output, ``--baseline`` to ratchet), or programmatically::

    from repro.staticcheck import run_lint
    findings = run_lint(["src/repro"])

Custom rules register like any other component::

    from repro.staticcheck import RULE_REGISTRY

    @RULE_REGISTRY.register("R101")
    def check_my_invariant(package):
        ...
"""

from repro.staticcheck.markers import HOT_LOOP_ATTRIBUTE, hot_loop
from repro.staticcheck.model import (
    LINT_SCHEMA_VERSION,
    Baseline,
    Finding,
    PackageGraph,
    ParsedModule,
    enclosing_symbol,
    parse_tree,
)
from repro.staticcheck.registry import (
    RULE_REGISTRY,
    LintRule,
    RuleRegistry,
    load_builtin_rules,
)
from repro.staticcheck.runner import parse_target, run_lint, run_rules

__all__ = [
    "HOT_LOOP_ATTRIBUTE",
    "LINT_SCHEMA_VERSION",
    "Baseline",
    "Finding",
    "LintRule",
    "PackageGraph",
    "ParsedModule",
    "RULE_REGISTRY",
    "RuleRegistry",
    "enclosing_symbol",
    "hot_loop",
    "load_builtin_rules",
    "parse_target",
    "parse_tree",
    "run_lint",
    "run_rules",
]
