"""Small AST helpers shared by the lint rules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> Optional[str]:
    """Dotted name of a call's callee (``None`` for computed callees)."""
    return dotted_name(call.func)


def last_attr(name: str) -> str:
    """The final component of a dotted name (``a.b.c`` -> ``c``)."""
    return name.rpartition(".")[2]


def decorator_names(node: ast.AST) -> Iterator[str]:
    """Dotted names of a function/class decorator list, calls unwrapped.

    ``@hot_loop``, ``@staticcheck.hot_loop`` and
    ``@BTB_REGISTRY.register("x")`` yield ``hot_loop``, ``staticcheck.
    hot_loop`` and ``BTB_REGISTRY.register`` respectively.
    """
    for decorator in getattr(node, "decorator_list", ()):
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name is not None:
            yield name


def functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    """Every (sync) function definition in the tree, any nesting depth."""
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            yield node


def is_constant_tuple(node: ast.AST) -> bool:
    """A tuple display of constants only (compiled to a constant, no
    runtime allocation)."""
    return isinstance(node, ast.Tuple) and all(
        isinstance(element, ast.Constant) for element in node.elts
    )
