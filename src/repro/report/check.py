"""The CI perf-regression gate: newest trajectory point vs a baseline.

``python -m repro bench --compare`` gates a *fresh in-process run* against a
recorded point, per design.  This module gates **recorded evidence**: the
newest collected trajectory point against the chosen baseline point, **per
backend** — the per-backend table is what a throughput regression actually
shows up in (a design row can drift with workload tweaks; a backend losing
half its regions/sec is a kernel regression).  ``python -m repro report
--check --tolerance X`` exposes it on the command line and CI fails on it,
replacing the bench ``--compare`` smoke check as the regression gate.

Semantics: for every backend the two points share, the newest point's
regions/sec must be at least ``tolerance`` times the baseline's.  No shared
backend, no baseline, or a nonsensical tolerance all raise — a gate that
cannot run must fail loudly, never pass vacuously.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.perfbench import point_backend_rps
from repro.report.bundle import ReportBundle

__all__ = ["check_bundle", "format_check", "regression_rows"]


def regression_rows(
    newest: Mapping[str, object],
    baseline: Mapping[str, object],
    tolerance: float,
) -> List[Dict[str, object]]:
    """Per-backend comparison of two normalized trajectory points.

    Returns one row per shared backend: ``{"backend", "regions_per_sec",
    "baseline_regions_per_sec", "ratio", "ok"}``, sorted by backend name.
    ``ok`` is ``ratio >= tolerance``.  Raises :class:`ValueError` when the
    tolerance is not positive or the points share no measured backend.
    """
    if not tolerance > 0:
        raise ValueError("tolerance must be positive")
    fresh = point_backend_rps(newest)
    recorded = point_backend_rps(baseline)
    shared = sorted(name for name in fresh if name in recorded)
    if not shared:
        raise ValueError(
            "no shared backends between the newest point "
            f"({', '.join(sorted(fresh)) or 'none'}) and the baseline "
            f"({', '.join(sorted(recorded)) or 'none'})"
        )
    rows: List[Dict[str, object]] = []
    for name in shared:
        ratio = fresh[name] / recorded[name] if recorded[name] else 0.0
        rows.append({
            "backend": name,
            "regions_per_sec": fresh[name],
            "baseline_regions_per_sec": recorded[name],
            "ratio": ratio,
            "ok": ratio >= tolerance,
        })
    return rows


def check_bundle(
    bundle: ReportBundle, tolerance: float
) -> List[Dict[str, object]]:
    """Run the regression gate over a collected bundle.

    Raises :class:`ValueError` when the bundle has no trajectory point to
    check or no baseline was resolved (a single-point trajectory with no
    explicit ``--baseline``) — the conditions under which "pass" would be
    meaningless.
    """
    newest = bundle.newest_point
    if newest is None:
        raise ValueError("no trajectory points were collected; nothing to check")
    if bundle.baseline is None:
        raise ValueError(
            "no baseline to check against: the collected trajectory has a "
            "single point — pass --baseline PATH (e.g. the committed "
            "BENCH_kernel.json) or collect a trajectory with history"
        )
    return regression_rows(newest, bundle.baseline, tolerance)


def format_check(
    rows: Sequence[Mapping[str, object]],
    tolerance: float,
    baseline_source: Optional[str] = None,
) -> str:
    """Human-readable rendering of a :func:`check_bundle` result."""
    against = f" against {baseline_source}" if baseline_source else ""
    lines = [
        f"per-backend regions/sec vs baseline{against} (tolerance {tolerance:.2f}x):"
    ]
    for row in rows:
        verdict = "ok" if row["ok"] else "REGRESSED"
        lines.append(
            "  {backend:>10}: {regions_per_sec:>12,.0f} regions/s vs "
            "{baseline_regions_per_sec:>12,.0f} baseline "
            "({ratio:.2f}x) {verdict}".format(verdict=verdict, **row)
        )
    return "\n".join(lines)
