"""The :class:`ReportBundle`: one normalized, versioned unit of evidence.

Everything the reporting pipeline renders — bench trajectory points, sweep
:class:`~repro.api.RunReport` summaries, resilience counters — is first
folded into a *bundle*: a plain-JSON document with a schema version, so
reports can be archived, diffed, re-rendered by later builds and shipped
between machines without the simulator present.

Bundles follow the repository's artifact contract end to end:

* **Content-addressed persistence.** :meth:`ReportBundle.save` writes the
  bundle under ``$REPRO_REPORT_DIR`` (default ``<cache dir>/reports``) named
  by the SHA-256 of its canonical JSON, so identical evidence maps to one
  file and re-collecting an unchanged run rewrites nothing.
* **Checksummed loads.** Every saved bundle embeds a checksum of its
  payload; :func:`load_bundle` verifies it and **quarantines** unreadable,
  structurally wrong or checksum-mismatched files to ``*.corrupt`` with a
  :class:`~repro.sweep.CorruptArtifactWarning` — the same corrupt-vs-absent
  discipline the result cache and trace store follow (a missing file raises
  :class:`FileNotFoundError`; a corrupt one warns, moves aside and returns
  ``None``, never crashes a report build).
* **Versioned schema.** :data:`REPORT_SCHEMA_VERSION` gates loads; a bundle
  written by another build's layout is refused loudly instead of being
  half-read (``docs/report.md`` documents the layout field by field).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from repro.sweep import CorruptArtifactWarning, default_cache_dir

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "BUNDLE_KIND",
    "ReportBundle",
    "bundle_checksum",
    "default_report_dir",
    "load_bundle",
]

#: Bumped whenever the bundle layout changes meaning; :func:`load_bundle`
#: refuses other versions instead of misreading them.
REPORT_SCHEMA_VERSION = 1

#: The ``kind`` tag distinguishing bundles from every other JSON artifact
#: the repo writes (trajectories, cache entries, saved sweep reports).
BUNDLE_KIND = "repro-report-bundle"


def default_report_dir() -> Path:
    """``$REPRO_REPORT_DIR`` when set, else ``<cache dir>/reports``."""
    override = os.environ.get("REPRO_REPORT_DIR")
    if override:
        return Path(override)
    return default_cache_dir() / "reports"


def bundle_checksum(payload: Mapping[str, object]) -> str:
    """Integrity checksum of a bundle payload (stable across JSON round-trips).

    Same canonical-JSON construction as the result cache's entry checksum:
    sorted keys, minimal separators, SHA-256 truncated to 16 hex digits.
    """
    canonical = json.dumps(dict(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass
class ReportBundle:
    """Normalized evidence for one report: trajectory + sweeps + resilience.

    Attributes:
        title: human heading for the rendered report.
        trajectory: bench trajectory points, oldest first, every point
            migrated to the schema-2+ field vocabulary
            (:func:`repro.perfbench.migrate_trajectory_point`) so renderers
            and the regression gate never see retired field names.
        trajectory_sources: the trajectory files the points came from.
        sweeps: one entry per collected sweep-report file:
            ``{"source": str, "reports": {workload: RunReport dict},
            "stats": {counter: int}}``.
        resilience: the sweep resilience counters summed across ``sweeps``
            plus any journal-directory scan
            (:func:`repro.report.collect.summarize_journals`).
        baseline: the chosen regression-baseline trajectory point
            (normalized like ``trajectory``), or ``None`` when no baseline
            could be determined — the regression gate then refuses to run
            rather than silently passing.
        baseline_source: where the baseline came from, for the rendered
            provenance line.
    """

    title: str = "repro report"
    trajectory: List[Dict[str, object]] = field(default_factory=list)
    trajectory_sources: List[str] = field(default_factory=list)
    sweeps: List[Dict[str, object]] = field(default_factory=list)
    resilience: Dict[str, int] = field(default_factory=dict)
    baseline: Optional[Dict[str, object]] = None
    baseline_source: Optional[str] = None

    @property
    def newest_point(self) -> Optional[Dict[str, object]]:
        """The latest collected trajectory point (what the gate checks)."""
        return self.trajectory[-1] if self.trajectory else None

    def to_dict(self) -> Dict[str, object]:
        """The bundle as plain JSON data (schema + kind tags included)."""
        return {
            "schema": REPORT_SCHEMA_VERSION,
            "kind": BUNDLE_KIND,
            "title": self.title,
            "trajectory": [dict(point) for point in self.trajectory],
            "trajectory_sources": list(self.trajectory_sources),
            "sweeps": [dict(sweep) for sweep in self.sweeps],
            "resilience": dict(self.resilience),
            "baseline": dict(self.baseline) if self.baseline is not None else None,
            "baseline_source": self.baseline_source,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ReportBundle":
        """Rebuild a bundle from :meth:`to_dict` data (schema-checked)."""
        if payload.get("kind") != BUNDLE_KIND:
            raise ValueError(f"not a report bundle (kind={payload.get('kind')!r})")
        if payload.get("schema") != REPORT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported report bundle schema {payload.get('schema')!r} "
                f"(this build reads schema {REPORT_SCHEMA_VERSION})"
            )
        baseline = payload.get("baseline")
        return cls(
            title=str(payload.get("title", "repro report")),
            trajectory=[dict(point) for point in payload.get("trajectory", [])],  # type: ignore[union-attr]
            trajectory_sources=[str(s) for s in payload.get("trajectory_sources", [])],  # type: ignore[union-attr]
            sweeps=[dict(sweep) for sweep in payload.get("sweeps", [])],  # type: ignore[union-attr]
            resilience={
                str(k): int(v)  # type: ignore[call-overload]
                for k, v in dict(payload.get("resilience", {})).items()  # type: ignore[call-overload]
            },
            baseline=dict(baseline) if isinstance(baseline, Mapping) else None,
            baseline_source=(
                str(payload["baseline_source"])
                if payload.get("baseline_source") is not None
                else None
            ),
        )

    def save(self, directory: Union[str, Path, None] = None) -> Path:
        """Persist the bundle content-addressed under ``directory``.

        The file name is the SHA-256 of the canonical payload (so identical
        evidence is one file) and the write is atomic (temp file + rename),
        the idiom of every store in the repo.  Returns the bundle's path.
        """
        target_dir = Path(directory) if directory is not None else default_report_dir()
        target_dir.mkdir(parents=True, exist_ok=True)
        payload = self.to_dict()
        checksum = bundle_checksum(payload)
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
        ).hexdigest()
        document = {"checksum": checksum, "payload": payload}
        path = target_dir / f"{digest}.bundle.json"
        handle, tmp_name = tempfile.mkstemp(
            dir=target_dir, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                json.dump(document, tmp, indent=2, sort_keys=True)
                tmp.write("\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path


def _quarantine(path: Path, reason: str) -> None:
    """Move a corrupt bundle aside and warn — the stores' shared discipline."""
    target = path.with_name(path.name + ".corrupt")
    moved: Optional[Path]
    try:
        os.replace(path, target)
        moved = target
    except OSError:
        moved = None
    where = f" (moved to {moved.name})" if moved is not None else ""
    warnings.warn(
        f"quarantined corrupt report bundle {path.name}: {reason}{where}",
        CorruptArtifactWarning,
        stacklevel=3,
    )


def load_bundle(path: Union[str, Path]) -> Optional[ReportBundle]:
    """Load a saved bundle, verifying its checksum.

    A missing file raises :class:`FileNotFoundError` (the caller named a
    path that is not there — that is an error, not corruption).  An
    unreadable, structurally wrong or checksum-mismatched file is
    quarantined to ``*.corrupt`` with a
    :class:`~repro.sweep.CorruptArtifactWarning` and reported as ``None``,
    so a flaky disk degrades a report to "re-collect the bundle" instead of
    crashing the build.
    """
    path = Path(path)
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except FileNotFoundError:
        raise
    except (OSError, ValueError) as error:
        _quarantine(path, f"unreadable bundle ({type(error).__name__})")
        return None
    if not isinstance(document, dict):
        _quarantine(path, "bundle is not a JSON object")
        return None
    payload = document.get("payload")
    if (
        not isinstance(payload, dict)
        or document.get("checksum") != bundle_checksum(payload)
    ):
        _quarantine(path, "bundle failed its checksum")
        return None
    try:
        return ReportBundle.from_dict(payload)
    except ValueError as error:
        _quarantine(path, str(error))
        return None
