"""Reporting pipeline: collect recorded evidence, render it, gate on it.

The subsystem behind ``python -m repro report`` (see ``docs/report.md``):

* :mod:`repro.report.bundle` — the versioned, content-addressed
  :class:`ReportBundle` that normalizes every input into one JSON payload.
* :mod:`repro.report.collect` — gathers ``BENCH_*.json`` trajectories (all
  schema versions, via the bench migration), saved sweep/scenario reports,
  and run-journal resilience counters into a bundle.
* :mod:`repro.report.render` — the pluggable renderer registry with the
  built-in self-contained HTML and CI-postable markdown renderers.
* :mod:`repro.report.check` — the per-backend perf-regression gate CI
  fails on (``repro report --check --tolerance X``).
* :mod:`repro.report.svg` — stdlib-only inline SVG charts for the HTML
  renderer.

Like every registry-backed package in the repo, importing this package
imports the modules that register components, so the renderer catalog is
complete after ``import repro.report``.
"""

from repro.report import render as _render_module  # registers html/md renderers
from repro.report.bundle import (
    BUNDLE_KIND,
    REPORT_SCHEMA_VERSION,
    ReportBundle,
    bundle_checksum,
    default_report_dir,
    load_bundle,
)
from repro.report.check import check_bundle, format_check, regression_rows
from repro.report.collect import collect_bundle, summarize_journals
from repro.report.render import (
    RENDERER_REGISTRY,
    render_bundle,
    render_html,
    render_markdown,
    renderer_names,
)

del _render_module

__all__ = [
    "BUNDLE_KIND",
    "REPORT_SCHEMA_VERSION",
    "RENDERER_REGISTRY",
    "ReportBundle",
    "bundle_checksum",
    "check_bundle",
    "collect_bundle",
    "default_report_dir",
    "format_check",
    "load_bundle",
    "regression_rows",
    "render_bundle",
    "render_html",
    "render_markdown",
    "renderer_names",
    "summarize_journals",
]
