"""Report renderers: one :class:`ReportBundle`, several output formats.

Renderers are pluggable the way every other extension point in the repo is:
a :class:`~repro.registry.Registry` maps a format name to a callable
``(bundle, tolerance) -> str``.  Two are built in —

* ``html`` — a **self-contained** static page: inline CSS, inline SVG
  charts (:mod:`repro.report.svg`), zero scripts, zero external assets.
  Sections: the perf trajectory (regions/sec trend per backend), the
  per-design/per-backend throughput of the newest point, the regression
  deltas against the chosen baseline, one comparison table per swept
  workload, the scenario×design speedup matrix, per-profile MPKI/IPC
  breakdowns (the paper's consolidation story), and the resilience
  counters.
* ``md`` — the same tables as GitHub-flavored markdown
  (:func:`repro.analysis.reporting.markdown_table`), so CI can post the
  summary into a PR or job log.

User code registers its own with ``@RENDERER_REGISTRY.register("name")``;
``python -m repro report --format name`` picks it up immediately (see
``docs/report.md``).  Rendering is deterministic for a given bundle — no
timestamps, no randomness — which is what the golden-file snapshot tests
pin.
"""

from __future__ import annotations

from html import escape
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.reporting import markdown_table
from repro.registry import Registry
from repro.report.bundle import REPORT_SCHEMA_VERSION, ReportBundle
from repro.report.check import check_bundle
from repro.report.svg import bar_chart, line_chart
from repro.perfbench import trajectory_backend_series

__all__ = [
    "RENDERER_REGISTRY",
    "render_bundle",
    "render_html",
    "render_markdown",
    "renderer_names",
]

#: Format name -> renderer callable ``(bundle, tolerance) -> str``.
RENDERER_REGISTRY = Registry("report renderer")

Renderer = Callable[[ReportBundle, Optional[float]], str]

#: Columns of the per-workload sweep tables (mirrors the CLI sweep output).
_SWEEP_COLUMNS = ("design", "ipc", "speedup", "btb_mpki", "l1i_mpki", "area_mm2")

#: Display order of the resilience counters (sweep stats, then journals).
_RESILIENCE_ORDER = (
    "cells", "simulated", "cache_hits", "resumed", "retried", "timed_out",
    "pool_rebuilds", "quarantined", "traces_generated", "traces_loaded",
    "traces_mapped", "journals", "journal_cells_expected",
    "journal_cells_recorded",
)


# --------------------------------------------------------------------------- #
# Shared row assembly (both renderers consume these)
# --------------------------------------------------------------------------- #

def _design_rows(point: Mapping[str, Any]) -> List[Dict[str, Any]]:
    rows = point.get("designs")
    return [dict(row) for row in rows if isinstance(row, dict)] if isinstance(rows, list) else []


def _backend_rows(point: Mapping[str, Any]) -> List[Dict[str, Any]]:
    rows = point.get("backends")
    return [dict(row) for row in rows if isinstance(row, dict)] if isinstance(rows, list) else []


def _delta_rows(
    bundle: ReportBundle, tolerance: Optional[float]
) -> Tuple[List[Dict[str, Any]], Optional[str]]:
    """The regression-delta table, or the reason there is none.

    Without a tolerance the deltas are informational: the rows carry the
    ratios but no verdict (renderers omit the verdict column rather than
    implying a gate that was never run).
    """
    try:
        return list(check_bundle(bundle, tolerance if tolerance is not None else 1.0)), None
    except ValueError as error:
        return [], str(error)


def _sweep_workloads(bundle: ReportBundle) -> List[Tuple[str, Dict[str, Any]]]:
    """Every (workload name, RunReport dict) across the collected sweeps."""
    out: List[Tuple[str, Dict[str, Any]]] = []
    for sweep in bundle.sweeps:
        reports = sweep.get("reports")
        if not isinstance(reports, dict):
            continue
        for name, report in reports.items():
            if isinstance(report, dict):
                out.append((str(name), report))
    return out


def _report_rows(report: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Per-design rows of one RunReport dict, in the report's design order."""
    results = report.get("results", {})
    rows: List[Dict[str, Any]] = []
    for design in report.get("order", []):
        summary = results.get(design)
        if isinstance(summary, dict):
            rows.append(dict(summary))
    return rows


def _comparison_matrix(
    bundle: ReportBundle,
) -> Tuple[List[str], List[Dict[str, Any]]]:
    """Workload×design speedup matrix across every collected sweep.

    Rows are workloads (profiles and scenarios alike), columns the union of
    design names in first-seen order; cells are speedups over each report's
    own baseline design, formatted ``"1.23x"`` (empty where a workload did
    not run a design).
    """
    designs: List[str] = []
    rows: List[Dict[str, Any]] = []
    for workload, report in _sweep_workloads(bundle):
        row: Dict[str, Any] = {"workload": workload}
        for summary in _report_rows(report):
            design = str(summary.get("design"))
            if design not in designs:
                designs.append(design)
            speedup = summary.get("speedup")
            if isinstance(speedup, (int, float)):
                row[design] = f"{speedup:.2f}x"
        rows.append(row)
    return designs, rows


def _per_profile_rows(report: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Per-(design, profile) MPKI/IPC breakdown of one scenario report.

    Empty for homogeneous workloads (a single profile group carries no more
    information than the chip-level row).
    """
    rows: List[Dict[str, Any]] = []
    for summary in _report_rows(report):
        per_profile = summary.get("per_profile")
        if not isinstance(per_profile, dict) or len(per_profile) < 2:
            continue
        for profile in sorted(per_profile):
            breakdown = per_profile[profile]
            if not isinstance(breakdown, dict):
                continue
            rows.append({
                "design": summary.get("design"),
                "profile": profile,
                "cores": int(breakdown.get("cores", 0)),
                "ipc": breakdown.get("ipc"),
                "btb_mpki": breakdown.get("btb_mpki"),
                "l1i_mpki": breakdown.get("l1i_mpki"),
            })
    return rows


def _resilience_rows(bundle: ReportBundle) -> List[Dict[str, Any]]:
    counters = dict(bundle.resilience)
    rows = [
        {"counter": name, "value": counters.pop(name)}
        for name in _RESILIENCE_ORDER
        if name in counters
    ]
    rows.extend({"counter": name, "value": counters[name]} for name in sorted(counters))
    return rows


def _trend_series(bundle: ReportBundle) -> Dict[str, List[Optional[float]]]:
    return trajectory_backend_series(bundle.trajectory)


def _point_labels(bundle: ReportBundle) -> List[str]:
    return [f"#{index}" for index in range(len(bundle.trajectory))]


# --------------------------------------------------------------------------- #
# HTML renderer
# --------------------------------------------------------------------------- #

_CSS = """
body { font: 15px/1.5 -apple-system, "Segoe UI", Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; padding: 0 1rem; color: #1a1a1a; }
h1 { font-size: 1.6rem; border-bottom: 2px solid #4269d0; padding-bottom: .3rem; }
h2 { font-size: 1.2rem; margin-top: 2rem; }
h3 { font-size: 1rem; margin-top: 1.2rem; }
table { border-collapse: collapse; margin: .8rem 0; }
th, td { border: 1px solid #d0d7de; padding: .25rem .6rem; text-align: right; }
th:first-child, td:first-child { text-align: left; }
th { background: #f6f8fa; }
tr:nth-child(even) td { background: #fbfcfd; }
.ok { color: #116329; }
.regressed { color: #a40e26; font-weight: 600; }
.provenance { color: #57606a; font-size: .85rem; }
.note { color: #57606a; font-style: italic; }
svg { max-width: 100%; height: auto; }
.chart-title { font: 600 14px sans-serif; fill: #1a1a1a; }
.tick { font: 11px sans-serif; fill: #57606a; }
.grid { stroke: #e6e8eb; stroke-width: 1; }
""".strip()


def _html_cell(value: Any, float_format: str = "{:.3f}") -> str:
    if isinstance(value, float):
        return escape(float_format.format(value))
    return escape("" if value is None else str(value))


def _html_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str],
    float_format: str = "{:.3f}",
    classes: Optional[Mapping[int, str]] = None,
) -> str:
    """Rows → ``<table>``; ``classes`` maps a row index to a CSS class."""
    lines = ["<table>", "<tr>" + "".join(f"<th>{escape(c)}</th>" for c in columns) + "</tr>"]
    for index, row in enumerate(rows):
        css = f' class="{(classes or {}).get(index, "")}"' if classes and index in classes else ""
        cells = "".join(
            f"<td>{_html_cell(row.get(column), float_format)}</td>" for column in columns
        )
        lines.append(f"<tr{css}>{cells}</tr>")
    lines.append("</table>")
    return "\n".join(lines)


@RENDERER_REGISTRY.register("html")
def render_html(bundle: ReportBundle, tolerance: Optional[float] = None) -> str:
    """Render the bundle as one self-contained static HTML page."""
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en">',
        "<head>",
        '<meta charset="utf-8">',
        f"<title>{escape(bundle.title)}</title>",
        f"<style>{_CSS}</style>",
        "</head>",
        "<body>",
        f"<h1>{escape(bundle.title)}</h1>",
    ]
    if bundle.trajectory_sources:
        sources = ", ".join(escape(source) for source in bundle.trajectory_sources)
        parts.append(f'<p class="provenance">trajectory: {sources}</p>')

    parts.append("<h2>Perf trajectory</h2>")
    if bundle.trajectory:
        series = _trend_series(bundle)
        if series:
            parts.append(line_chart(
                series,
                title="regions/sec per backend, trajectory point over point",
                x_labels=_point_labels(bundle),
                y_label="regions/s",
            ))
        newest = bundle.newest_point or {}
        design_rows = _design_rows(newest)
        if design_rows:
            parts.append("<h3>Newest point: per-design throughput</h3>")
            parts.append(bar_chart(
                [
                    (str(row.get("design")), float(row.get("regions_per_sec", 0.0)))
                    for row in design_rows
                ],
                title="regions/sec per design (newest point)",
                unit="regions/s",
            ))
            parts.append(_html_table(
                design_rows,
                ("design", "backend", "regions_per_sec", "ipc"),
                float_format="{:,.3f}",
            ))
        backend_rows = _backend_rows(newest)
        if backend_rows:
            parts.append("<h3>Newest point: per-backend throughput</h3>")
            parts.append(_html_table(
                backend_rows,
                ("backend", "design", "regions_per_sec", "ipc"),
                float_format="{:,.3f}",
            ))
    else:
        parts.append('<p class="note">No trajectory points were collected.</p>')

    parts.append("<h2>Regression deltas</h2>")
    delta_rows, delta_reason = _delta_rows(bundle, tolerance)
    if delta_rows:
        if bundle.baseline_source:
            parts.append(
                f'<p class="provenance">baseline: {escape(bundle.baseline_source)}'
                + (f" &middot; tolerance {tolerance:g}x" if tolerance is not None else "")
                + "</p>"
            )
        columns = ["backend", "regions_per_sec", "baseline_regions_per_sec", "ratio"]
        classes: Dict[int, str] = {}
        rendered = [dict(row) for row in delta_rows]
        if tolerance is not None:
            columns.append("verdict")
            for index, row in enumerate(rendered):
                row["verdict"] = "ok" if row["ok"] else "REGRESSED"
                classes[index] = "ok" if row["ok"] else "regressed"
        parts.append(_html_table(
            rendered, columns, float_format="{:,.3f}", classes=classes or None,
        ))
    else:
        parts.append(f'<p class="note">{escape(delta_reason or "no deltas")}</p>')

    workloads = _sweep_workloads(bundle)
    parts.append("<h2>Sweeps</h2>")
    if workloads:
        designs, matrix = _comparison_matrix(bundle)
        if len(matrix) > 1 or len(designs) > 1:
            parts.append("<h3>Workload &times; design speedup matrix</h3>")
            parts.append(_html_table(matrix, ["workload", *designs]))
        for workload, report in workloads:
            cores = report.get("cores")
            instructions = report.get("instructions_per_core")
            parts.append(
                f"<h3>{escape(workload)}</h3>"
                f'<p class="provenance">cores={_html_cell(cores)}, '
                f"instructions/core={_html_cell(instructions)}, "
                f"baseline={_html_cell(report.get('baseline'))}</p>"
            )
            parts.append(_html_table(_report_rows(report), _SWEEP_COLUMNS))
            per_profile = _per_profile_rows(report)
            if per_profile:
                parts.append("<h4>Per-profile breakdown</h4>")
                parts.append(_html_table(
                    per_profile,
                    ("design", "profile", "cores", "ipc", "btb_mpki", "l1i_mpki"),
                ))
    else:
        parts.append('<p class="note">No sweep reports were collected.</p>')

    resilience = _resilience_rows(bundle)
    if resilience:
        parts.append("<h2>Resilience counters</h2>")
        parts.append(_html_table(resilience, ("counter", "value")))

    parts.append(
        f'<p class="provenance">report bundle schema {REPORT_SCHEMA_VERSION} '
        "&middot; generated by <code>python -m repro report</code></p>"
    )
    parts.append("</body>")
    parts.append("</html>")
    return "\n".join(parts) + "\n"


# --------------------------------------------------------------------------- #
# Markdown renderer
# --------------------------------------------------------------------------- #

@RENDERER_REGISTRY.register("md")
def render_markdown(bundle: ReportBundle, tolerance: Optional[float] = None) -> str:
    """Render the bundle as GitHub-flavored markdown (the CI summary)."""
    lines: List[str] = [f"# {bundle.title}", ""]
    if bundle.trajectory_sources:
        lines.append(f"*Trajectory: {', '.join(bundle.trajectory_sources)}*")
        lines.append("")

    lines.append("## Perf trajectory")
    lines.append("")
    if bundle.trajectory:
        series = _trend_series(bundle)
        labels = _point_labels(bundle)
        trend_rows: List[Dict[str, Any]] = []
        for index, label in enumerate(labels):
            row: Dict[str, Any] = {"point": label}
            for backend, values in series.items():
                value = values[index]
                row[backend] = f"{value:,.0f}" if value is not None else ""
            trend_rows.append(row)
        lines.append(markdown_table(trend_rows, ["point", *sorted(series)]))
        lines.append("")
        newest = bundle.newest_point or {}
        design_rows = _design_rows(newest)
        if design_rows:
            lines.append("### Newest point: per-design regions/sec")
            lines.append("")
            lines.append(markdown_table(
                design_rows,
                ("design", "backend", "regions_per_sec", "ipc"),
                float_format="{:,.3f}",
            ))
            lines.append("")
    else:
        lines.append("_No trajectory points were collected._")
        lines.append("")

    lines.append("## Regression deltas")
    lines.append("")
    delta_rows, delta_reason = _delta_rows(bundle, tolerance)
    if delta_rows:
        if bundle.baseline_source:
            suffix = f" · tolerance {tolerance:g}x" if tolerance is not None else ""
            lines.append(f"*Baseline: {bundle.baseline_source}{suffix}*")
            lines.append("")
        columns = ["backend", "regions_per_sec", "baseline_regions_per_sec", "ratio"]
        rendered = [dict(row) for row in delta_rows]
        if tolerance is not None:
            columns.append("verdict")
            for row in rendered:
                row["verdict"] = "ok" if row["ok"] else "**REGRESSED**"
        lines.append(markdown_table(rendered, columns, float_format="{:,.3f}"))
        lines.append("")
    else:
        lines.append(f"_{delta_reason or 'no deltas'}_")
        lines.append("")

    workloads = _sweep_workloads(bundle)
    lines.append("## Sweeps")
    lines.append("")
    if workloads:
        designs, matrix = _comparison_matrix(bundle)
        if len(matrix) > 1 or len(designs) > 1:
            lines.append("### Workload × design speedup matrix")
            lines.append("")
            lines.append(markdown_table(matrix, ["workload", *designs]))
            lines.append("")
        for workload, report in workloads:
            lines.append(
                f"### {workload} (cores={report.get('cores')}, "
                f"instructions/core={report.get('instructions_per_core')})"
            )
            lines.append("")
            lines.append(markdown_table(_report_rows(report), _SWEEP_COLUMNS))
            lines.append("")
            per_profile = _per_profile_rows(report)
            if per_profile:
                lines.append("#### Per-profile breakdown")
                lines.append("")
                lines.append(markdown_table(
                    per_profile,
                    ("design", "profile", "cores", "ipc", "btb_mpki", "l1i_mpki"),
                ))
                lines.append("")
    else:
        lines.append("_No sweep reports were collected._")
        lines.append("")

    resilience = _resilience_rows(bundle)
    if resilience:
        lines.append("## Resilience counters")
        lines.append("")
        lines.append(markdown_table(resilience, ("counter", "value")))
        lines.append("")

    lines.append(
        f"*Report bundle schema {REPORT_SCHEMA_VERSION} · "
        "generated by `python -m repro report`*"
    )
    return "\n".join(lines) + "\n"


def renderer_names() -> List[str]:
    """The registered report formats (``--format`` choices)."""
    return RENDERER_REGISTRY.names()


def render_bundle(
    bundle: ReportBundle, fmt: str = "html", tolerance: Optional[float] = None
) -> str:
    """Render ``bundle`` with the registered renderer named ``fmt``.

    Unknown format names raise
    :class:`~repro.registry.UnknownComponentError` listing the catalog,
    mirroring every other registry lookup in the repo.
    """
    renderer = RENDERER_REGISTRY.get(fmt)
    return str(renderer(bundle, tolerance))
