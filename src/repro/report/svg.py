"""Inline-SVG chart primitives for the HTML report (stdlib only).

The report must be one self-contained file — no plotting library, no
JavaScript, no external assets — so its charts are hand-built SVG strings:
a multi-series line chart for the perf trajectory and a horizontal bar
chart for per-design/per-backend throughput.  Output is deterministic for
a given input (fixed geometry, stable formatting, no randomness), which is
what lets the golden-file snapshot tests pin the renderers byte for byte.
"""

from __future__ import annotations

from html import escape
from typing import List, Mapping, Optional, Sequence, Tuple

__all__ = ["PALETTE", "bar_chart", "line_chart"]

#: Series colors, assigned in order; wraps around past six series.
PALETTE = ("#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#a463f2", "#9c6b4e")


def _fmt(value: float) -> str:
    """Compact, stable number formatting for tick and value labels."""
    if abs(value) >= 1_000_000:
        return f"{value / 1_000_000:.3g}M"
    if abs(value) >= 1_000:
        return f"{value / 1_000:.3g}k"
    return f"{value:.3g}"


def _coord(value: float) -> str:
    """Fixed-precision SVG coordinate (deterministic across platforms)."""
    return f"{value:.1f}"


def _y_ticks(top: float) -> List[float]:
    """Four evenly spaced ticks from 0 to a rounded-up axis top."""
    if top <= 0:
        top = 1.0
    return [top * fraction / 4 for fraction in range(5)]


def line_chart(
    series: Mapping[str, Sequence[Optional[float]]],
    title: str,
    x_labels: Optional[Sequence[str]] = None,
    y_label: str = "",
    width: int = 640,
    height: int = 260,
) -> str:
    """Multi-series line chart; ``None`` values break the line (gaps).

    ``series`` maps a legend name to one value per x position; every series
    must be the same length.  Designed for the trajectory trend chart: one
    line per backend, gaps where a point did not measure that backend.
    """
    lengths = {len(values) for values in series.values()}
    if len(lengths) > 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    points = lengths.pop() if lengths else 0
    margin_left, margin_right, margin_top, margin_bottom = 62.0, 12.0, 30.0, 34.0
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom
    peak = max(
        (value for values in series.values() for value in values if value is not None),
        default=0.0,
    )
    top = peak * 1.08 if peak > 0 else 1.0

    def x_at(index: int) -> float:
        if points <= 1:
            return margin_left + plot_w / 2
        return margin_left + plot_w * index / (points - 1)

    def y_at(value: float) -> float:
        return margin_top + plot_h * (1 - value / top)

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {width} {height}" '
        f'role="img" aria-label="{escape(title, quote=True)}">',
        f'<text x="{_coord(margin_left)}" y="18" class="chart-title">'
        f"{escape(title)}</text>",
    ]
    for tick in _y_ticks(top):
        y = y_at(tick)
        parts.append(
            f'<line x1="{_coord(margin_left)}" y1="{_coord(y)}" '
            f'x2="{_coord(width - margin_right)}" y2="{_coord(y)}" class="grid"/>'
        )
        parts.append(
            f'<text x="{_coord(margin_left - 6)}" y="{_coord(y + 3)}" '
            f'class="tick" text-anchor="end">{_fmt(tick)}</text>'
        )
    if y_label:
        parts.append(
            f'<text x="12" y="{_coord(margin_top - 10)}" class="tick">'
            f"{escape(y_label)}</text>"
        )
    labels = list(x_labels) if x_labels is not None else [str(i) for i in range(points)]
    for index, label in enumerate(labels[:points]):
        parts.append(
            f'<text x="{_coord(x_at(index))}" y="{_coord(height - 12)}" '
            f'class="tick" text-anchor="middle">{escape(label)}</text>'
        )
    for order, (name, values) in enumerate(series.items()):
        color = PALETTE[order % len(PALETTE)]
        segment: List[Tuple[float, float]] = []
        segments: List[List[Tuple[float, float]]] = []
        for index, value in enumerate(values):
            if value is None:
                if segment:
                    segments.append(segment)
                    segment = []
                continue
            segment.append((x_at(index), y_at(value)))
        if segment:
            segments.append(segment)
        for seg in segments:
            if len(seg) > 1:
                coords = " ".join(f"{_coord(x)},{_coord(y)}" for x, y in seg)
                parts.append(
                    f'<polyline points="{coords}" fill="none" stroke="{color}" '
                    'stroke-width="2"/>'
                )
            for x, y in seg:
                parts.append(
                    f'<circle cx="{_coord(x)}" cy="{_coord(y)}" r="3" '
                    f'fill="{color}"/>'
                )
        legend_x = margin_left + 110.0 * order
        parts.append(
            f'<rect x="{_coord(legend_x)}" y="{_coord(height - 34)}" width="10" '
            f'height="10" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{_coord(legend_x + 14)}" y="{_coord(height - 25)}" '
            f'class="tick">{escape(name)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def bar_chart(
    items: Sequence[Tuple[str, float]],
    title: str,
    unit: str = "",
    width: int = 640,
) -> str:
    """Horizontal bar chart: one labeled bar per ``(name, value)`` item."""
    row_h, margin_left, margin_top = 26.0, 150.0, 30.0
    height = int(margin_top + row_h * len(items) + 10)
    peak = max((value for _, value in items), default=0.0)
    top = peak if peak > 0 else 1.0
    plot_w = width - margin_left - 90.0
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {width} {height}" '
        f'role="img" aria-label="{escape(title, quote=True)}">',
        f'<text x="{_coord(margin_left)}" y="18" class="chart-title">'
        f"{escape(title)}</text>",
    ]
    for order, (name, value) in enumerate(items):
        y = margin_top + row_h * order
        bar_w = plot_w * value / top
        color = PALETTE[order % len(PALETTE)]
        parts.append(
            f'<text x="{_coord(margin_left - 8)}" y="{_coord(y + 14)}" '
            f'class="tick" text-anchor="end">{escape(name)}</text>'
        )
        parts.append(
            f'<rect x="{_coord(margin_left)}" y="{_coord(y)}" '
            f'width="{_coord(bar_w)}" height="18" fill="{color}"/>'
        )
        label = _fmt(value) + (f" {unit}" if unit else "")
        parts.append(
            f'<text x="{_coord(margin_left + bar_w + 6)}" y="{_coord(y + 14)}" '
            f'class="tick">{escape(label)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)
