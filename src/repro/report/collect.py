"""Collect run artifacts into a :class:`~repro.report.bundle.ReportBundle`.

The pipeline's first stage: gather whatever evidence a run left behind —
bench trajectory files (``BENCH_*.json``, any recorded schema), saved sweep
reports (``python -m repro sweep --save-report``), run-journal directories —
normalize all of it, and return one bundle the renderers and the regression
gate consume.  The shape follows the artifacts→report pipelines of perf
tooling: collection is separate from rendering, so the same bundle can be
rendered as HTML for humans and markdown for CI, archived, or re-rendered
by a later build.

Normalization rules:

* Trajectory points are migrated to the schema-2+ vocabulary on the way in
  (:func:`repro.perfbench.normalized_trajectory`), so mixed schema-1/2/3
  histories collect cleanly.
* Sweep files are read through :func:`repro.api.load_reports` (both the
  ``--save-report`` layout and redirected ``--json`` stdout); their
  :class:`~repro.sweep.SweepStats` counters are summed into the bundle's
  resilience section.
* The regression baseline is resolved here, once: an explicit baseline file
  beats the trajectory's own previous point; a single-point trajectory with
  no explicit baseline yields ``baseline=None`` and the gate refuses to run
  instead of comparing a point against itself.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.perfbench import normalized_trajectory
from repro.report.bundle import ReportBundle

__all__ = ["collect_bundle", "summarize_journals"]


def summarize_journals(directory: Union[str, Path]) -> Dict[str, int]:
    """Fold a run-journal directory into plain counters.

    Scans every ``*.jsonl`` journal (see :class:`repro.resilience.RunJournal`)
    and counts journals, cells they expected (header ``cells`` fields) and
    cell records they hold.  Unreadable files and torn lines degrade to
    smaller counts — mirroring ``RunJournal.load``'s own tolerance — and a
    missing directory is simply zero journals, so the collector never fails
    because a sweep happened not to journal.
    """
    counters = {"journals": 0, "journal_cells_expected": 0, "journal_cells_recorded": 0}
    directory = Path(directory)
    if not directory.is_dir():
        return counters
    for path in sorted(directory.glob("*.jsonl")):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            continue
        counters["journals"] += 1
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                continue
            if not isinstance(payload, dict):
                continue
            if "schema" in payload:
                cells = payload.get("cells")
                if isinstance(cells, int):
                    counters["journal_cells_expected"] += cells
            elif isinstance(payload.get("key"), str):
                counters["journal_cells_recorded"] += 1
    return counters


def _resolve_baseline(
    trajectory: List[Dict[str, object]],
    trajectory_sources: List[str],
    baseline_path: Optional[Union[str, Path]],
) -> ReportBundle:
    """Attach the regression baseline to a partially built bundle."""
    bundle = ReportBundle(
        trajectory=trajectory, trajectory_sources=trajectory_sources
    )
    if baseline_path is not None:
        points = normalized_trajectory(baseline_path)
        if not points:
            raise ValueError(f"baseline trajectory {baseline_path} has no points")
        bundle.baseline = points[-1]
        bundle.baseline_source = f"{baseline_path} (latest point)"
    elif len(trajectory) >= 2:
        # The newest point is the one under test; its predecessor is the
        # natural in-file baseline.
        bundle.baseline = trajectory[-2]
        source = trajectory_sources[-1] if trajectory_sources else "trajectory"
        bundle.baseline_source = f"{source} (previous point)"
    return bundle


def collect_bundle(
    bench_paths: Sequence[Union[str, Path]] = (),
    sweep_paths: Sequence[Union[str, Path]] = (),
    journal_dir: Optional[Union[str, Path]] = None,
    baseline_path: Optional[Union[str, Path]] = None,
    title: str = "repro report",
) -> ReportBundle:
    """Gather artifacts into one normalized :class:`ReportBundle`.

    ``bench_paths`` are trajectory files, collected oldest-first in the
    given order; ``sweep_paths`` are saved sweep-report files;
    ``journal_dir`` (optional) adds journal counters to the resilience
    section; ``baseline_path`` (optional) names the trajectory file whose
    latest point is the regression baseline — when omitted, the previous
    point of the collected trajectory serves, if there is one.

    A named file that is missing or unreadable raises (``OSError`` /
    :class:`ValueError` naming the path) — the caller asked for evidence
    that is not there, which must not silently produce a thinner report.
    An *empty* trajectory file collects as zero points; the renderers state
    that explicitly instead of drawing empty charts.
    """
    from repro.api import load_reports  # local: keep import cost off the hot path

    trajectory: List[Dict[str, object]] = []
    sources: List[str] = []
    for path in bench_paths:
        points = normalized_trajectory(path)
        trajectory.extend(points)
        sources.append(str(path))

    bundle = _resolve_baseline(trajectory, sources, baseline_path)
    bundle.title = title

    resilience: Dict[str, int] = {}
    for path in sweep_paths:
        reports, stats = load_reports(path)
        bundle.sweeps.append({
            "source": str(path),
            "reports": {name: report.to_dict() for name, report in reports.items()},
            "stats": dict(stats),
        })
        for key, value in stats.items():
            resilience[key] = resilience.get(key, 0) + value
    if journal_dir is not None:
        for key, value in summarize_journals(journal_dir).items():
            resilience[key] = resilience.get(key, 0) + value
    bundle.resilience = resilience
    return bundle
