"""Crash-resumable execution primitives behind the sweep scheduler.

Three small, stdlib-only pieces (``sweep.py`` composes them; keeping them
here keeps the import graph acyclic — :mod:`repro.core.cmp` raises
:class:`CellExecutionError` too and must not import the sweep engine):

* :class:`RetryPolicy` — the bounded-retry / deterministic-backoff /
  cell-timeout / pool-rebuild knobs of :func:`repro.sweep.run_cells`.
  Backoff is a pure function of the attempt number (exponential, capped,
  **no jitter**): determinism is the repo-wide contract (staticcheck R002
  and R006), and uncoordinated sweeps sharing a cache don't need
  decorrelation — the content-addressed stores already make duplicated
  work harmless.
* :class:`CellExecutionError` — a worker failure that *names the cell*
  (workload, design, seed base, backend).  It carries one message string,
  so it pickles losslessly across the process-pool boundary (chained
  ``__cause__`` exceptions do not survive pickling).
* :class:`RunJournal` — an append-only JSONL record of completed cells,
  keyed by the sweep's full cell-key set, so a killed sweep resumed with
  ``python -m repro sweep --resume`` re-runs exactly the missing cells.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Mapping, Optional, Union

__all__ = ["CellExecutionError", "RetryPolicy", "RunJournal"]


class CellExecutionError(RuntimeError):
    """A sweep cell (or replay core) failed; the message names it.

    Raised by pool workers around the underlying error so the parent —
    and the user's traceback — always see *which* (workload, design, seed)
    cell died, not just a bare ``OSError`` from an anonymous worker.
    Constructed with a single message string so it round-trips through the
    process-pool pickle boundary without losing information.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with deterministic backoff for sweep cells.

    ``retries`` is the number of *re-executions* allowed per cell after its
    first attempt (0 disables retry).  ``delay(attempt)`` is the pause
    before re-execution number ``attempt + 1``: exponential in the attempt
    number, capped at ``backoff_cap``, with no jitter — the same policy
    always produces the same schedule (staticcheck R006 enforces this shape
    on every retry loop in scope).

    ``cell_timeout`` bounds one cell attempt's wall-clock seconds in the
    pooled scheduler; an expired cell's worker is presumed stuck, the pool
    is rebuilt and the cell is charged a retry.  ``max_pool_rebuilds``
    bounds how many times a broken pool (a worker killed by the OS, an
    unpicklable crash) is rebuilt before the scheduler degrades to the
    serial path for the remaining cells.
    """

    retries: int = 2
    backoff: float = 0.05
    backoff_cap: float = 2.0
    cell_timeout: Optional[float] = None
    max_pool_rebuilds: int = 2

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.backoff < 0 or self.backoff_cap < 0:
            raise ValueError("backoff and backoff_cap must be non-negative")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValueError("cell_timeout must be positive when given")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be non-negative")

    def delay(self, attempt: int) -> float:
        """Seconds to wait before re-execution ``attempt + 1`` (attempt >= 0)."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        return min(self.backoff * (2.0 ** attempt), self.backoff_cap)


#: Journal file format version; a mismatch makes the whole file unusable
#: (resume falls back to re-running every cell — safe, never wrong).
JOURNAL_SCHEMA_VERSION = 1


class RunJournal:
    """Append-only JSONL record of one sweep's completed cells.

    The journal is **keyed by the sweep's cell-key set**: its file name is
    the SHA-256 of the sorted cell keys, so a resumed invocation with the
    same grid finds the same file, and any parameter change lands in a
    fresh one.  The first line is a header (schema, sweep id, cell count);
    every later line is one completed cell::

        {"schema": 1, "sweep": "<id>", "cells": 4}
        {"key": "<cell key>", "summary": {...}}

    Appends are flushed and fsync'd per record, so a sweep killed at any
    instant loses at most the line being written — and :meth:`load`
    tolerates that torn tail (unparsable or foreign lines are counted in
    ``skipped_lines`` and ignored, never fatal).
    """

    def __init__(self, directory: Union[str, Path], keys: Iterable[str]) -> None:
        self.directory = Path(directory)
        self.keys = frozenset(keys)
        digest = hashlib.sha256(
            "\n".join(sorted(self.keys)).encode("utf-8")
        ).hexdigest()
        self.sweep_id = digest
        self.path = self.directory / f"{digest}.jsonl"
        #: Cells appended through this instance (observability).
        self.recorded = 0
        #: Torn/foreign/stale lines skipped by the last :meth:`load`.
        self.skipped_lines = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunJournal({str(self.path)!r}, cells={len(self.keys)}, "
            f"recorded={self.recorded})"
        )

    def load(self) -> Dict[str, Dict[str, object]]:
        """Completed cells on disk: ``{cell key: summary}``.

        A missing journal, a header from another schema version, and any
        number of corrupt lines all degrade to "fewer resumable cells",
        never to an error — resuming must always be safe.
        """
        self.skipped_lines = 0
        entries: Dict[str, Dict[str, object]] = {}
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return entries
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                self.skipped_lines += 1  # torn tail write from a crash
                continue
            if not isinstance(payload, dict):
                self.skipped_lines += 1
                continue
            if "schema" in payload:
                if payload.get("schema") != JOURNAL_SCHEMA_VERSION:
                    # Another build's journal layout: unusable as a whole.
                    self.skipped_lines += 1
                    return {}
                continue
            key = payload.get("key")
            summary = payload.get("summary")
            if (
                not isinstance(key, str)
                or key not in self.keys
                or not isinstance(summary, dict)
            ):
                self.skipped_lines += 1
                continue
            entries[key] = summary
        return entries

    def record(self, key: str, summary: Mapping[str, object]) -> None:
        """Append one completed cell (flushed + fsync'd before returning)."""
        if key not in self.keys:
            raise ValueError(f"cell key {key!r} is not part of this sweep")
        self.directory.mkdir(parents=True, exist_ok=True)
        header: Optional[str] = None
        if not self.path.exists():
            header = json.dumps(
                {
                    "schema": JOURNAL_SCHEMA_VERSION,
                    "sweep": self.sweep_id,
                    "cells": len(self.keys),
                },
                sort_keys=True,
            )
        line = json.dumps({"key": key, "summary": dict(summary)}, sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            if header is not None:
                handle.write(header + "\n")
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self.recorded += 1
