"""Workload profiles mirroring the paper's benchmark suite (Table 1).

Each profile parameterises the synthetic program generator so that the
resulting workload reproduces the frontend-relevant properties of the
corresponding commercial workload: instruction footprint well beyond the
32 KB L1-I, a branch working set in the 10K-30K taken-branch range (Figure 1),
a deep layered call structure, and Table 2's per-block branch densities.

The absolute footprints are scaled down relative to the multi-megabyte
working sets of the real workloads so that trace-driven simulation stays
laptop-friendly; the *relative* pressure on the 32 KB L1-I and 1K-entry BTB is
preserved, which is what every evaluated mechanism responds to.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Tuple


@dataclass(frozen=True)
class WorkloadProfile:
    """Parameters controlling synthetic program and trace generation.

    Attributes:
        name: short identifier (e.g. ``oltp_db2``).
        description: human-readable description of the modelled workload.
        category: one of ``oltp``, ``dss``, ``media``, ``web``.
        layers: depth of the software stack (each request traverses them).
        functions_per_layer: number of distinct functions per layer.
        mean_basic_blocks: mean number of basic blocks per function.
        mean_block_length: mean instructions per basic block (controls the
            static branch density per 64 B block; 16 / mean_block_length).
        request_types: number of distinct request types in the service mix.
        conditional_fraction: fraction of basic-block terminators that are
            conditional branches.
        call_fraction: fraction that are direct calls to the next layer.
        indirect_call_fraction: fraction that are indirect calls.
        indirect_jump_fraction: fraction that are indirect jumps (dispatch).
        unconditional_fraction: fraction that are direct unconditional jumps.
        early_return_fraction: fraction that are early-exit returns.
        taken_bias_choices: biases assigned to forward conditional branches.
        deterministic_fraction: fraction of conditionals whose outcome is a
            pure function of the request type (drives temporal recurrence).
        loop_fraction: fraction of conditionals that form backward loops.
        loop_trip_range: inclusive range of loop trip counts.
        cross_layer_fanout: candidate callees considered per call site.
        request_parameters: number of distinct per-request parameter values
            (e.g. which warehouse/table/URL a request touches); path choices
            depend on (request type, parameter), so larger values widen the
            dynamic instruction working set while keeping streams recurrent.
        distinct_operations: number of distinct operations (statements,
            handlers) a request type is composed of; together with the
            request-type count this sets how much of the code base the
            steady-state request mix exercises.
        request_zipf_s: skew of the request-type popularity distribution.
        code_base_address: base virtual address of the code segment.
        seed: generator seed (program layout is deterministic per profile).
        recommended_trace_instructions: default trace length for evaluation.
    """

    name: str
    description: str
    category: str
    layers: int
    functions_per_layer: int
    mean_basic_blocks: int
    mean_block_length: float
    request_types: int
    conditional_fraction: float = 0.64
    call_fraction: float = 0.14
    indirect_call_fraction: float = 0.03
    indirect_jump_fraction: float = 0.03
    unconditional_fraction: float = 0.08
    early_return_fraction: float = 0.08
    taken_bias_choices: Tuple[float, ...] = (0.05, 0.1, 0.3, 0.5, 0.5, 0.7, 0.9, 0.95)
    deterministic_fraction: float = 0.95
    loop_fraction: float = 0.18
    loop_trip_range: Tuple[int, int] = (2, 12)
    cross_layer_fanout: int = 3
    request_parameters: int = 10
    distinct_operations: int = 12
    request_zipf_s: float = 0.9
    code_base_address: int = 0x4000_0000
    seed: int = 7
    recommended_trace_instructions: int = 800_000

    def __post_init__(self) -> None:
        fractions = (
            self.conditional_fraction
            + self.call_fraction
            + self.indirect_call_fraction
            + self.indirect_jump_fraction
            + self.unconditional_fraction
            + self.early_return_fraction
        )
        if not math.isclose(fractions, 1.0, abs_tol=1e-6):
            raise ValueError(f"terminator fractions must sum to 1.0, got {fractions}")
        if self.layers < 2:
            raise ValueError("workloads need at least two software layers")
        if not 0.0 <= self.deterministic_fraction <= 1.0:
            raise ValueError("deterministic_fraction must be in [0, 1]")
        if self.loop_trip_range[0] < 1 or self.loop_trip_range[1] < self.loop_trip_range[0]:
            raise ValueError("invalid loop trip range")

    @property
    def approximate_static_instructions(self) -> int:
        """Rough static instruction count implied by the layout parameters."""
        basic_blocks = self.layers * self.functions_per_layer * self.mean_basic_blocks
        return int(basic_blocks * self.mean_block_length)

    @property
    def approximate_footprint_kb(self) -> float:
        """Approximate instruction footprint in kilobytes."""
        return self.approximate_static_instructions * 4 / 1024

    @property
    def static_branch_density_target(self) -> float:
        """Expected static branches per 64 B block (16 / block length)."""
        return 16.0 / self.mean_block_length

    def scaled(self, factor: float) -> "WorkloadProfile":
        """Return a copy whose footprint and trace length scale by ``factor``.

        Used by tests (small factors) and by users who want longer runs.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        functions = max(2, int(round(self.functions_per_layer * factor)))
        instructions = max(10_000, int(self.recommended_trace_instructions * factor))
        return replace(
            self,
            functions_per_layer=functions,
            recommended_trace_instructions=instructions,
        )


def _oltp_db2() -> WorkloadProfile:
    return WorkloadProfile(
        name="oltp_db2",
        description="TPC-C style online transaction processing on IBM DB2",
        category="oltp",
        layers=12,
        functions_per_layer=72,
        mean_basic_blocks=18,
        mean_block_length=4.4,
        request_types=5,
        distinct_operations=24,
        deterministic_fraction=0.96,
        loop_fraction=0.16,
        seed=11,
    )


def _oltp_oracle() -> WorkloadProfile:
    return WorkloadProfile(
        name="oltp_oracle",
        description="TPC-C style online transaction processing on Oracle",
        category="oltp",
        layers=13,
        functions_per_layer=108,
        mean_basic_blocks=19,
        mean_block_length=6.4,
        request_types=7,
        distinct_operations=28,
        deterministic_fraction=0.94,
        loop_fraction=0.15,
        seed=13,
    )


def _dss(query: int, seed: int) -> WorkloadProfile:
    return WorkloadProfile(
        name=f"dss_qry{query}",
        description=f"TPC-H decision-support query {query} on IBM DB2",
        category="dss",
        layers=11,
        functions_per_layer=58,
        mean_basic_blocks=17,
        mean_block_length=4.7,
        request_types=3,
        distinct_operations=16,
        deterministic_fraction=0.97,
        loop_fraction=0.26,
        loop_trip_range=(4, 24),
        seed=seed,
    )


def _media_streaming() -> WorkloadProfile:
    return WorkloadProfile(
        name="media_streaming",
        description="Darwin streaming server serving high-bitrate clients",
        category="media",
        layers=11,
        functions_per_layer=64,
        mean_basic_blocks=17,
        mean_block_length=4.6,
        request_types=4,
        distinct_operations=24,
        deterministic_fraction=0.96,
        loop_fraction=0.2,
        loop_trip_range=(3, 16),
        seed=29,
    )


def _web_frontend() -> WorkloadProfile:
    return WorkloadProfile(
        name="web_frontend",
        description="Apache/SPECweb99 web frontend with fastCGI workers",
        category="web",
        layers=12,
        functions_per_layer=82,
        mean_basic_blocks=18,
        mean_block_length=3.7,
        request_types=6,
        distinct_operations=24,
        deterministic_fraction=0.95,
        loop_fraction=0.14,
        seed=31,
    )


#: All synthetic workload profiles, keyed by name.
WORKLOAD_PROFILES: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in (
        _oltp_db2(),
        _oltp_oracle(),
        _dss(2, seed=17),
        _dss(8, seed=19),
        _dss(17, seed=23),
        _dss(20, seed=25),
        _media_streaming(),
        _web_frontend(),
    )
}

#: The five workload groups the paper's figures report, with a representative
#: profile per group (the four DSS queries are summarised by query 2, matching
#: the paper's practice of averaging "DSS Qrys").
EVALUATION_WORKLOADS: Dict[str, str] = {
    "OLTP DB2": "oltp_db2",
    "OLTP Oracle": "oltp_oracle",
    "DSS Qrys": "dss_qry2",
    "Media Streaming": "media_streaming",
    "Web Frontend": "web_frontend",
}


def get_profile(name: str) -> WorkloadProfile:
    """Look up a profile by name, raising ``KeyError`` with suggestions."""
    try:
        return WORKLOAD_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOAD_PROFILES))
        raise KeyError(f"unknown workload profile {name!r}; known profiles: {known}") from None


def evaluation_profiles(scale: float = 1.0) -> Dict[str, WorkloadProfile]:
    """Return the five evaluation workloads, optionally scaled."""
    profiles = {}
    for label, name in EVALUATION_WORKLOADS.items():
        profile = get_profile(name)
        profiles[label] = profile.scaled(scale) if scale != 1.0 else profile
    return profiles
