"""Synthetic control-flow-graph construction and program layout.

The generator lays out a layered program: requests enter at layer 0 and call
down through successive layers (modelling the deep software stacks of server
workloads), with each function consisting of a chain of basic blocks whose
terminators are conditional branches, loops, calls, indirect dispatches and
returns.  The layout is deterministic for a given profile and seed.

Forward progress guarantees built into the layout:

* direct/indirect jumps and forward conditional branches only target *later*
  basic blocks of the same function,
* loops are backward conditional branches whose dynamic trip counts are
  bounded by the trace walker,
* calls only target functions in strictly deeper layers, bounding call depth
  by the number of layers, and
* the last basic block of every function is a return.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.block import ProgramImage
from repro.isa.instruction import (
    INSTRUCTION_SIZE_BYTES,
    BranchKind,
    Instruction,
)
from repro.workloads.profiles import WorkloadProfile

#: Maximum instructions in a basic block (keeps blocks inside a few cache lines).
_MAX_BLOCK_LENGTH = 12
_MIN_BLOCK_LENGTH = 2


@dataclass(frozen=True)
class BranchBehavior:
    """Dynamic semantics of one branch, used by the trace walker.

    This captures behaviour the static :class:`~repro.isa.Instruction` does
    not encode: taken bias, loop trip counts and indirect target sets.
    """

    pc: int
    kind: BranchKind
    fallthrough: int
    taken_target: Optional[int]
    taken_bias: float = 1.0
    deterministic: bool = True
    is_loop: bool = False
    trip_range: Tuple[int, int] = (1, 1)
    indirect_targets: Tuple[int, ...] = ()


@dataclass
class BasicBlock:
    """A straight-line run of instructions ending in a branch."""

    start: int
    length: int
    terminator_kind: BranchKind
    instructions: List[Instruction] = field(default_factory=list)

    @property
    def terminator_pc(self) -> int:
        return self.start + (self.length - 1) * INSTRUCTION_SIZE_BYTES

    @property
    def end(self) -> int:
        """Address one past the last instruction (start of the next block)."""
        return self.start + self.length * INSTRUCTION_SIZE_BYTES


@dataclass
class Function:
    """A synthetic function: contiguous basic blocks at one stack layer."""

    name: str
    layer: int
    entry: int
    basic_blocks: List[BasicBlock] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return sum(block.length for block in self.basic_blocks) * INSTRUCTION_SIZE_BYTES


class ControlFlowGraph:
    """Static CFG of a synthetic program: functions, blocks and behaviours."""

    def __init__(self) -> None:
        self.functions: List[Function] = []
        self._function_by_entry: Dict[int, Function] = {}
        self._block_by_start: Dict[int, BasicBlock] = {}
        self._behavior_by_pc: Dict[int, BranchBehavior] = {}

    def add_function(self, function: Function) -> None:
        self.functions.append(function)
        self._function_by_entry[function.entry] = function
        for block in function.basic_blocks:
            self._block_by_start[block.start] = block

    def add_behavior(self, behavior: BranchBehavior) -> None:
        self._behavior_by_pc[behavior.pc] = behavior

    def function_at(self, entry: int) -> Optional[Function]:
        return self._function_by_entry.get(entry)

    def block_starting_at(self, address: int) -> Optional[BasicBlock]:
        return self._block_by_start.get(address)

    def behavior_of(self, branch_pc: int) -> BranchBehavior:
        return self._behavior_by_pc[branch_pc]

    def functions_in_layer(self, layer: int) -> List[Function]:
        return [function for function in self.functions if function.layer == layer]

    @property
    def basic_block_count(self) -> int:
        return len(self._block_by_start)

    @property
    def branch_count(self) -> int:
        return len(self._behavior_by_pc)


@dataclass
class SyntheticProgram:
    """A fully laid-out synthetic workload binary."""

    profile: WorkloadProfile
    cfg: ControlFlowGraph
    image: ProgramImage
    entry_points: Tuple[int, ...]

    @property
    def footprint_bytes(self) -> int:
        return self.image.footprint_bytes

    @property
    def static_branch_count(self) -> int:
        return self.image.static_branch_count


class _FunctionPlan:
    """First-pass plan of a function: layer, entry address and block lengths."""

    __slots__ = ("name", "layer", "entry", "block_lengths")

    def __init__(self, name: str, layer: int, entry: int, block_lengths: List[int]) -> None:
        self.name = name
        self.layer = layer
        self.entry = entry
        self.block_lengths = block_lengths


def synthesize_program(profile: WorkloadProfile) -> SyntheticProgram:
    """Lay out a synthetic program for ``profile``.

    The synthesis is a two-pass process: the first pass fixes every function's
    entry address and basic-block sizes so call targets are known; the second
    pass materialises instructions, branch behaviours and the program image.
    """
    rng = random.Random(profile.seed)
    plans = _plan_functions(profile, rng)
    cfg = ControlFlowGraph()
    image = ProgramImage()
    plans_by_layer: Dict[int, List[_FunctionPlan]] = {}
    for plan in plans:
        plans_by_layer.setdefault(plan.layer, []).append(plan)

    for plan in plans:
        function = _materialize_function(plan, plans_by_layer, profile, rng, cfg, image)
        cfg.add_function(function)

    entries = tuple(
        plan.entry for plan in plans_by_layer[0][: profile.request_types]
    )
    return SyntheticProgram(profile=profile, cfg=cfg, image=image, entry_points=entries)


#: Per-process memo of synthesized programs: every consumer of a profile —
#: sweep cells, sessions, heterogeneous CMP cores — reuses one program
#: whether it runs in the parent or shares a worker process.  Programs are
#: comparatively small (their size is bounded by the profile's static
#: layout), so this memo is unbounded.
_PROGRAM_MEMO: Dict[WorkloadProfile, SyntheticProgram] = {}


def workload_program(profile: WorkloadProfile) -> SyntheticProgram:
    """Synthesize (or reuse) the program for ``profile`` in this process."""
    program = _PROGRAM_MEMO.get(profile)
    if program is None:
        program = synthesize_program(profile)
        _PROGRAM_MEMO[profile] = program
    return program


def clear_program_memo() -> None:
    """Drop the per-process program memo (frees its memory)."""
    _PROGRAM_MEMO.clear()


def _plan_functions(profile: WorkloadProfile, rng: random.Random) -> List[_FunctionPlan]:
    plans: List[_FunctionPlan] = []
    address = profile.code_base_address
    for layer in range(profile.layers):
        for index in range(profile.functions_per_layer):
            mean_blocks = profile.mean_basic_blocks
            count = max(2, int(round(rng.gauss(mean_blocks, mean_blocks * 0.35))))
            lengths = [
                _clamp(int(round(rng.gauss(profile.mean_block_length, 1.6))),
                       _MIN_BLOCK_LENGTH, _MAX_BLOCK_LENGTH)
                for _ in range(count)
            ]
            plans.append(_FunctionPlan(f"layer{layer}_fn{index}", layer, address, lengths))
            address += sum(lengths) * INSTRUCTION_SIZE_BYTES
            # Leave an alignment gap between functions, as linkers do.
            address = (address + 63) & ~63
    return plans


def _clamp(value: int, lower: int, upper: int) -> int:
    return max(lower, min(upper, value))


def _materialize_function(
    plan: _FunctionPlan,
    plans_by_layer: Dict[int, List[_FunctionPlan]],
    profile: WorkloadProfile,
    rng: random.Random,
    cfg: ControlFlowGraph,
    image: ProgramImage,
) -> Function:
    block_starts: List[int] = []
    address = plan.entry
    for length in plan.block_lengths:
        block_starts.append(address)
        address += length * INSTRUCTION_SIZE_BYTES

    function = Function(name=plan.name, layer=plan.layer, entry=plan.entry)
    last_index = len(plan.block_lengths) - 1
    callee_layer = plan.layer + 1
    has_deeper_layer = callee_layer in plans_by_layer

    # Functions near the top of the stack are dispatchers: they mostly route
    # requests to lower layers, so their call density is higher.  This keeps
    # the walk from ending before it descends into the service layers.
    call_boost = 1.8 if plan.layer <= 1 else 1.0
    chosen_kinds: List[BranchKind] = []

    for index, length in enumerate(plan.block_lengths):
        start = block_starts[index]
        kind = _choose_terminator(index, last_index, profile, rng, has_deeper_layer, call_boost)
        chosen_kinds.append(kind)
        block = BasicBlock(start=start, length=length, terminator_kind=kind)
        terminator_pc = block.terminator_pc
        fallthrough = block.end

        for slot in range(length - 1):
            instruction = Instruction(address=start + slot * INSTRUCTION_SIZE_BYTES)
            block.instructions.append(instruction)
            image.add_instruction(instruction)

        behavior = _build_terminator(
            kind=kind,
            terminator_pc=terminator_pc,
            fallthrough=fallthrough,
            block_index=index,
            block_starts=block_starts,
            plans_by_layer=plans_by_layer,
            callee_layer=callee_layer,
            profile=profile,
            rng=rng,
            preceding_kinds=chosen_kinds,
        )
        target_for_instruction = behavior.taken_target if behavior.kind.is_direct else None
        terminator = Instruction(
            address=terminator_pc, kind=behavior.kind, target=target_for_instruction
        )
        block.instructions.append(terminator)
        image.add_instruction(terminator)
        cfg.add_behavior(behavior)
        function.basic_blocks.append(block)

    return function


def _choose_terminator(
    index: int,
    last_index: int,
    profile: WorkloadProfile,
    rng: random.Random,
    has_deeper_layer: bool,
    call_boost: float = 1.0,
) -> BranchKind:
    if index == last_index:
        return BranchKind.RETURN
    draw = rng.random()
    threshold = profile.conditional_fraction
    if draw < threshold:
        return BranchKind.CONDITIONAL
    threshold += profile.call_fraction * call_boost
    if draw < threshold:
        return BranchKind.CALL if has_deeper_layer else BranchKind.CONDITIONAL
    threshold += profile.indirect_call_fraction * call_boost
    if draw < threshold:
        return BranchKind.INDIRECT_CALL if has_deeper_layer else BranchKind.CONDITIONAL
    threshold += profile.indirect_jump_fraction
    if draw < threshold:
        return BranchKind.INDIRECT
    threshold += profile.unconditional_fraction
    if draw < threshold:
        return BranchKind.UNCONDITIONAL
    return BranchKind.RETURN


def _build_terminator(
    kind: BranchKind,
    terminator_pc: int,
    fallthrough: int,
    block_index: int,
    block_starts: Sequence[int],
    plans_by_layer: Dict[int, List[_FunctionPlan]],
    callee_layer: int,
    profile: WorkloadProfile,
    rng: random.Random,
    preceding_kinds: Sequence[BranchKind] = (),
) -> BranchBehavior:
    last_index = len(block_starts) - 1

    if kind is BranchKind.RETURN:
        return BranchBehavior(
            pc=terminator_pc,
            kind=kind,
            fallthrough=fallthrough,
            taken_target=None,
            taken_bias=1.0,
        )

    if kind is BranchKind.CONDITIONAL:
        make_loop = block_index > 0 and rng.random() < profile.loop_fraction
        if make_loop:
            # Loop bodies are short (at most two preceding blocks) and must
            # not enclose call sites: compute loops (row scans, comparisons)
            # iterate locally, while calls are executed once per path.  This
            # keeps per-request instruction counts bounded and the call tree
            # wide rather than repetitive.
            candidates = [
                j
                for j in range(max(0, block_index - 2), block_index)
                if not preceding_kinds[j].is_call
            ]
            if candidates:
                target_index = rng.choice(candidates)
                trip_low, trip_high = profile.loop_trip_range
                return BranchBehavior(
                    pc=terminator_pc,
                    kind=kind,
                    fallthrough=fallthrough,
                    taken_target=block_starts[target_index],
                    taken_bias=0.9,
                    deterministic=False,
                    is_loop=True,
                    trip_range=(trip_low, trip_high),
                )
        skip = rng.randint(1, min(6, last_index - block_index))
        target_index = min(last_index, block_index + skip)
        taken_bias = rng.choice(profile.taken_bias_choices)
        deterministic = rng.random() < profile.deterministic_fraction
        if not deterministic:
            # Data-dependent branches still behave in a strongly-biased way in
            # server code; an unbiased coin here would destroy the
            # request-level recurrence real workloads exhibit.
            taken_bias = 0.9 if taken_bias >= 0.5 else 0.1
        return BranchBehavior(
            pc=terminator_pc,
            kind=kind,
            fallthrough=fallthrough,
            taken_target=block_starts[target_index],
            taken_bias=taken_bias,
            deterministic=deterministic,
        )

    if kind is BranchKind.UNCONDITIONAL:
        skip = rng.randint(1, min(4, last_index - block_index))
        target_index = min(last_index, block_index + skip)
        return BranchBehavior(
            pc=terminator_pc,
            kind=kind,
            fallthrough=fallthrough,
            taken_target=block_starts[target_index],
        )

    if kind is BranchKind.INDIRECT:
        candidates = _forward_targets(
            block_starts, block_index, profile.cross_layer_fanout + 1, rng
        )
        return BranchBehavior(
            pc=terminator_pc,
            kind=kind,
            fallthrough=fallthrough,
            taken_target=None,
            indirect_targets=candidates,
        )

    callees = plans_by_layer[callee_layer]
    if kind is BranchKind.CALL:
        callee = rng.choice(callees)
        return BranchBehavior(
            pc=terminator_pc,
            kind=kind,
            fallthrough=fallthrough,
            taken_target=callee.entry,
        )

    if kind is BranchKind.INDIRECT_CALL:
        fanout = min(profile.cross_layer_fanout, len(callees))
        chosen = rng.sample(callees, fanout)
        return BranchBehavior(
            pc=terminator_pc,
            kind=kind,
            fallthrough=fallthrough,
            taken_target=None,
            indirect_targets=tuple(plan.entry for plan in chosen),
        )

    raise ValueError(f"unhandled terminator kind {kind}")


def _forward_targets(
    block_starts: Sequence[int], block_index: int, fanout: int, rng: random.Random
) -> Tuple[int, ...]:
    forward = list(block_starts[block_index + 1 :])
    if not forward:
        return (block_starts[-1],)
    count = min(fanout, len(forward))
    return tuple(rng.sample(forward, count))
