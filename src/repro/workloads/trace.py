"""Fetch-region traces and their statistics.

The frontend mechanisms in the paper all operate on the stream of *fetch
regions* (basic blocks) produced by the branch prediction unit, so the trace
is recorded at that granularity: one fetch region per executed basic block,
carrying the terminating branch and its dynamic outcome.

The canonical storage is columnar — a :class:`~repro.workloads.packed.PackedTrace`
holding one ``array`` per field — which the hot simulation loops index
directly.  :class:`Trace` and :class:`FetchRecord` are the record-level API
on top: ``trace.records`` is a lazy view that materializes a
:class:`FetchRecord` only when one is actually asked for, so code written
against the record interface keeps working while the columnar fast paths
never pay for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
    overload,
)

from repro.isa.instruction import (
    BLOCK_SIZE_BYTES,
    INSTRUCTION_SIZE_BYTES,
    BranchKind,
    block_address,
)
from repro.workloads.packed import (
    NO_VALUE,
    PackedTrace,
    PackedTraceBuilder,
    kind_from_code,
)

# Optional-numpy dance lives in one place; ``_np`` is None when absent and
# the pure path below is the reference.
from repro._np import np as _np


@dataclass(frozen=True)
class FetchRecord:
    """One executed fetch region (basic block) of the correct path.

    Attributes:
        start: address of the first instruction of the region.
        instruction_count: number of instructions executed in the region,
            including the terminating branch when present.
        branch_pc: address of the terminating branch, or None when the region
            ends without a branch (e.g. a trace cut).
        kind: branch kind of the terminating branch, or None.
        taken: dynamic outcome of the terminating branch.
        target: statically-encoded target of the branch (None for indirect
            branches and returns whose target is dynamic).
        next_pc: address of the next fetch region actually executed.
    """

    start: int
    instruction_count: int
    branch_pc: Optional[int]
    kind: Optional[BranchKind]
    taken: bool
    target: Optional[int]
    next_pc: int

    @property
    def end(self) -> int:
        """Address one past the last instruction of the region."""
        return self.start + self.instruction_count * INSTRUCTION_SIZE_BYTES

    @property
    def last_instruction(self) -> int:
        return self.start + (self.instruction_count - 1) * INSTRUCTION_SIZE_BYTES

    @property
    def fallthrough(self) -> int:
        """Address following the terminating branch (used on not-taken)."""
        if self.branch_pc is None:
            return self.end
        return self.branch_pc + INSTRUCTION_SIZE_BYTES

    @property
    def has_branch(self) -> bool:
        return self.branch_pc is not None

    @property
    def is_taken_branch(self) -> bool:
        return self.branch_pc is not None and self.taken

    def blocks(self) -> Tuple[int, ...]:
        """Block addresses touched by the region, in fetch order."""
        first = block_address(self.start)
        last = block_address(self.last_instruction)
        return tuple(range(first, last + 1, BLOCK_SIZE_BYTES))


@dataclass
class TraceStatistics:
    """Aggregate properties of a trace, used to validate workload realism."""

    instruction_count: int = 0
    fetch_region_count: int = 0
    branch_count: int = 0
    taken_branch_count: int = 0
    conditional_count: int = 0
    conditional_taken_count: int = 0
    call_count: int = 0
    return_count: int = 0
    indirect_count: int = 0
    unique_blocks: int = 0
    unique_taken_branches: int = 0

    @property
    def instruction_footprint_bytes(self) -> int:
        return self.unique_blocks * BLOCK_SIZE_BYTES

    @property
    def taken_branch_fraction(self) -> float:
        if self.branch_count == 0:
            return 0.0
        return self.taken_branch_count / self.branch_count

    @property
    def average_region_length(self) -> float:
        if self.fetch_region_count == 0:
            return 0.0
        return self.instruction_count / self.fetch_region_count


class RecordView(Sequence[FetchRecord]):
    """Lazy record-level view of a :class:`PackedTrace`.

    Indexing materializes one :class:`FetchRecord` from the columns;
    iteration streams them without ever holding the whole list.
    """

    __slots__ = ("_packed",)

    def __init__(self, packed: PackedTrace) -> None:
        self._packed = packed

    def __len__(self) -> int:
        return len(self._packed)

    def _record(self, index: int) -> FetchRecord:
        packed = self._packed
        branch_pc = packed.branch_pcs[index]
        target = packed.targets[index]
        return FetchRecord(
            start=packed.starts[index],
            instruction_count=packed.instruction_counts[index],
            branch_pc=branch_pc if branch_pc != NO_VALUE else None,
            kind=kind_from_code(packed.kinds[index]),
            taken=bool(packed.takens[index]),
            target=target if target != NO_VALUE else None,
            next_pc=packed.next_pcs[index],
        )

    @overload
    def __getitem__(self, index: int) -> FetchRecord: ...

    @overload
    def __getitem__(self, index: slice) -> List[FetchRecord]: ...

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[FetchRecord, List[FetchRecord]]:
        if isinstance(index, slice):
            return [self._record(i) for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("record index out of range")
        return self._record(index)

    def __iter__(self) -> Iterator[FetchRecord]:
        packed = self._packed
        for start, count, branch_pc, code, taken, target, next_pc in zip(
            packed.starts,
            packed.instruction_counts,
            packed.branch_pcs,
            packed.kinds,
            packed.takens,
            packed.targets,
            packed.next_pcs,
            strict=True,
        ):
            yield FetchRecord(
                start=start,
                instruction_count=count,
                branch_pc=branch_pc if branch_pc != NO_VALUE else None,
                kind=kind_from_code(code),
                taken=bool(taken),
                target=target if target != NO_VALUE else None,
                next_pc=next_pc,
            )


def pack_records(
    records: Iterable[FetchRecord], name: str = "trace"
) -> PackedTrace:
    """Pack a record sequence into columns (the view-path constructor)."""
    builder = PackedTraceBuilder(name=name)
    for record in records:
        builder.append_record(record)
    return builder.build()


class Trace:
    """A fetch-region trace: columnar storage, record-level API.

    May be constructed from a sequence of :class:`FetchRecord` (packed on
    the spot) or, via :meth:`from_packed`, directly over an existing
    :class:`~repro.workloads.packed.PackedTrace` — the generator and the
    on-disk trace store use the latter, so no record objects exist unless a
    consumer asks for them.
    """

    def __init__(
        self,
        records: Union[Sequence[FetchRecord], PackedTrace],
        name: str = "trace",
    ) -> None:
        self.name = name
        if isinstance(records, PackedTrace):
            self._packed = records
        else:
            self._packed = pack_records(records, name=name)

    @classmethod
    def from_packed(cls, packed: PackedTrace, name: Optional[str] = None) -> "Trace":
        return cls(packed, name=name if name is not None else packed.name)

    @property
    def packed(self) -> PackedTrace:
        """The columnar storage behind this trace."""
        return self._packed

    def __iter__(self) -> Iterator[FetchRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self._packed)

    def __getitem__(self, index: int) -> FetchRecord:
        return self.records[index]

    @property
    def records(self) -> RecordView:
        return RecordView(self._packed)

    @property
    def instruction_count(self) -> int:
        return self._packed.instruction_count

    def block_stream(self) -> Iterator[int]:
        """Block addresses in fetch order with consecutive duplicates removed.

        This is the stream an L1-I front end observes: repeated accesses to
        the same block within a fetch region (or across back-to-back regions)
        do not re-access the cache.
        """
        previous = None
        for block in self._packed.iter_blocks():
            if block != previous:
                yield block
                previous = block

    def taken_branches(self) -> Iterator[Tuple[int, Optional[int]]]:
        """(branch_pc, actual_target) pairs for every taken branch."""
        packed = self._packed
        for branch_pc, taken, next_pc in zip(
            packed.branch_pcs, packed.takens, packed.next_pcs,
            strict=True,
        ):
            if branch_pc != NO_VALUE and taken:
                yield branch_pc, next_pc

    def statistics(self) -> TraceStatistics:
        (
            instructions,
            regions,
            branches,
            taken,
            conditionals,
            conditional_taken,
            calls,
            returns,
            indirects,
            unique_blocks,
            unique_taken,
        ) = self._packed.statistics_tuple()
        return TraceStatistics(
            instruction_count=instructions,
            fetch_region_count=regions,
            branch_count=branches,
            taken_branch_count=taken,
            conditional_count=conditionals,
            conditional_taken_count=conditional_taken,
            call_count=calls,
            return_count=returns,
            indirect_count=indirects,
            unique_blocks=unique_blocks,
            unique_taken_branches=unique_taken,
        )

    def branch_density(self) -> Dict[str, float]:
        """Static and dynamic branch density per touched block (Table 2).

        *Static* is the mean number of distinct branch PCs observed per
        touched block over the whole trace; *dynamic* approximates the mean
        number of distinct taken branches exercised per block per visit
        episode, the quantity Table 2 reports for block residency in the
        L1-I.

        With numpy present the reduction is vectorized;
        :meth:`branch_density_reference` keeps the pure columnar loop as the
        behavioral reference, and the test suite asserts the two agree.
        """
        if _np is not None and len(self._packed):
            return self._branch_density_numpy()
        return self.branch_density_reference()

    def _branch_density_numpy(self) -> Dict[str, float]:
        np = _np
        packed = self._packed
        branch_pcs = np.frombuffer(packed.branch_pcs, dtype=np.int64)
        takens = np.frombuffer(packed.takens, dtype=np.int8) != 0
        has_branch = branch_pcs != NO_VALUE
        branch_pcs = branch_pcs[has_branch]
        takens = takens[has_branch]
        if branch_pcs.size == 0:
            return {"static": 0.0, "dynamic": 0.0}
        blocks = branch_pcs & ~np.int64(BLOCK_SIZE_BYTES - 1)

        # Static: each branch PC belongs to exactly one block, so the mean
        # per-block set size is simply (distinct PCs) / (distinct blocks).
        static = np.unique(branch_pcs).size / np.unique(blocks).size

        # Dynamic: an episode is a maximal run of branches in one block;
        # the mean per-episode distinct-taken-PC count is the number of
        # distinct (episode, PC) pairs among taken branches over the number
        # of episodes.
        episode = np.empty(blocks.size, dtype=np.int64)
        episode[0] = 0
        np.cumsum(blocks[1:] != blocks[:-1], out=episode[1:])
        episodes = int(episode[-1]) + 1
        taken_pairs = np.stack([episode[takens], branch_pcs[takens]], axis=1)
        distinct_taken = np.unique(taken_pairs, axis=0).shape[0]
        return {"static": float(static), "dynamic": distinct_taken / episodes}

    def branch_density_reference(self) -> Dict[str, float]:
        """The pure columnar density loop (the vectorized path's oracle)."""
        packed = self._packed
        static_branches: Dict[int, Set[int]] = {}
        dynamic_counts: List[int] = []
        current_block: Optional[int] = None
        current_branches: Set[int] = set()
        for branch_pc, taken in zip(packed.branch_pcs, packed.takens, strict=True):
            if branch_pc == NO_VALUE:
                continue
            branch_block = block_address(branch_pc)
            static_branches.setdefault(branch_block, set()).add(branch_pc)
            if branch_block != current_block:
                if current_block is not None:
                    dynamic_counts.append(len(current_branches))
                current_block = branch_block
                current_branches = set()
            if taken:
                current_branches.add(branch_pc)
        if current_block is not None:
            dynamic_counts.append(len(current_branches))
        static = (
            sum(len(pcs) for pcs in static_branches.values()) / len(static_branches)
            if static_branches
            else 0.0
        )
        dynamic = sum(dynamic_counts) / len(dynamic_counts) if dynamic_counts else 0.0
        return {"static": static, "dynamic": dynamic}

    def head(self, count: int) -> "Trace":
        """Return a new trace containing the first ``count`` records."""
        return Trace.from_packed(
            self._packed.slice(0, count), name=f"{self.name}[:{count}]"
        )

    @classmethod
    def concatenate(cls, traces: Iterable["Trace"], name: str = "concat") -> "Trace":
        packed = PackedTrace.concatenate(
            (trace.packed for trace in traces), name=name
        )
        return cls.from_packed(packed, name=name)
