"""Fetch-region traces and their statistics.

The frontend mechanisms in the paper all operate on the stream of *fetch
regions* (basic blocks) produced by the branch prediction unit, so the trace
is recorded at that granularity: one :class:`FetchRecord` per executed basic
block, carrying the terminating branch and its dynamic outcome.  Instruction
and block-level streams are derived views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.isa.instruction import (
    BLOCK_SIZE_BYTES,
    INSTRUCTION_SIZE_BYTES,
    BranchKind,
    block_address,
)


@dataclass(frozen=True)
class FetchRecord:
    """One executed fetch region (basic block) of the correct path.

    Attributes:
        start: address of the first instruction of the region.
        instruction_count: number of instructions executed in the region,
            including the terminating branch when present.
        branch_pc: address of the terminating branch, or None when the region
            ends without a branch (e.g. a trace cut).
        kind: branch kind of the terminating branch, or None.
        taken: dynamic outcome of the terminating branch.
        target: statically-encoded target of the branch (None for indirect
            branches and returns whose target is dynamic).
        next_pc: address of the next fetch region actually executed.
    """

    start: int
    instruction_count: int
    branch_pc: Optional[int]
    kind: Optional[BranchKind]
    taken: bool
    target: Optional[int]
    next_pc: int

    @property
    def end(self) -> int:
        """Address one past the last instruction of the region."""
        return self.start + self.instruction_count * INSTRUCTION_SIZE_BYTES

    @property
    def last_instruction(self) -> int:
        return self.start + (self.instruction_count - 1) * INSTRUCTION_SIZE_BYTES

    @property
    def fallthrough(self) -> int:
        """Address following the terminating branch (used on not-taken)."""
        if self.branch_pc is None:
            return self.end
        return self.branch_pc + INSTRUCTION_SIZE_BYTES

    @property
    def has_branch(self) -> bool:
        return self.branch_pc is not None

    @property
    def is_taken_branch(self) -> bool:
        return self.branch_pc is not None and self.taken

    def blocks(self) -> Tuple[int, ...]:
        """Block addresses touched by the region, in fetch order."""
        first = block_address(self.start)
        last = block_address(self.last_instruction)
        return tuple(range(first, last + 1, BLOCK_SIZE_BYTES))


@dataclass
class TraceStatistics:
    """Aggregate properties of a trace, used to validate workload realism."""

    instruction_count: int = 0
    fetch_region_count: int = 0
    branch_count: int = 0
    taken_branch_count: int = 0
    conditional_count: int = 0
    conditional_taken_count: int = 0
    call_count: int = 0
    return_count: int = 0
    indirect_count: int = 0
    unique_blocks: int = 0
    unique_taken_branches: int = 0

    @property
    def instruction_footprint_bytes(self) -> int:
        return self.unique_blocks * BLOCK_SIZE_BYTES

    @property
    def taken_branch_fraction(self) -> float:
        if self.branch_count == 0:
            return 0.0
        return self.taken_branch_count / self.branch_count

    @property
    def average_region_length(self) -> float:
        if self.fetch_region_count == 0:
            return 0.0
        return self.instruction_count / self.fetch_region_count


class Trace:
    """A materialized sequence of fetch records plus derived statistics."""

    def __init__(self, records: Sequence[FetchRecord], name: str = "trace") -> None:
        self.name = name
        self._records: List[FetchRecord] = list(records)

    def __iter__(self) -> Iterator[FetchRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index: int) -> FetchRecord:
        return self._records[index]

    @property
    def records(self) -> Sequence[FetchRecord]:
        return self._records

    @property
    def instruction_count(self) -> int:
        return sum(record.instruction_count for record in self._records)

    def block_stream(self) -> Iterator[int]:
        """Block addresses in fetch order with consecutive duplicates removed.

        This is the stream an L1-I front end observes: repeated accesses to
        the same block within a fetch region (or across back-to-back regions)
        do not re-access the cache.
        """
        previous = None
        for record in self._records:
            for block in record.blocks():
                if block != previous:
                    yield block
                    previous = block

    def taken_branches(self) -> Iterator[Tuple[int, Optional[int]]]:
        """(branch_pc, actual_target) pairs for every taken branch."""
        for record in self._records:
            if record.is_taken_branch:
                yield record.branch_pc, record.next_pc

    def statistics(self) -> TraceStatistics:
        stats = TraceStatistics()
        blocks: Set[int] = set()
        taken_pcs: Set[int] = set()
        for record in self._records:
            stats.fetch_region_count += 1
            stats.instruction_count += record.instruction_count
            blocks.update(record.blocks())
            if record.branch_pc is None:
                continue
            stats.branch_count += 1
            if record.kind is BranchKind.CONDITIONAL:
                stats.conditional_count += 1
                if record.taken:
                    stats.conditional_taken_count += 1
            if record.kind is not None and record.kind.is_call:
                stats.call_count += 1
            if record.kind is BranchKind.RETURN:
                stats.return_count += 1
            if record.kind is not None and record.kind.is_indirect:
                stats.indirect_count += 1
            if record.taken:
                stats.taken_branch_count += 1
                taken_pcs.add(record.branch_pc)
        stats.unique_blocks = len(blocks)
        stats.unique_taken_branches = len(taken_pcs)
        return stats

    def branch_density(self) -> Dict[str, float]:
        """Static and dynamic branch density per touched block (Table 2).

        *Static* is the mean number of distinct branch PCs observed per
        touched block over the whole trace; *dynamic* approximates the mean
        number of distinct taken branches exercised per block per visit
        episode, the quantity Table 2 reports for block residency in the
        L1-I.
        """
        static_branches: Dict[int, Set[int]] = {}
        dynamic_counts: List[int] = []
        current_block: Optional[int] = None
        current_branches: Set[int] = set()
        for record in self._records:
            if record.branch_pc is None:
                continue
            branch_block = block_address(record.branch_pc)
            static_branches.setdefault(branch_block, set()).add(record.branch_pc)
            if branch_block != current_block:
                if current_block is not None:
                    dynamic_counts.append(len(current_branches))
                current_block = branch_block
                current_branches = set()
            if record.taken:
                current_branches.add(record.branch_pc)
        if current_block is not None:
            dynamic_counts.append(len(current_branches))
        static = (
            sum(len(pcs) for pcs in static_branches.values()) / len(static_branches)
            if static_branches
            else 0.0
        )
        dynamic = sum(dynamic_counts) / len(dynamic_counts) if dynamic_counts else 0.0
        return {"static": static, "dynamic": dynamic}

    def head(self, count: int) -> "Trace":
        """Return a new trace containing the first ``count`` records."""
        return Trace(self._records[:count], name=f"{self.name}[:{count}]")

    @classmethod
    def concatenate(cls, traces: Iterable["Trace"], name: str = "concat") -> "Trace":
        records: List[FetchRecord] = []
        for trace in traces:
            records.extend(trace.records)
        return cls(records, name=name)
