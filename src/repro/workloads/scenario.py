"""Consolidation scenarios: heterogeneous multi-program workload mixes.

The paper's deployment model is a *consolidated* scale-out server: many
co-located server workloads sharing one chip — OLTP next to decision
support next to media streaming — yet a homogeneous CMP run replays one
profile on every core.  A :class:`Scenario` closes that gap: it names a
per-core workload assignment as pure data (a profile mix with relative
weights, optional per-entry instruction budgets), and binding it to a core
count deals the cores out deterministically.

Two layers, mirroring ``DesignSpec`` / design instantiation:

* :class:`Scenario` is the declarative spec — profile *names* plus weights,
  reusable at any core count or scale.  The :data:`SCENARIOS` catalog and
  :func:`register_scenario` mirror ``DESIGN_POINTS`` /
  ``register_design_point``.
* :class:`BoundScenario` is the resolved form — one :class:`CoreWorkload`
  (profile, trace seed, instruction budget) per core — produced by
  :meth:`Scenario.bind`.  It is frozen, hashable and JSON-flattenable, so it
  can key sweep-cell caches and CMP-driver memos directly: the bound
  assignment *is* the scenario's full parameter closure.

Trace seeds are **per-profile**, not per-core: the k-th core running a
profile gets seed ``trace_seed_base + k`` regardless of which slot the mix
dealt it.  Two consequences fall out:

* a single-entry scenario assigns exactly the seeds the homogeneous
  ``ChipMultiprocessor`` uses, so the degenerate case reproduces a
  homogeneous run bit for bit, and
* scenarios that share a (profile, seed, length) — with each other, or with
  plain homogeneous sweeps — share the same trace-store artifacts, so a
  mixed sweep over a warm store performs zero trace generations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.registry import unknown_name_error
from repro.workloads.profiles import WorkloadProfile, get_profile

__all__ = [
    "SCENARIOS",
    "BoundScenario",
    "CoreWorkload",
    "Scenario",
    "ScenarioEntry",
    "get_scenario",
    "register_scenario",
    "resolve_scenario",
    "scenario_from_profile",
]


@dataclass(frozen=True)
class ScenarioEntry:
    """One workload of a mix: a profile plus its share of the chip.

    Attributes:
        profile: profile name (``"oltp_db2"``) or an ad-hoc
            :class:`~repro.workloads.profiles.WorkloadProfile` instance.
        weight: relative share of the cores (dealt by largest remainder).
        instructions: per-core trace length for this entry's cores; ``None``
            defers to the bind-time default, then to the (scaled) profile's
            own recommendation.
    """

    profile: Union[str, WorkloadProfile]
    weight: int = 1
    instructions: Optional[int] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("scenario entry weights must be positive")
        if self.instructions is not None and self.instructions <= 0:
            raise ValueError("scenario entry instruction budgets must be positive")

    @property
    def profile_name(self) -> str:
        if isinstance(self.profile, WorkloadProfile):
            return self.profile.name
        return self.profile


@dataclass(frozen=True)
class CoreWorkload:
    """The fully resolved workload of one core: the trace's closure."""

    profile: WorkloadProfile
    seed: int
    instructions: int


@dataclass(frozen=True)
class BoundScenario:
    """A scenario resolved against a core count: one workload per core.

    The assignment tuple is the scenario's full parameter closure — every
    per-core trace is a pure function of its :class:`CoreWorkload` — which is
    what lets sweep cells key their result cache on it directly.
    """

    name: str
    assignments: Tuple[CoreWorkload, ...]

    def __post_init__(self) -> None:
        if not self.assignments:
            raise ValueError("a bound scenario needs at least one core")

    def __len__(self) -> int:
        return len(self.assignments)

    def __iter__(self) -> Iterator[CoreWorkload]:
        return iter(self.assignments)

    @property
    def cores(self) -> int:
        return len(self.assignments)

    @property
    def instructions_per_core(self) -> int:
        """The widest core's budget (reporting aid; budgets may differ)."""
        return max(workload.instructions for workload in self.assignments)

    @property
    def profiles(self) -> Tuple[WorkloadProfile, ...]:
        """Distinct per-core profiles, in first-appearance order."""
        seen: Dict[WorkloadProfile, None] = {}
        for workload in self.assignments:
            seen.setdefault(workload.profile)
        return tuple(seen)

    def core_counts(self) -> Dict[str, int]:
        """``{profile name: cores assigned}`` (presentation helper)."""
        counts: Dict[str, int] = {}
        for workload in self.assignments:
            counts[workload.profile.name] = counts.get(workload.profile.name, 0) + 1
        return counts


def _deal_cores(weights: Sequence[int], cores: int) -> List[int]:
    """Largest-remainder apportionment of ``cores`` over ``weights``.

    Integer arithmetic throughout, ties broken by entry order, so the deal
    is deterministic on every platform.
    """
    total = sum(weights)
    counts = [weight * cores // total for weight in weights]
    remainders = [weight * cores % total for weight in weights]
    leftover = cores - sum(counts)
    for index in sorted(range(len(weights)), key=lambda i: (-remainders[i], i))[:leftover]:
        counts[index] += 1
    return counts


@dataclass(frozen=True)
class Scenario:
    """Named heterogeneous workload mix for a consolidated CMP.

    Attributes:
        name: catalog key and the workload name CMP results report.
        description: what the consolidation models.
        entries: the profile mix; cores are dealt to entries in order,
            proportionally to their weights (largest remainder).
    """

    name: str
    description: str
    entries: Tuple[ScenarioEntry, ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise ValueError("a scenario needs at least one entry")

    @property
    def profile_names(self) -> Tuple[str, ...]:
        return tuple(entry.profile_name for entry in self.entries)

    def bind(
        self,
        cores: int = 16,
        scale: float = 1.0,
        instructions_per_core: Optional[int] = None,
        trace_seed_base: int = 100,
    ) -> BoundScenario:
        """Resolve the mix against a chip: one :class:`CoreWorkload` per core.

        ``scale`` shrinks every profile (exactly as homogeneous sweeps do);
        ``instructions_per_core`` is the budget for entries that do not carry
        their own, falling back to each scaled profile's recommendation.
        Entries get contiguous core ranges in declaration order; the k-th
        core of a *profile* gets seed ``trace_seed_base + k``, so the
        degenerate single-profile scenario reproduces the homogeneous seed
        assignment and overlapping mixes share trace-store artifacts.

        Every entry must receive at least one core: a "consolidation" that
        silently dropped a workload would run (and cache, and report) under
        a name promising a mix it does not contain, so too few cores raise.
        """
        if cores <= 0:
            raise ValueError("a scenario binds to at least one core")
        resolved: List[Tuple[WorkloadProfile, ScenarioEntry]] = []
        for entry in self.entries:
            profile = entry.profile
            if isinstance(profile, str):
                profile = get_profile(profile)
            if scale != 1.0:
                profile = profile.scaled(scale)
            resolved.append((profile, entry))
        counts = _deal_cores([entry.weight for entry in self.entries], cores)
        starved = [
            entry.profile_name
            for entry, count in zip(self.entries, counts, strict=True) if count == 0
        ]
        if starved:
            raise ValueError(
                f"scenario {self.name!r} needs at least {len(self.entries)} "
                f"cores so every entry gets one; at cores={cores} the deal "
                f"leaves no cores for: {', '.join(starved)}"
            )
        occurrences: Dict[WorkloadProfile, int] = {}
        assignments: List[CoreWorkload] = []
        for (profile, entry), count in zip(resolved, counts, strict=True):
            instructions = (
                entry.instructions
                or instructions_per_core
                or profile.recommended_trace_instructions
            )
            for _ in range(count):
                position = occurrences.get(profile, 0)
                occurrences[profile] = position + 1
                assignments.append(
                    CoreWorkload(
                        profile=profile,
                        seed=trace_seed_base + position,
                        instructions=instructions,
                    )
                )
        return BoundScenario(name=self.name, assignments=tuple(assignments))


def scenario_from_profile(
    profile: Union[str, WorkloadProfile], name: Optional[str] = None
) -> Scenario:
    """The degenerate scenario: every core runs ``profile``.

    Bit-identical to the homogeneous :class:`~repro.core.cmp.ChipMultiprocessor`
    path (the parity the scenario tests pin).
    """
    profile_name = profile.name if isinstance(profile, WorkloadProfile) else profile
    return Scenario(
        name=name if name is not None else profile_name,
        description=f"every core runs {profile_name} (homogeneous)",
        entries=(ScenarioEntry(profile=profile),),
    )


def _builtin_scenarios() -> Tuple[Scenario, ...]:
    return (
        Scenario(
            name="consolidated_oltp_dss",
            description=(
                "transaction processing consolidated with decision support: "
                "half the cores serve TPC-C on DB2, half scan TPC-H query 2"
            ),
            entries=(
                ScenarioEntry(profile="oltp_db2"),
                ScenarioEntry(profile="dss_qry2"),
            ),
        ),
        Scenario(
            name="noisy_neighbor_media",
            description=(
                "a latency-sensitive web frontend sharing the chip with a "
                "streaming neighbor: three web cores per media core"
            ),
            entries=(
                ScenarioEntry(profile="web_frontend", weight=3),
                ScenarioEntry(profile="media_streaming", weight=1),
            ),
        ),
        Scenario(
            name="scale_out_consolidation",
            description=(
                "the whole evaluation suite co-located on one chip: OLTP on "
                "DB2 and Oracle, DSS, media streaming and the web frontend"
            ),
            entries=(
                ScenarioEntry(profile="oltp_db2"),
                ScenarioEntry(profile="oltp_oracle"),
                ScenarioEntry(profile="dss_qry2"),
                ScenarioEntry(profile="media_streaming"),
                ScenarioEntry(profile="web_frontend"),
            ),
        ),
    )


#: Mutable catalog of named scenarios.  Extend via :func:`register_scenario`
#: rather than writing to it directly (the ``DESIGN_POINTS`` idiom).
SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario for scenario in _builtin_scenarios()
}


def register_scenario(scenario: Scenario, overwrite: bool = False) -> Scenario:
    """Add ``scenario`` to the catalog under ``scenario.name``."""
    if not overwrite and scenario.name in SCENARIOS:
        raise ValueError(
            f"scenario {scenario.name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a catalog scenario by name (with suggestions on a miss)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise unknown_name_error("scenario", name, SCENARIOS) from None


def resolve_scenario(scenario: Union[str, Scenario]) -> Scenario:
    """The single catalog lookup (shared by sweeps, Session and the CLI)."""
    if isinstance(scenario, Scenario):
        return scenario
    return get_scenario(scenario)
