"""Columnar (structure-of-arrays) fetch-region traces.

A trace is a long, homogeneous stream of fetch regions, and every consumer —
the frontend timing loop, the prefetchers, the statistics — walks it start to
finish.  Materializing one frozen dataclass per region makes that walk pay
Python object construction and attribute-protocol overhead per region, and
makes a trace cost hundreds of bytes of heap per record.  :class:`PackedTrace`
stores the same information as parallel ``array`` columns (~50 bytes per
region), which the hot loops index directly; :class:`repro.workloads.trace.Trace`
keeps the record-level API as thin lazy views on top.

Columns (one slot per fetch region):

* ``starts`` — address of the region's first instruction,
* ``instruction_counts`` — instructions executed in the region,
* ``branch_pcs`` — terminating branch address (``-1`` = no branch),
* ``kinds`` — :data:`KIND_CODES` index of the branch kind (``-1`` = none),
* ``takens`` — dynamic outcome of the terminating branch (0/1),
* ``targets`` — statically-encoded target (``-1`` = none/dynamic),
* ``next_pcs`` — address of the next region actually executed,
* ``block_firsts`` / ``block_counts`` — precomputed span of 64 B instruction
  blocks the region touches, so the L1-I loops never recompute it.

Traces are built through :class:`PackedTraceBuilder`, which buffers appends
in plain lists and flushes them into the arrays in chunks, so generation
never holds more than one chunk of Python objects.  :meth:`PackedTrace.save`
and :meth:`PackedTrace.load` give traces a compact binary on-disk form (the
:class:`repro.sweep.TraceStore` artifact format); the file layout is itself
chunked, so arbitrarily long traces can be streamed to disk with
:func:`save_chunks` without ever being resident in memory at once.

Columns may be ``array`` objects (the heap form) or read-only
``memoryview``s over an ``mmap`` of the on-disk artifact —
``load_packed(path, mmap=True)`` maps a single-chunk, native-byte-order
file without copying a byte, so every process sharing a trace store reads
the same page-cache pages instead of each holding a private heap copy.
Mapped traces behave identically (the parity suite pins it); pickling one
(e.g. handing it to a worker process) materializes heap arrays.

``numpy`` is optional: when present it accelerates the
:attr:`PackedTrace.instruction_count` and :meth:`PackedTrace.statistics_tuple`
reductions; the pure-``array`` walks (:meth:`PackedTrace.fold_statistics`)
remain the behavioral reference, and the test suite asserts the two agree.
"""

from __future__ import annotations

import mmap as _mmap_module
import struct
import sys
from array import array
from pathlib import Path
from typing import (
    IO,
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.isa.instruction import (
    BLOCK_SIZE_BYTES,
    INSTRUCTION_SIZE_BYTES,
    BranchKind,
    block_address,
)

if TYPE_CHECKING:  # import cycle guard: trace.py imports this module
    from repro.workloads.trace import FetchRecord

# Optional-numpy dance lives in one place; ``_np`` is None when absent and
# the array path below is the reference.
from repro._np import np as _np

__all__ = [
    "KIND_CODES",
    "PACKED_TRACE_FORMAT_VERSION",
    "PackedTrace",
    "PackedTraceBuilder",
    "kind_code",
    "kind_from_code",
    "load_packed",
    "save_chunks",
]

#: Branch-kind encoding used by the ``kinds`` column; index = stored code.
KIND_CODES: Tuple[BranchKind, ...] = (
    BranchKind.CONDITIONAL,
    BranchKind.UNCONDITIONAL,
    BranchKind.CALL,
    BranchKind.INDIRECT,
    BranchKind.INDIRECT_CALL,
    BranchKind.RETURN,
)

_KIND_TO_CODE = {kind: code for code, kind in enumerate(KIND_CODES)}

#: Sentinel for "no value" in the address-valued columns and ``kinds``.
NO_VALUE = -1

#: Bumped whenever the on-disk column layout changes meaning; readers reject
#: files written under another version instead of misreading them.
PACKED_TRACE_FORMAT_VERSION = 1

#: (column attribute, array typecode).  ``q`` columns hold addresses (or the
#: ``-1`` sentinel), ``i`` columns hold small counts, ``b`` columns hold the
#: kind code / taken flag.  The order is the on-disk column order.
_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("starts", "q"),
    ("instruction_counts", "i"),
    ("branch_pcs", "q"),
    ("kinds", "b"),
    ("takens", "b"),
    ("targets", "q"),
    ("next_pcs", "q"),
    ("block_firsts", "q"),
    ("block_counts", "i"),
)

_MAGIC = b"RPKT"
_HEADER = struct.Struct("<4sHBB")  # magic, format version, byteorder, reserved
_CHUNK_MARKER = struct.Struct("<B")  # 1 = chunk follows, 0 = trailer follows
_U16 = struct.Struct("<H")
_U64 = struct.Struct("<Q")
_TRAILER = struct.Struct("<QQ")  # total regions, total instructions


def kind_code(kind: Optional[BranchKind]) -> int:
    """Column encoding of a branch kind (``-1`` for no branch)."""
    if kind is None:
        return NO_VALUE
    return _KIND_TO_CODE[kind]


def kind_from_code(code: int) -> Optional[BranchKind]:
    """Inverse of :func:`kind_code`."""
    if code == NO_VALUE:
        return None
    return KIND_CODES[code]


def _empty_columns() -> List[array]:
    return [array(typecode) for _, typecode in _COLUMNS]


#: A column is either a heap ``array`` or a (cast) read-only ``memoryview``
#: over an mmap of the artifact file; both index, slice, iterate and
#: ``tobytes()`` identically, which is all the consumers use.
Column = Union[array, memoryview]


def _column_typecode(column: Column) -> str:
    """Element type of a column, whichever backing it has."""
    typecode = getattr(column, "typecode", None)
    if typecode is not None:
        return typecode
    return column.format


class PackedTrace:
    """Structure-of-arrays representation of a fetch-region trace.

    Instances are built by :class:`PackedTraceBuilder` (or :func:`load_packed`)
    and are conceptually immutable afterwards; consumers index the column
    attributes directly.  Columns are ``array``s, or ``memoryview``s over an
    mmap of the on-disk artifact (see :meth:`from_buffers` /
    ``load_packed(path, mmap=True)``); :attr:`mapped` tells the two apart.
    """

    __slots__ = tuple(name for name, _ in _COLUMNS) + (
        "name",
        "_instruction_count",
    )

    def __init__(self, columns: Iterable[Column], name: str = "trace") -> None:
        columns = list(columns)
        if len(columns) != len(_COLUMNS):
            raise ValueError(
                f"expected {len(_COLUMNS)} columns, got {len(columns)}"
            )
        lengths = {len(column) for column in columns}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        for (attr, typecode), column in zip(_COLUMNS, columns, strict=True):
            if _column_typecode(column) != typecode:
                raise ValueError(
                    f"column {attr!r} must have typecode {typecode!r}, "
                    f"got {_column_typecode(column)!r}"
                )
            setattr(self, attr, column)
        self.name = name
        self._instruction_count: Optional[int] = None

    @classmethod
    def from_buffers(
        cls, buffers: Sequence[Column], name: str = "trace"
    ) -> "PackedTrace":
        """Wrap existing column buffers (typically mmap-backed memoryviews).

        The buffers are adopted as-is — no copy — so the caller's backing
        storage (an ``mmap``, a shared-memory segment) serves every read.
        The memoryviews keep their exporter alive, so the mapping cannot be
        reclaimed while any view (or any :meth:`slice` of one) is reachable.
        """
        return cls(buffers, name=name)

    @property
    def mapped(self) -> bool:
        """True when the columns are memoryviews over an mmap, not arrays."""
        return isinstance(self.starts, memoryview)

    def __reduce__(
        self,
    ) -> Tuple[
        Callable[[str, Tuple[bytes, ...]], "PackedTrace"],
        Tuple[str, Tuple[bytes, ...]],
    ]:
        # Pickling (e.g. shipping a trace to a worker process) materializes
        # heap arrays: a memoryview cannot cross a process boundary, and the
        # receiving side re-maps from the artifact path when it wants
        # zero-copy (the sweep scheduler hands workers paths, not traces).
        raw = tuple(
            getattr(self, attr).tobytes() for attr, _ in _COLUMNS
        )
        return (_unpickle_packed, (self.name, raw))

    # ------------------------------------------------------------------ #
    # Basic shape
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.starts)

    @property
    def instruction_count(self) -> int:
        if self._instruction_count is None:
            if _np is not None:
                self._instruction_count = int(
                    _np.frombuffer(self.instruction_counts, dtype=_np.int32).sum()
                ) if len(self.instruction_counts) else 0
            else:
                self._instruction_count = sum(self.instruction_counts)
        return self._instruction_count

    def region_blocks(self, index: int) -> Tuple[int, ...]:
        """Block addresses touched by region ``index``, in fetch order."""
        first = self.block_firsts[index]
        count = self.block_counts[index]
        return tuple(range(first, first + count * BLOCK_SIZE_BYTES, BLOCK_SIZE_BYTES))

    def slice(self, start: int, stop: Optional[int] = None) -> "PackedTrace":
        """A new packed trace over ``[start:stop]`` (list-slice semantics)."""
        return PackedTrace(
            (getattr(self, attr)[start:stop] for attr, _ in _COLUMNS),
            name=self.name,
        )

    @classmethod
    def concatenate(
        cls, traces: Iterable["PackedTrace"], name: str = "concat"
    ) -> "PackedTrace":
        columns = _empty_columns()
        for trace in traces:
            for column, (attr, _) in zip(columns, _COLUMNS, strict=True):
                column.extend(getattr(trace, attr))
        return cls(columns, name=name)

    # ------------------------------------------------------------------ #
    # Columnar walks
    # ------------------------------------------------------------------ #

    def iter_block_spans(self) -> Iterator[Tuple[int, int]]:
        """(first block address, block count) per region, in trace order."""
        return zip(self.block_firsts, self.block_counts, strict=True)

    def iter_blocks(self) -> Iterator[int]:
        """Every block address touched, region by region, in fetch order
        (duplicates included — the L1-I dedup lives in ``Trace.block_stream``).
        """
        block_size = BLOCK_SIZE_BYTES
        for first, count in zip(self.block_firsts, self.block_counts, strict=True):
            if count == 1:
                yield first
            else:
                yield from range(first, first + count * block_size, block_size)

    def fold_statistics(
        self, counters: List[int], blocks: Set[int], taken_pcs: Set[int]
    ) -> None:
        """Fold this trace's regions into running statistics accumulators.

        ``counters`` is a mutable 9-slot list of the additive counts
        ``[instructions, regions, branches, taken, conditionals,
        conditional_taken, calls, returns, indirects]``; the unique block
        addresses and taken branch PCs accumulate in the two sets.  Chunked
        consumers (streamed generation) fold each chunk as it is produced,
        so statistics never require the whole trace in memory.
        """
        blocks.update(self.iter_blocks())
        counters[0] += self.instruction_count
        counters[1] += len(self)
        cond = _KIND_TO_CODE[BranchKind.CONDITIONAL]
        ret = _KIND_TO_CODE[BranchKind.RETURN]
        call_codes = (
            _KIND_TO_CODE[BranchKind.CALL],
            _KIND_TO_CODE[BranchKind.INDIRECT_CALL],
        )
        indirect_codes = (
            _KIND_TO_CODE[BranchKind.INDIRECT],
            _KIND_TO_CODE[BranchKind.INDIRECT_CALL],
            _KIND_TO_CODE[BranchKind.RETURN],
        )
        for branch_pc, code, taken in zip(self.branch_pcs, self.kinds, self.takens, strict=True):
            if branch_pc == NO_VALUE:
                continue
            counters[2] += 1
            if code == cond:
                counters[4] += 1
                if taken:
                    counters[5] += 1
            if code in call_codes:
                counters[6] += 1
            if code == ret:
                counters[7] += 1
            if code in indirect_codes:
                counters[8] += 1
            if taken:
                counters[3] += 1
                taken_pcs.add(branch_pc)

    def statistics_tuple(self) -> Tuple[int, ...]:
        """Aggregate counters in one columnar pass.

        Returns the raw counter tuple ``(instructions, regions, branches,
        taken, conditionals, conditional_taken, calls, returns, indirects,
        unique_blocks, unique_taken_branches)``;
        :meth:`repro.workloads.trace.Trace.statistics` wraps it in a
        :class:`~repro.workloads.trace.TraceStatistics`.

        With numpy available the pass is vectorized;
        :meth:`statistics_tuple_reference` keeps the pure-``array`` loop as
        the behavioral reference, and the test suite asserts the two agree.
        """
        if _np is not None and len(self):
            return self._statistics_tuple_numpy()
        return self.statistics_tuple_reference()

    def statistics_tuple_reference(self) -> Tuple[int, ...]:
        """The pure-``array`` statistics pass (the vectorized path's oracle)."""
        counters = [0] * 9
        blocks: Set[int] = set()
        taken_pcs: Set[int] = set()
        self.fold_statistics(counters, blocks, taken_pcs)
        return tuple(counters) + (len(blocks), len(taken_pcs))

    def _statistics_tuple_numpy(self) -> Tuple[int, ...]:
        np = _np
        branch_pcs = np.frombuffer(self.branch_pcs, dtype=np.int64)
        kinds = np.frombuffer(self.kinds, dtype=np.int8)
        takens = np.frombuffer(self.takens, dtype=np.int8) != 0
        has_branch = branch_pcs != NO_VALUE
        taken_mask = has_branch & takens

        conditional_mask = has_branch & (
            kinds == _KIND_TO_CODE[BranchKind.CONDITIONAL]
        )
        call_mask = has_branch & (
            (kinds == _KIND_TO_CODE[BranchKind.CALL])
            | (kinds == _KIND_TO_CODE[BranchKind.INDIRECT_CALL])
        )
        indirect_mask = has_branch & (
            (kinds == _KIND_TO_CODE[BranchKind.INDIRECT])
            | (kinds == _KIND_TO_CODE[BranchKind.INDIRECT_CALL])
            | (kinds == _KIND_TO_CODE[BranchKind.RETURN])
        )
        return_mask = has_branch & (kinds == _KIND_TO_CODE[BranchKind.RETURN])

        # Every region touches its first block; a region spanning k blocks
        # additionally touches first + 1..k-1 strides.  Expanding stride by
        # stride keeps the working set at one address array per span length
        # (spans are tiny — a region rarely crosses more than a few blocks).
        firsts = np.frombuffer(self.block_firsts, dtype=np.int64)
        counts = np.frombuffer(self.block_counts, dtype=np.int32)
        parts = [firsts]
        for stride in range(1, int(counts.max())):
            parts.append(firsts[counts > stride] + stride * BLOCK_SIZE_BYTES)
        unique_blocks = int(np.unique(np.concatenate(parts)).size)

        return (
            self.instruction_count,
            len(self),
            int(has_branch.sum()),
            int(taken_mask.sum()),
            int(conditional_mask.sum()),
            int((conditional_mask & takens).sum()),
            int(call_mask.sum()),
            int(return_mask.sum()),
            int(indirect_mask.sum()),
            unique_blocks,
            int(np.unique(branch_pcs[taken_mask]).size),
        )

    # ------------------------------------------------------------------ #
    # On-disk form
    # ------------------------------------------------------------------ #

    def save(self, path: Union[str, Path], chunk_regions: int = 1 << 18) -> None:
        """Write the trace to ``path`` in the chunked binary format."""
        save_chunks(path, self.name, self._chunks(chunk_regions))

    def _chunks(self, chunk_regions: int) -> Iterator["PackedTrace"]:
        if len(self) <= chunk_regions:
            yield self
            return
        for start in range(0, len(self), chunk_regions):
            yield self.slice(start, start + chunk_regions)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PackedTrace":
        return load_packed(path)


def _write_chunk(handle: IO[bytes], chunk: PackedTrace) -> Tuple[int, int]:
    handle.write(_CHUNK_MARKER.pack(1))
    handle.write(_U64.pack(len(chunk)))
    for attr, _ in _COLUMNS:
        column: array[int] = getattr(chunk, attr)
        raw = column.tobytes()
        handle.write(_U64.pack(len(raw)))
        handle.write(raw)
    return len(chunk), chunk.instruction_count


def save_chunks(
    path: Union[str, Path], name: str, chunks: Iterable[PackedTrace]
) -> None:
    """Stream packed chunks to ``path``; totals go in the trailer.

    This is the larger-than-memory write path: each chunk is written and
    released before the next is produced (``chunks`` may be a generator
    straight off a :class:`~repro.workloads.generator.TraceWalker`).
    """
    byteorder = 0 if sys.byteorder == "little" else 1
    encoded_name = name.encode("utf-8")
    regions = 0
    instructions = 0
    with open(path, "wb") as handle:
        handle.write(_HEADER.pack(_MAGIC, PACKED_TRACE_FORMAT_VERSION, byteorder, 0))
        handle.write(_U16.pack(len(encoded_name)))
        handle.write(encoded_name)
        for chunk in chunks:
            chunk_regions, chunk_instructions = _write_chunk(handle, chunk)
            regions += chunk_regions
            instructions += chunk_instructions
        handle.write(_CHUNK_MARKER.pack(0))
        handle.write(_TRAILER.pack(regions, instructions))


def _read_exact(handle: IO[bytes], size: int) -> bytes:
    data = handle.read(size)
    if len(data) != size:
        raise ValueError("truncated packed trace file")
    return data


def _unpickle_packed(name: str, raw_columns: Tuple[bytes, ...]) -> PackedTrace:
    """Rebuild a pickled :class:`PackedTrace` as heap arrays."""
    columns = []
    for (_, typecode), raw in zip(_COLUMNS, raw_columns, strict=True):
        column = array(typecode)
        column.frombytes(raw)
        columns.append(column)
    return PackedTrace(columns, name=name)


class _MappedReader:
    """Cursor over an mmap'd packed-trace file (zero-copy field reads)."""

    __slots__ = ("view", "offset")

    def __init__(self, view: memoryview) -> None:
        self.view = view
        self.offset = 0

    def unpack(self, fmt: struct.Struct) -> Tuple[Any, ...]:
        end = self.offset + fmt.size
        if end > len(self.view):
            raise ValueError("truncated packed trace file")
        values = fmt.unpack_from(self.view, self.offset)
        self.offset = end
        return values

    def take(self, size: int) -> memoryview:
        end = self.offset + size
        if end > len(self.view):
            raise ValueError("truncated packed trace file")
        chunk = self.view[self.offset:end]
        self.offset = end
        return chunk


def _load_packed_mapped(path: Union[str, Path]) -> Optional[PackedTrace]:
    """Zero-copy loader: columns become memoryviews over an mmap of ``path``.

    Only single-chunk, native-byte-order artifacts can be mapped (a column
    split across chunks is not one contiguous byte range); returns ``None``
    when the file needs the copying reader instead.  Malformed files raise
    exactly like :func:`load_packed` — fallback is for *layout*, never for
    corruption.
    """
    with open(path, "rb") as handle:
        try:
            mapping = _mmap_module.mmap(
                handle.fileno(), 0, access=_mmap_module.ACCESS_READ
            )
        except (ValueError, OSError):
            # Un-mappable handle (empty file, exotic filesystem): the
            # copying reader will produce its usual result or error.
            return None
    reader = _MappedReader(memoryview(mapping))
    magic, version, byteorder, _ = reader.unpack(_HEADER)
    if magic != _MAGIC:
        raise ValueError(f"not a packed trace file: {path}")
    if version != PACKED_TRACE_FORMAT_VERSION:
        raise ValueError(
            f"packed trace format version {version} is not supported "
            f"(expected {PACKED_TRACE_FORMAT_VERSION})"
        )
    if byteorder != (0 if sys.byteorder == "little" else 1):
        return None  # foreign byte order: the copying reader byteswaps
    (name_length,) = reader.unpack(_U16)
    name = bytes(reader.take(name_length)).decode("utf-8")
    column_views: Optional[List[memoryview]] = None
    while True:
        (marker,) = reader.unpack(_CHUNK_MARKER)
        if marker == 0:
            break
        if column_views is not None:
            return None  # multi-chunk: columns are not contiguous
        reader.unpack(_U64)  # chunk region count (trailer re-validates)
        column_views = []
        for _, typecode in _COLUMNS:
            (byte_length,) = reader.unpack(_U64)
            try:
                column_views.append(reader.take(byte_length).cast(typecode))
            except TypeError:
                # A length that is not a multiple of the element size is
                # corruption; surface it as ValueError exactly like the
                # copying reader so TraceStore treats it as a clean miss.
                raise ValueError(
                    f"corrupt packed trace column in {path}: {byte_length} "
                    f"bytes is not a whole number of {typecode!r} elements"
                ) from None
    regions, instructions = reader.unpack(_TRAILER)
    if column_views is None:
        column_views = [
            reader.view[0:0].cast(typecode) for _, typecode in _COLUMNS
        ]
    trace = PackedTrace.from_buffers(column_views, name=name)
    if len(trace) != regions or trace.instruction_count != instructions:
        raise ValueError(
            f"packed trace trailer mismatch in {path}: "
            f"{len(trace)} regions/{trace.instruction_count} instructions read, "
            f"trailer says {regions}/{instructions}"
        )
    return trace


def load_packed(path: Union[str, Path], mmap: bool = False) -> PackedTrace:
    """Read a packed trace written by :func:`save_chunks`/:meth:`~PackedTrace.save`.

    With ``mmap=True`` the columns of a single-chunk, native-byte-order
    artifact are served as memoryviews straight over the page cache — no
    heap copy, shared across every process mapping the same file.  Files
    that cannot be mapped (multi-chunk streams, foreign byte order) fall
    back to the copying reader transparently.
    """
    if mmap:
        trace = _load_packed_mapped(path)
        if trace is not None:
            return trace
    with open(path, "rb") as handle:
        magic, version, byteorder, _ = _HEADER.unpack(_read_exact(handle, _HEADER.size))
        if magic != _MAGIC:
            raise ValueError(f"not a packed trace file: {path}")
        if version != PACKED_TRACE_FORMAT_VERSION:
            raise ValueError(
                f"packed trace format version {version} is not supported "
                f"(expected {PACKED_TRACE_FORMAT_VERSION})"
            )
        (name_length,) = _U16.unpack(_read_exact(handle, _U16.size))
        name = _read_exact(handle, name_length).decode("utf-8")
        swap = byteorder != (0 if sys.byteorder == "little" else 1)
        columns = _empty_columns()
        while True:
            (marker,) = _CHUNK_MARKER.unpack(_read_exact(handle, _CHUNK_MARKER.size))
            if marker == 0:
                break
            _U64.unpack(_read_exact(handle, _U64.size))  # chunk region count
            for column in columns:
                (byte_length,) = _U64.unpack(_read_exact(handle, _U64.size))
                part = array(column.typecode)
                part.frombytes(_read_exact(handle, byte_length))
                if swap:
                    part.byteswap()
                column.extend(part)
        regions, instructions = _TRAILER.unpack(_read_exact(handle, _TRAILER.size))
    trace = PackedTrace(columns, name=name)
    if len(trace) != regions or trace.instruction_count != instructions:
        raise ValueError(
            f"packed trace trailer mismatch in {path}: "
            f"{len(trace)} regions/{trace.instruction_count} instructions read, "
            f"trailer says {regions}/{instructions}"
        )
    return trace


class PackedTraceBuilder:
    """Chunked appender producing a :class:`PackedTrace`.

    Appends accumulate in plain Python lists (the fastest append path) and
    are flushed into the arrays every ``chunk_regions`` entries, so building
    an N-region trace never holds more than one chunk of boxed integers.
    """

    def __init__(self, name: str = "trace", chunk_regions: int = 1 << 16) -> None:
        if chunk_regions <= 0:
            raise ValueError("chunk_regions must be positive")
        self.name = name
        self.chunk_regions = chunk_regions
        self._columns = _empty_columns()
        self._buffers: List[List[int]] = [[] for _ in _COLUMNS]
        self._buffered = 0

    def __len__(self) -> int:
        return len(self._columns[0]) + self._buffered

    def append(
        self,
        start: int,
        instruction_count: int,
        branch_pc: int,
        kind: int,
        taken: int,
        target: int,
        next_pc: int,
    ) -> None:
        """Append one region; ``branch_pc``/``kind``/``target`` use ``-1`` for None.

        The block-span columns are derived here, once, so every later
        consumer reads them instead of recomputing the span.
        """
        first = block_address(start)
        last = block_address(start + (instruction_count - 1) * INSTRUCTION_SIZE_BYTES)
        buffers = self._buffers
        buffers[0].append(start)
        buffers[1].append(instruction_count)
        buffers[2].append(branch_pc)
        buffers[3].append(kind)
        buffers[4].append(taken)
        buffers[5].append(target)
        buffers[6].append(next_pc)
        buffers[7].append(first)
        buffers[8].append((last - first) // BLOCK_SIZE_BYTES + 1)
        self._buffered += 1
        if self._buffered >= self.chunk_regions:
            self._flush()

    def append_record(self, record: "FetchRecord") -> None:
        """Append a :class:`~repro.workloads.trace.FetchRecord` (view-path compat)."""
        branch_pc = record.branch_pc if record.branch_pc is not None else NO_VALUE
        target = record.target if record.target is not None else NO_VALUE
        self.append(
            record.start,
            record.instruction_count,
            branch_pc,
            kind_code(record.kind),
            1 if record.taken else 0,
            target,
            record.next_pc,
        )

    def _flush(self) -> None:
        for column, buffer in zip(self._columns, self._buffers, strict=True):
            column.extend(buffer)
            del buffer[:]
        self._buffered = 0

    def take_chunk(self) -> Optional[PackedTrace]:
        """Detach everything appended so far as one chunk (streaming writes)."""
        self._flush()
        if not len(self._columns[0]):
            return None
        chunk = PackedTrace(self._columns, name=self.name)
        self._columns = _empty_columns()
        return chunk

    def build(self) -> PackedTrace:
        """Finish and return the packed trace (the builder can be reused)."""
        self._flush()
        trace = PackedTrace(self._columns, name=self.name)
        self._columns = _empty_columns()
        return trace
