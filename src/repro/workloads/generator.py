"""Trace generation: walking the synthetic CFG as a stream of requests.

The walker models a server core perpetually serving requests drawn from a
skewed request-type mix.  A request consists of several *operations* (think:
the statements of a transaction, the handlers of an HTTP request); each
operation enters the software stack at a layer-0 function selected by the
request type and calls down through the layers.

Branch outcomes are resolved so that the trace exhibits the properties the
evaluated frontend mechanisms depend on:

* most conditional branches resolve identically for a given request type
  (request-level recurrence, i.e. long temporal instruction streams),
* a minority are parameter-sensitive (the warehouse / URL / table a request
  touches), widening the dynamic instruction working set across requests, and
* loops and data-dependent branches add bounded per-execution variation.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.isa.instruction import BranchKind
from repro.workloads.cfg import BranchBehavior, SyntheticProgram, synthesize_program
from repro.workloads.packed import NO_VALUE, PackedTrace, PackedTraceBuilder, kind_code
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.trace import Trace

#: Safety limit on fetch regions per operation, to bound pathological walks.
_MAX_REGIONS_PER_OPERATION = 3_000

#: Function-invocation budget per operation.  Each operation expands call
#: sites until the budget runs out, which keeps operation sizes in the
#: few-thousand-instruction range typical of one statement of a server
#: request (and prevents the call tree from either dying out immediately or
#: exploding combinatorially).  The budget is a deterministic function of the
#: operation's path key so that every instance of an operation does the same
#: amount of work.
_MIN_INVOCATIONS_PER_OPERATION = 50
_MAX_INVOCATIONS_PER_OPERATION = 100

#: Fraction of deterministic branches whose outcome also depends on the
#: request parameter rather than the request type alone.
_PARAMETER_SENSITIVE_FRACTION = 0.04


def _stable_fraction(branch_pc: int, key: int) -> float:
    """Deterministic pseudo-random value in [0, 1) per (branch, key)."""
    data = f"{branch_pc:x}:{key}".encode()
    return (zlib.crc32(data) & 0xFFFFFFFF) / 2**32


@dataclass
class _Frame:
    """Per-invocation state: return address and loop trip bookkeeping."""

    return_address: Optional[int]
    loop_counts: Dict[int, int]
    loop_limits: Dict[int, int]


class TraceWalker:
    """Walks a :class:`SyntheticProgram`, emitting fetch-region records."""

    def __init__(self, program: SyntheticProgram, seed: int = 1) -> None:
        self.program = program
        self.profile = program.profile
        self._rng = random.Random(seed)
        self._request_weights = self._build_request_weights()
        self._layer0_entries = tuple(
            function.entry for function in program.cfg.functions_in_layer(0)
        )
        self.requests_completed = 0
        self.operations_completed = 0
        self._call_budget = 0

    def _build_request_weights(self) -> List[float]:
        s = self.profile.request_zipf_s
        weights = [1.0 / (rank + 1) ** s for rank in range(self.profile.request_types)]
        total = sum(weights)
        return [weight / total for weight in weights]

    def run(self, max_instructions: int, name: Optional[str] = None) -> Trace:
        """Generate a trace of at least ``max_instructions`` instructions."""
        return Trace.from_packed(self.run_packed(max_instructions, name=name))

    def run_packed(
        self, max_instructions: int, name: Optional[str] = None
    ) -> PackedTrace:
        """Generate the trace directly in columnar form.

        The walker appends scalar columns into a chunked
        :class:`~repro.workloads.packed.PackedTraceBuilder` — no
        ``FetchRecord`` objects exist on this path.
        """
        builder = PackedTraceBuilder(name=name or self.profile.name)
        for _ in self._walk_requests(max_instructions, builder):
            pass
        return builder.build()

    def run_chunks(
        self,
        max_instructions: int,
        name: Optional[str] = None,
        chunk_regions: int = 1 << 16,
    ) -> Iterator[PackedTrace]:
        """Generate the trace as a stream of packed chunks.

        Each yielded chunk is detached from the builder before the next one
        is produced, so traces larger than memory can be streamed straight to
        disk (see :func:`repro.workloads.packed.save_chunks`).  Requests are
        never split across chunks; chunk sizes are therefore approximate.
        """
        builder = PackedTraceBuilder(
            name=name or self.profile.name, chunk_regions=chunk_regions
        )
        for _ in self._walk_requests(max_instructions, builder):
            if len(builder) >= chunk_regions:
                chunk = builder.take_chunk()
                if chunk is not None:
                    yield chunk
        chunk = builder.take_chunk()
        if chunk is not None:
            yield chunk

    def _walk_requests(
        self, max_instructions: int, builder: PackedTraceBuilder
    ) -> Iterator[None]:
        """THE walk loop: serve requests into ``builder``, yielding after
        each one.  Both trace-producing entry points drive this generator,
        so the request order and RNG consumption can never diverge between
        the in-memory and streamed forms."""
        if max_instructions <= 0:
            raise ValueError("max_instructions must be positive")
        instructions = 0
        while instructions < max_instructions:
            request_type = self._pick_request_type()
            parameter = self._rng.randrange(self.profile.request_parameters)
            instructions += self._run_request(request_type, parameter, builder)
            self.requests_completed += 1
            yield

    def _pick_request_type(self) -> int:
        draw = self._rng.random()
        cumulative = 0.0
        for index, weight in enumerate(self._request_weights):
            cumulative += weight
            if draw < cumulative:
                return index
        return len(self._request_weights) - 1

    def _run_request(
        self, request_type: int, parameter: int, builder: PackedTraceBuilder
    ) -> int:
        """Serve one request: the fixed operation sequence of its type.

        Every request of a given type executes the same operations in the
        same order (a transaction's statements, a page's handlers), which is
        what makes server instruction streams recur at the request level.
        Per-request variation comes from the request parameter, which only
        affects the minority of parameter-sensitive branches.
        """
        instructions = 0
        for op_index in range(self.profile.distinct_operations):
            entry = self._operation_entry(request_type, op_index)
            # The path key identifies the (request type, operation) pair; a
            # given pair always follows the same deterministic path, which is
            # the unit of temporal-stream recurrence.
            path_key = (request_type << 8) | op_index
            instructions += self._run_operation(entry, path_key, parameter, builder)
            self.operations_completed += 1
        return instructions

    def _operation_entry(self, request_type: int, op_index: int) -> int:
        """Layer-0 function where operation ``op_index`` of this type starts.

        Different request types map their operations onto (mostly) different
        layer-0 functions, so each type exercises its own slice of the code
        base — the source of the multi-hundred-kilobyte dynamic working set.
        """
        selector = _stable_fraction(request_type * 131 + op_index, 0x5EED)
        index = int(selector * len(self._layer0_entries))
        return self._layer0_entries[min(index, len(self._layer0_entries) - 1)]

    def _run_operation(
        self,
        entry: int,
        path_key: int,
        parameter: int,
        builder: PackedTraceBuilder,
    ) -> int:
        cfg = self.program.cfg
        pc = entry
        stack: List[_Frame] = [_Frame(None, {}, {})]
        instructions = 0
        regions = 0
        budget_span = _MAX_INVOCATIONS_PER_OPERATION - _MIN_INVOCATIONS_PER_OPERATION
        self._call_budget = _MIN_INVOCATIONS_PER_OPERATION + int(
            _stable_fraction(entry, path_key) * (budget_span + 1)
        )

        while regions < _MAX_REGIONS_PER_OPERATION:
            block = cfg.block_starting_at(pc)
            if block is None:
                break
            behavior = cfg.behavior_of(block.terminator_pc)
            taken, next_pc = self._resolve(behavior, path_key, parameter, stack)
            target = behavior.taken_target
            builder.append(
                pc,
                block.length,
                block.terminator_pc,
                kind_code(behavior.kind),
                1 if taken else 0,
                target if target is not None else NO_VALUE,
                next_pc if next_pc is not None else block.end,
            )
            instructions += block.length
            regions += 1
            if next_pc is None:
                break
            pc = next_pc
        return instructions

    def _branch_key(self, behavior: BranchBehavior, path_key: int, parameter: int) -> int:
        """Resolution key: the (type, operation) path, plus the request
        parameter for the minority of parameter-sensitive branches."""
        if _stable_fraction(behavior.pc, 0xA11CE) < _PARAMETER_SENSITIVE_FRACTION:
            return path_key * 8191 + parameter + 1
        return path_key

    def _resolve(
        self,
        behavior: BranchBehavior,
        path_key: int,
        parameter: int,
        stack: List[_Frame],
    ) -> Tuple[bool, Optional[int]]:
        """Resolve one branch: (taken, next_pc); next_pc None ends the operation."""
        kind = behavior.kind

        if kind is BranchKind.RETURN:
            frame = stack.pop()
            if not stack or frame.return_address is None:
                return True, None
            return True, frame.return_address

        if kind is BranchKind.CONDITIONAL:
            taken = self._resolve_conditional(behavior, path_key, parameter, stack[-1])
            return taken, behavior.taken_target if taken else behavior.fallthrough

        if kind is BranchKind.UNCONDITIONAL:
            return True, behavior.taken_target

        if kind is BranchKind.CALL:
            if self._call_budget <= 0:
                # Budget exhausted: the callee's work is elided, modelling a
                # trivially short callee that returns immediately.
                return True, behavior.fallthrough
            self._call_budget -= 1
            stack.append(_Frame(behavior.fallthrough, {}, {}))
            return True, behavior.taken_target

        if kind is BranchKind.INDIRECT_CALL:
            if self._call_budget <= 0:
                return True, behavior.fallthrough
            self._call_budget -= 1
            target = self._resolve_indirect(behavior, path_key, parameter)
            stack.append(_Frame(behavior.fallthrough, {}, {}))
            return True, target

        if kind is BranchKind.INDIRECT:
            return True, self._resolve_indirect(behavior, path_key, parameter)

        raise ValueError(f"unhandled branch kind {kind}")

    def _resolve_conditional(
        self,
        behavior: BranchBehavior,
        path_key: int,
        parameter: int,
        frame: _Frame,
    ) -> bool:
        if behavior.is_loop:
            pc = behavior.pc
            if pc not in frame.loop_limits:
                frame.loop_limits[pc] = self._loop_trip_count(behavior, path_key, parameter)
                frame.loop_counts[pc] = 0
            frame.loop_counts[pc] += 1
            # The limit bounds the *total* times this back edge is taken within
            # one function invocation.  Counters are intentionally never reset
            # on exit: overlapping back edges would otherwise keep re-arming
            # each other and the walk would never make forward progress.
            return frame.loop_counts[pc] < frame.loop_limits[pc]
        if behavior.deterministic:
            key = self._branch_key(behavior, path_key, parameter)
            return _stable_fraction(behavior.pc, key) < behavior.taken_bias
        return self._rng.random() < behavior.taken_bias

    def _loop_trip_count(self, behavior: BranchBehavior, path_key: int, parameter: int) -> int:
        """Trip count of a loop for this (path, parameter).

        Trip counts are data-dependent in real code, but for a given request
        the data is fixed — the same path over the same parameter iterates the
        same number of times.  Keeping trips a pure function of the path key
        preserves the request-level recurrence of the instruction stream that
        server workloads exhibit and stream prefetchers rely on.
        """
        low, high = behavior.trip_range
        key = self._branch_key(behavior, path_key, parameter)
        fraction = _stable_fraction(behavior.pc ^ 0x10F00, key)
        return low + int(fraction * (high - low + 1))

    def _resolve_indirect(
        self, behavior: BranchBehavior, path_key: int, parameter: int
    ) -> int:
        targets = behavior.indirect_targets
        if len(targets) == 1:
            return targets[0]
        # Request-determined dispatch, mirroring virtual-call sites whose
        # receiver is a function of the request being served.
        key = self._branch_key(behavior, path_key, parameter)
        index = int(_stable_fraction(behavior.pc, key) * len(targets))
        return targets[min(index, len(targets) - 1)]


def generate_trace(
    program: SyntheticProgram, instructions: int, seed: int = 1, name: Optional[str] = None
) -> Trace:
    """Convenience wrapper: build a walker and generate ``instructions``."""
    walker = TraceWalker(program, seed=seed)
    return walker.run(instructions, name=name)


def generate_packed_trace(
    program: SyntheticProgram, instructions: int, seed: int = 1, name: Optional[str] = None
) -> PackedTrace:
    """Like :func:`generate_trace` but returns the bare columnar form."""
    walker = TraceWalker(program, seed=seed)
    return walker.run_packed(instructions, name=name)


def build_workload(
    profile: WorkloadProfile,
    instructions: Optional[int] = None,
    trace_seed: int = 1,
) -> Tuple[SyntheticProgram, Trace]:
    """Synthesize the program for ``profile`` and generate its trace.

    This is the one-call entry point most examples and benchmarks use.
    """
    program = synthesize_program(profile)
    count = instructions or profile.recommended_trace_instructions
    trace = generate_trace(program, count, seed=trace_seed, name=profile.name)
    return program, trace
