"""Synthetic scale-out server workloads.

The paper evaluates Confluence on full-system traces of commercial server
software (TPC-C on DB2/Oracle, TPC-H decision support, Darwin media streaming
and a SPECweb99 Apache frontend).  Those traces are not available, so this
package synthesizes workloads that reproduce the *properties* the evaluated
frontend mechanisms are sensitive to:

* multi-hundred-kilobyte instruction working sets that overwhelm a 32 KB L1-I
  and a 1K-entry BTB,
* deep layered call stacks (a dozen software layers per request),
* request-level recurrence, i.e. long temporal instruction streams, and
* per-block branch densities matching Table 2 (~3.5 static, ~1.5 dynamic
  branches per demand-fetched block).

A workload is built in two steps: :func:`synthesize_program` lays out a
layered control-flow graph into a :class:`~repro.isa.ProgramImage`, and
:class:`TraceWalker` (or the :func:`generate_trace` convenience) walks it,
serving a stream of requests, to produce a fetch-region trace.
"""

from repro.workloads.profiles import (
    EVALUATION_WORKLOADS,
    WORKLOAD_PROFILES,
    WorkloadProfile,
    evaluation_profiles,
    get_profile,
)
from repro.workloads.cfg import (
    BasicBlock,
    ControlFlowGraph,
    Function,
    SyntheticProgram,
    clear_program_memo,
    synthesize_program,
    workload_program,
)
from repro.workloads.scenario import (
    SCENARIOS,
    BoundScenario,
    CoreWorkload,
    Scenario,
    ScenarioEntry,
    get_scenario,
    register_scenario,
    resolve_scenario,
    scenario_from_profile,
)
from repro.workloads.packed import PackedTrace, PackedTraceBuilder, load_packed
from repro.workloads.trace import FetchRecord, RecordView, Trace, TraceStatistics
from repro.workloads.generator import (
    TraceWalker,
    build_workload,
    generate_packed_trace,
    generate_trace,
)

__all__ = [
    "WorkloadProfile",
    "WORKLOAD_PROFILES",
    "EVALUATION_WORKLOADS",
    "SCENARIOS",
    "BoundScenario",
    "CoreWorkload",
    "Scenario",
    "ScenarioEntry",
    "evaluation_profiles",
    "get_profile",
    "get_scenario",
    "register_scenario",
    "resolve_scenario",
    "scenario_from_profile",
    "clear_program_memo",
    "workload_program",
    "BasicBlock",
    "Function",
    "ControlFlowGraph",
    "SyntheticProgram",
    "synthesize_program",
    "FetchRecord",
    "PackedTrace",
    "PackedTraceBuilder",
    "RecordView",
    "Trace",
    "TraceStatistics",
    "TraceWalker",
    "generate_packed_trace",
    "generate_trace",
    "load_packed",
    "build_workload",
]
