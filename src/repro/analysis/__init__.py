"""Experiment harnesses that regenerate the paper's tables and figures.

Each public function corresponds to one experiment of the evaluation section
and returns plain Python data (dicts/lists) that the benchmarks print and the
tests assert on; ``benchmarks/`` maps them to the paper's figure numbers.
The table formatters here are shared with the report renderers
(:mod:`repro.report`), so CLI tables and rendered reports agree.
"""

from repro.analysis.experiments import (
    airbtb_ablation,
    airbtb_sensitivity,
    branch_density_table,
    btb_capacity_sweep,
    evaluation_grid,
    frontend_comparison,
    grid_speedup_rows,
    miss_coverage_comparison,
    scenario_comparison_rows,
    scenario_grid,
)
from repro.analysis.reporting import format_series, format_table, markdown_table

__all__ = [
    "btb_capacity_sweep",
    "branch_density_table",
    "evaluation_grid",
    "frontend_comparison",
    "grid_speedup_rows",
    "airbtb_ablation",
    "miss_coverage_comparison",
    "airbtb_sensitivity",
    "scenario_comparison_rows",
    "scenario_grid",
    "format_table",
    "format_series",
    "markdown_table",
]
