"""Experiment implementations, one per table/figure of the evaluation.

Every function takes an already-built workload (program + trace) so callers
control the scale: the benchmark harness uses full-size workloads, the tests
use small scaled-down ones.

Sweeps are data: each variant is a :class:`~repro.core.designs.DesignSpec`
derived from the catalog with parameter overrides, run through the same
spec-driven construction path (:func:`~repro.core.designs.design_from_spec`)
as everything else.  Bare-BTB studies build their components through
:func:`repro.registry.build_btb`, so a custom registered BTB can join any
sweep without new harness code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api import RunReport, run_grid
from repro.branch.btb_base import BaseBTB
from repro.core.area import FrontendAreaReport
from repro.core.designs import (
    DesignSpec,
    design_from_spec,
    resolve_design,
)
from repro.core.frontend import FrontendConfig, FrontendResult
from repro.core.metrics import geometric_mean, miss_coverage, mpki
from repro.registry import build_btb
from repro.workloads.cfg import SyntheticProgram
from repro.workloads.profiles import EVALUATION_WORKLOADS
from repro.workloads.trace import Trace

#: Default fraction of the trace used to warm structures before measuring.
DEFAULT_WARMUP_FRACTION = 0.2

#: Spec of the 1K-entry + victim-buffer BTB every coverage study is
#: normalized against (the paper's baseline).
BASELINE_BTB = "conventional_1k"


# --------------------------------------------------------------------------- #
# BTB-only coverage harness (Figures 1, 8, 9, 10)
# --------------------------------------------------------------------------- #

def run_btb_coverage(
    btb: BaseBTB,
    trace: Trace,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
) -> Tuple[int, int]:
    """Drive a standalone BTB with the trace's branch stream.

    Returns ``(taken_misses, measured_instructions)`` for the post-warmup
    portion, following the paper's miss definition (entry for a predicted
    taken branch absent at lookup time).  The walk reads the packed columns
    directly — no record objects on this path.
    """
    from repro.workloads.packed import NO_VALUE, kind_from_code

    packed = trace.packed
    boundary = int(len(packed) * warmup_fraction)
    taken_misses = 0
    instructions = 0
    lookup = btb.lookup
    update = btb.update
    for index, (count, branch_pc, code, taken_flag, target) in enumerate(
        zip(
            packed.instruction_counts,
            packed.branch_pcs,
            packed.kinds,
            packed.takens,
            packed.targets,
            strict=True,
        )
    ):
        measured = index >= boundary
        if measured:
            instructions += count
        if branch_pc == NO_VALUE:
            continue
        taken = bool(taken_flag)
        result = lookup(branch_pc, taken=taken)
        if measured and taken and not result.hit:
            taken_misses += 1
        update(
            branch_pc,
            kind_from_code(code),
            target if target != NO_VALUE else None,
            taken,
        )
    return taken_misses, instructions


def _baseline_coverage(
    trace: Trace, warmup_fraction: float = DEFAULT_WARMUP_FRACTION
) -> Tuple[int, int]:
    """Taken misses + measured instructions of the baseline BTB."""
    return run_btb_coverage(build_btb(BASELINE_BTB), trace, warmup_fraction)


def btb_capacity_sweep(
    trace: Trace,
    capacities: Sequence[int] = (1024, 2048, 4096, 8192, 16384, 32768),
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
) -> Dict[int, float]:
    """Figure 1: BTB MPKI as a function of conventional BTB capacity."""
    series: Dict[int, float] = {}
    for capacity in capacities:
        btb = build_btb("conventional", entries=capacity, victim_entries=0)
        misses, instructions = run_btb_coverage(btb, trace, warmup_fraction)
        series[capacity] = mpki(misses, instructions)
    return series


def branch_density_table(program: SyntheticProgram, trace: Trace) -> Dict[str, float]:
    """Table 2: static and dynamic branch density of demand-fetched blocks.

    Static counts the branch instructions present in each block touched by
    the trace (what a predecoder sees); dynamic counts the distinct taken
    branches exercised per block visit episode (what the BTB actually needs).
    """
    touched = set(trace.packed.iter_blocks())
    static_total = 0
    counted = 0
    for block_addr in touched:
        block = program.image.block_at(block_addr)
        if block is None:
            continue
        static_total += block.branch_count
        counted += 1
    densities = trace.branch_density()
    return {
        "static": static_total / counted if counted else 0.0,
        "dynamic": densities["dynamic"],
    }


# --------------------------------------------------------------------------- #
# Frontend performance/area comparisons (Figures 2, 6, 7)
# --------------------------------------------------------------------------- #

@dataclass
class DesignOutcome:
    """Performance and area of one design point on one workload."""

    design: str
    result: FrontendResult
    area: FrontendAreaReport

    @property
    def speedup_reference(self) -> float:
        return self.result.ipc


def frontend_comparison(
    program: SyntheticProgram,
    trace: Trace,
    designs: Sequence[Union[str, DesignSpec]],
    frontend_config: Optional[FrontendConfig] = None,
) -> Dict[str, DesignOutcome]:
    """Run a set of design points on one workload (Figures 2, 6 and 7).

    ``designs`` may mix catalog names and ad-hoc specs.  Each design point
    gets private structures (one core's view); SHIFT-based designs each get
    their own history warmed by the same trace, which is equivalent to the
    steady-state shared history of the CMP.
    """
    outcomes: Dict[str, DesignOutcome] = {}
    for design in designs:
        spec = resolve_design(design)
        simulator, area = design_from_spec(
            spec, program, frontend_config=frontend_config
        )
        result = simulator.run(trace)
        outcomes[spec.name] = DesignOutcome(design=spec.name, result=result, area=area)
    return outcomes


def performance_area_frontier(
    outcomes: Mapping[str, DesignOutcome],
    baseline: str = "baseline",
) -> List[Dict[str, float]]:
    """Normalize a comparison to the baseline design (the Figure 2/6 axes)."""
    base = outcomes[baseline]
    rows: List[Dict[str, float]] = []
    for name, outcome in outcomes.items():
        rows.append(
            {
                "design": name,
                "relative_performance": outcome.result.speedup_over(base.result),
                "relative_area": outcome.area.relative_to(base.area),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# AirBTB coverage studies (Figures 8, 9, 10)
# --------------------------------------------------------------------------- #

def confluence_variant(
    name: str,
    synchronized: bool = True,
    **airbtb_params: Any,
) -> DesignSpec:
    """A Confluence design-spec variant with AirBTB parameter overrides.

    The building block of the Figure 8/10 studies: each studied
    configuration is one spec, so sweeps are data.
    """
    return resolve_design("confluence").derive(
        name,
        btb_params={"synchronized": synchronized, **airbtb_params},
    )


def run_design_coverage(
    design: Union[str, DesignSpec],
    program: SyntheticProgram,
    trace: Trace,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
) -> Tuple[int, int]:
    """Measure a full design point's BTB taken misses on one workload."""
    spec = resolve_design(design)
    simulator, _ = design_from_spec(spec, program)
    result = simulator.run(trace, warmup_fraction=warmup_fraction)
    return result.btb_taken_misses, result.instructions


def airbtb_ablation(
    program: SyntheticProgram,
    trace: Trace,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
) -> Dict[str, float]:
    """Figure 8: cumulative breakdown of AirBTB's miss-coverage benefits.

    Returns the cumulative fraction of the 1K-entry conventional BTB's misses
    eliminated after enabling, in order: the block-based capacity benefit,
    eager (spatial-locality) insertion, prefetcher-driven insertion, and full
    block-based organization (content synchronization with the L1-I).
    """
    baseline_misses, instructions = _baseline_coverage(trace, warmup_fraction)

    # Steps 1 and 2 drive a standalone AirBTB (no prefetcher around it);
    # steps 3 and 4 are full Confluence design points.
    capacity_btb = build_btb("airbtb_standalone", program=program, insertion_policy="demand")
    capacity_misses, _ = run_btb_coverage(capacity_btb, trace, warmup_fraction)

    spatial_btb = build_btb("airbtb_standalone", program=program)
    spatial_misses, _ = run_btb_coverage(spatial_btb, trace, warmup_fraction)

    steps = {
        "prefetching": confluence_variant("airbtb_unsynced", synchronized=False),
        "block_based_org": confluence_variant("airbtb_synced", synchronized=True),
    }
    coverage = {
        "capacity": miss_coverage(baseline_misses, capacity_misses),
        "spatial_locality": miss_coverage(baseline_misses, spatial_misses),
    }
    for step, spec in steps.items():
        misses, _ = run_design_coverage(spec, program, trace, warmup_fraction)
        coverage[step] = miss_coverage(baseline_misses, misses)
    coverage["baseline_mpki"] = mpki(baseline_misses, instructions)
    return coverage


def miss_coverage_comparison(
    program: SyntheticProgram,
    trace: Trace,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
) -> Dict[str, float]:
    """Figure 9: misses eliminated by PhantomBTB, AirBTB and a 16K BTB."""
    baseline_misses, _ = _baseline_coverage(trace, warmup_fraction)

    phantom = build_btb("phantom")
    phantom_misses, _ = run_btb_coverage(phantom, trace, warmup_fraction)

    airbtb_misses, _ = run_design_coverage(
        confluence_variant("airbtb_synced"), program, trace, warmup_fraction
    )

    big_btb = build_btb("conventional", entries=16 * 1024)
    big_misses, _ = run_btb_coverage(big_btb, trace, warmup_fraction)

    return {
        "phantombtb": miss_coverage(baseline_misses, phantom_misses),
        "airbtb": miss_coverage(baseline_misses, airbtb_misses),
        "conventional_16k": miss_coverage(baseline_misses, big_misses),
    }


def airbtb_sensitivity(
    program: SyntheticProgram,
    trace: Trace,
    bundle_sizes: Sequence[int] = (3, 4),
    overflow_sizes: Sequence[int] = (0, 32),
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
) -> Dict[Tuple[int, int], float]:
    """Figure 10: AirBTB miss coverage vs bundle and overflow buffer sizing.

    The sweep is a grid of derived specs; add a point by adding a value to
    either axis.
    """
    baseline_misses, _ = _baseline_coverage(trace, warmup_fraction)
    grid: Dict[Tuple[int, int], DesignSpec] = {
        (branches, overflow): confluence_variant(
            f"airbtb_b{branches}_ob{overflow}",
            branch_entries_per_bundle=branches,
            overflow_entries=overflow,
        )
        for branches in bundle_sizes
        for overflow in overflow_sizes
    }
    results: Dict[Tuple[int, int], float] = {}
    for key, spec in grid.items():
        misses, _ = run_design_coverage(spec, program, trace, warmup_fraction)
        results[key] = miss_coverage(baseline_misses, misses)
    return results


# --------------------------------------------------------------------------- #
# CMP-level grid studies (profile x design, through the sweep engine)
# --------------------------------------------------------------------------- #

#: The design points the paper's CMP-level performance figures compare.
GRID_DESIGNS: Tuple[str, ...] = (
    "baseline", "fdp", "2level_fdp", "2level_shift", "confluence", "ideal",
)


def evaluation_grid(
    designs: Sequence[Union[str, DesignSpec]] = GRID_DESIGNS,
    profiles: Optional[Sequence[str]] = None,
    baseline: Optional[str] = None,
    **sweep_kwargs: Any,
) -> Dict[str, RunReport]:
    """The paper's workload x design CMP grid, on the parallel sweep engine.

    This is the layer every grid-shaped scenario runs through:
    ``workers=N`` fans the (profile x design) cells out across processes and
    ``cache=...`` serves unchanged cells from the on-disk result cache (see
    :mod:`repro.sweep`).  ``profiles`` defaults to the five evaluation
    workloads; the remaining keyword arguments (``scale``, ``cores``,
    ``instructions_per_core``, ...) apply to every cell.
    """
    if profiles is None:
        # The evaluation suite's representative profiles, de-duplicated in
        # presentation order.
        profiles = list(dict.fromkeys(EVALUATION_WORKLOADS.values()))
    return run_grid(profiles, designs, baseline=baseline, **sweep_kwargs)


def grid_speedup_rows(
    reports: Mapping[str, RunReport],
) -> List[Dict[str, object]]:
    """Per-design speedup rows (one column per profile + GEOMEAN) for tables."""
    rows: List[Dict[str, object]] = []
    profile_names = list(reports)
    if not profile_names:
        return rows
    designs = reports[profile_names[0]].designs
    for design in designs:
        speedups = [
            float(reports[profile][design]["speedup"]) for profile in profile_names
        ]
        row: Dict[str, object] = {"design": design}
        row.update(dict(zip(profile_names, speedups, strict=True)))
        row["geomean"] = geometric_mean(speedups)
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Consolidation scenarios (heterogeneous multi-program CMPs)
# --------------------------------------------------------------------------- #

#: The consolidation scenarios the comparison table reports by default.
SCENARIO_SET: Tuple[str, ...] = ("consolidated_oltp_dss", "noisy_neighbor_media")


def scenario_grid(
    scenarios: Sequence[str] = SCENARIO_SET,
    designs: Sequence[Union[str, DesignSpec]] = GRID_DESIGNS,
    baseline: Optional[str] = None,
    **sweep_kwargs: Any,
) -> Dict[str, RunReport]:
    """The consolidated-server grid: scenario x design, on the sweep engine.

    Each scenario is a heterogeneous per-core workload mix (see
    :mod:`repro.workloads.scenario`); cells cache, fan out and share
    trace-store artifacts exactly like homogeneous profile cells.  Returns
    ``{scenario name: RunReport}``.
    """
    return run_grid(
        [], designs, baseline=baseline, scenarios=list(scenarios), **sweep_kwargs
    )


def scenario_comparison_rows(
    reports: Mapping[str, RunReport],
) -> List[Dict[str, object]]:
    """One row per (scenario, design): chip throughput plus the per-profile split.

    The ``ipc[profile]`` columns expose who wins and who pays inside a
    consolidation — e.g. whether Confluence's shared history lifts the OLTP
    cores as much as the DSS cores that recorded next to them.
    """
    rows: List[Dict[str, object]] = []
    for scenario_name, report in reports.items():
        for design in report.designs:
            summary = report[design]
            row: Dict[str, object] = {
                "scenario": scenario_name,
                "design": design,
                "ipc": summary["ipc"],
                "speedup": summary["speedup"],
                "btb_mpki": summary["btb_mpki"],
                "l1i_mpki": summary["l1i_mpki"],
            }
            breakdown = summary.get("per_profile") or {}
            for profile_name, group in breakdown.items():
                row[f"ipc[{profile_name}]"] = group["ipc"]
            rows.append(row)
    return rows
