"""Experiment implementations, one per table/figure of the evaluation.

Every function takes an already-built workload (program + trace) so callers
control the scale: the benchmark harness uses full-size workloads, the tests
use small scaled-down ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.branch.btb_base import BaseBTB
from repro.branch.btb_conventional import ConventionalBTB
from repro.branch.btb_phantom import PhantomBTB
from repro.branch.unit import BranchPredictionUnit
from repro.caches.l1i import InstructionCache
from repro.caches.llc import SharedLLC
from repro.core.airbtb import AirBTB, AirBTBConfig
from repro.core.area import FrontendAreaReport
from repro.core.confluence import Confluence
from repro.core.designs import build_design
from repro.core.frontend import FrontendConfig, FrontendResult, FrontendSimulator
from repro.core.metrics import miss_coverage, mpki
from repro.isa.instruction import block_address
from repro.workloads.cfg import SyntheticProgram
from repro.workloads.trace import Trace

#: Default fraction of the trace used to warm structures before measuring.
DEFAULT_WARMUP_FRACTION = 0.2


# --------------------------------------------------------------------------- #
# BTB-only coverage harness (Figures 1, 8, 9, 10)
# --------------------------------------------------------------------------- #

def run_btb_coverage(
    btb: BaseBTB,
    trace: Trace,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
) -> Tuple[int, int]:
    """Drive a standalone BTB with the trace's branch stream.

    Returns ``(taken_misses, measured_instructions)`` for the post-warmup
    portion, following the paper's miss definition (entry for a predicted
    taken branch absent at lookup time).
    """
    records = trace.records
    boundary = int(len(records) * warmup_fraction)
    taken_misses = 0
    instructions = 0
    for index, record in enumerate(records):
        measured = index >= boundary
        if measured:
            instructions += record.instruction_count
        if record.branch_pc is None:
            continue
        result = btb.lookup(record.branch_pc, taken=record.taken)
        if measured and record.is_taken_branch and not result.hit:
            taken_misses += 1
        btb.update(record.branch_pc, record.kind, record.target, record.taken)
    return taken_misses, instructions


def btb_capacity_sweep(
    trace: Trace,
    capacities: Sequence[int] = (1024, 2048, 4096, 8192, 16384, 32768),
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
) -> Dict[int, float]:
    """Figure 1: BTB MPKI as a function of conventional BTB capacity."""
    series: Dict[int, float] = {}
    for capacity in capacities:
        btb = ConventionalBTB(entries=capacity, victim_entries=0)
        misses, instructions = run_btb_coverage(btb, trace, warmup_fraction)
        series[capacity] = mpki(misses, instructions)
    return series


def branch_density_table(program: SyntheticProgram, trace: Trace) -> Dict[str, float]:
    """Table 2: static and dynamic branch density of demand-fetched blocks.

    Static counts the branch instructions present in each block touched by
    the trace (what a predecoder sees); dynamic counts the distinct taken
    branches exercised per block visit episode (what the BTB actually needs).
    """
    touched = set()
    for record in trace.records:
        touched.update(record.blocks())
    static_total = 0
    counted = 0
    for block_addr in touched:
        block = program.image.block_at(block_addr)
        if block is None:
            continue
        static_total += block.branch_count
        counted += 1
    densities = trace.branch_density()
    return {
        "static": static_total / counted if counted else 0.0,
        "dynamic": densities["dynamic"],
    }


# --------------------------------------------------------------------------- #
# Frontend performance/area comparisons (Figures 2, 6, 7)
# --------------------------------------------------------------------------- #

@dataclass
class DesignOutcome:
    """Performance and area of one design point on one workload."""

    design: str
    result: FrontendResult
    area: FrontendAreaReport

    @property
    def speedup_reference(self) -> float:
        return self.result.ipc


def frontend_comparison(
    program: SyntheticProgram,
    trace: Trace,
    designs: Sequence[str],
    frontend_config: Optional[FrontendConfig] = None,
) -> Dict[str, DesignOutcome]:
    """Run a set of design points on one workload (Figures 2, 6 and 7).

    Each design point gets private structures (one core's view); SHIFT-based
    designs each get their own history warmed by the same trace, which is
    equivalent to the steady-state shared history of the CMP.
    """
    outcomes: Dict[str, DesignOutcome] = {}
    for name in designs:
        simulator, area = build_design(name, program, frontend_config=frontend_config)
        result = simulator.run(trace)
        outcomes[name] = DesignOutcome(design=name, result=result, area=area)
    return outcomes


def performance_area_frontier(
    outcomes: Mapping[str, DesignOutcome],
    baseline: str = "baseline",
) -> List[Dict[str, float]]:
    """Normalize a comparison to the baseline design (the Figure 2/6 axes)."""
    base = outcomes[baseline]
    rows: List[Dict[str, float]] = []
    for name, outcome in outcomes.items():
        rows.append(
            {
                "design": name,
                "relative_performance": outcome.result.speedup_over(base.result),
                "relative_area": outcome.area.relative_to(base.area),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# AirBTB coverage studies (Figures 8, 9, 10)
# --------------------------------------------------------------------------- #

def _run_confluence_coverage(
    program: SyntheticProgram,
    trace: Trace,
    airbtb_config: AirBTBConfig,
    synchronized: bool = True,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
) -> Tuple[int, int]:
    """Measure AirBTB taken-branch misses inside a Confluence frontend."""
    llc = SharedLLC()
    l1i = InstructionCache()
    from repro.core.confluence import ConfluenceConfig

    confluence = Confluence(
        image=program.image,
        l1i=l1i,
        llc=llc,
        config=ConfluenceConfig(airbtb=airbtb_config),
    )
    confluence.airbtb.synchronized = synchronized
    simulator = FrontendSimulator(
        bpu=BranchPredictionUnit(confluence.airbtb),
        l1i=l1i,
        llc=llc,
        prefetcher=confluence.prefetcher,
        confluence=confluence,
        design_name="confluence",
    )
    result = simulator.run(trace, warmup_fraction=warmup_fraction)
    return result.btb_taken_misses, result.instructions


def airbtb_ablation(
    program: SyntheticProgram,
    trace: Trace,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
) -> Dict[str, float]:
    """Figure 8: cumulative breakdown of AirBTB's miss-coverage benefits.

    Returns the cumulative fraction of the 1K-entry conventional BTB's misses
    eliminated after enabling, in order: the block-based capacity benefit,
    eager (spatial-locality) insertion, prefetcher-driven insertion, and full
    block-based organization (content synchronization with the L1-I).
    """
    baseline_btb = ConventionalBTB(entries=1024, victim_entries=64)
    baseline_misses, instructions = run_btb_coverage(baseline_btb, trace, warmup_fraction)

    config = AirBTBConfig()
    # Step 1 — Capacity: block-based organization, demand insertion only.
    capacity_btb = AirBTB(
        config=AirBTBConfig(insertion_policy="demand"), block_provider=program.image.block_at
    )
    capacity_misses, _ = run_btb_coverage(capacity_btb, trace, warmup_fraction)

    # Step 2 — Spatial locality: eager whole-block insertion on a miss.
    spatial_btb = AirBTB(config=config, block_provider=program.image.block_at)
    spatial_misses, _ = run_btb_coverage(spatial_btb, trace, warmup_fraction)

    # Step 3 — Prefetching: bundles are installed by the stream prefetcher
    # ahead of the fetch stream (AirBTB still privately managed, LRU).
    prefetch_misses, _ = _run_confluence_coverage(
        program, trace, config, synchronized=False, warmup_fraction=warmup_fraction
    )

    # Step 4 — Block-based organization: content synchronized with the L1-I.
    synced_misses, _ = _run_confluence_coverage(
        program, trace, config, synchronized=True, warmup_fraction=warmup_fraction
    )

    return {
        "capacity": miss_coverage(baseline_misses, capacity_misses),
        "spatial_locality": miss_coverage(baseline_misses, spatial_misses),
        "prefetching": miss_coverage(baseline_misses, prefetch_misses),
        "block_based_org": miss_coverage(baseline_misses, synced_misses),
        "baseline_mpki": mpki(baseline_misses, instructions),
    }


def miss_coverage_comparison(
    program: SyntheticProgram,
    trace: Trace,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
) -> Dict[str, float]:
    """Figure 9: misses eliminated by PhantomBTB, AirBTB and a 16K BTB."""
    baseline_btb = ConventionalBTB(entries=1024, victim_entries=64)
    baseline_misses, _ = run_btb_coverage(baseline_btb, trace, warmup_fraction)

    phantom = PhantomBTB()
    phantom_misses, _ = run_btb_coverage(phantom, trace, warmup_fraction)

    airbtb_misses, _ = _run_confluence_coverage(
        program, trace, AirBTBConfig(), synchronized=True, warmup_fraction=warmup_fraction
    )

    big_btb = ConventionalBTB(entries=16 * 1024)
    big_misses, _ = run_btb_coverage(big_btb, trace, warmup_fraction)

    return {
        "phantombtb": miss_coverage(baseline_misses, phantom_misses),
        "airbtb": miss_coverage(baseline_misses, airbtb_misses),
        "conventional_16k": miss_coverage(baseline_misses, big_misses),
    }


def airbtb_sensitivity(
    program: SyntheticProgram,
    trace: Trace,
    bundle_sizes: Sequence[int] = (3, 4),
    overflow_sizes: Sequence[int] = (0, 32),
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
) -> Dict[Tuple[int, int], float]:
    """Figure 10: AirBTB miss coverage vs bundle and overflow buffer sizing."""
    baseline_btb = ConventionalBTB(entries=1024, victim_entries=64)
    baseline_misses, _ = run_btb_coverage(baseline_btb, trace, warmup_fraction)
    results: Dict[Tuple[int, int], float] = {}
    for branches in bundle_sizes:
        for overflow in overflow_sizes:
            config = AirBTBConfig(
                branch_entries_per_bundle=branches, overflow_entries=overflow
            )
            misses, _ = _run_confluence_coverage(
                program, trace, config, synchronized=True, warmup_fraction=warmup_fraction
            )
            results[(branches, overflow)] = miss_coverage(baseline_misses, misses)
    return results
