"""Plain-text table formatting for benchmark output.

The benchmark harness prints the same rows/series the paper's figures show;
these helpers keep that output consistent and readable without pulling in a
plotting dependency.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    title: str = "",
    float_format: str = "{:.3f}",
) -> str:
    """Render a list of row dicts as an aligned text table."""
    rendered: List[List[str]] = [[str(column) for column in columns]]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [max(len(line[i]) for line in rendered) for i in range(len(columns))]
    lines = []
    if title:
        lines.append(title)
    for index, line in enumerate(rendered):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths, strict=True)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_series(
    series: Mapping[object, float], title: str = "", value_format: str = "{:.3f}"
) -> str:
    """Render an x->y mapping (one figure series) as aligned text."""
    lines = [title] if title else []
    key_width = max(len(str(key)) for key in series) if series else 0
    for key, value in series.items():
        lines.append(f"{str(key).ljust(key_width)}  {value_format.format(value)}")
    return "\n".join(lines)
