"""Plain-text and markdown table formatting for benchmark/report output.

The benchmark harness prints the same rows/series the paper's figures show;
these helpers keep that output consistent and readable without pulling in a
plotting dependency.  The report renderers (:mod:`repro.report.render`)
reuse them too: :func:`format_table` for terminal output,
:func:`markdown_table` for the CI-postable markdown report.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    title: str = "",
    float_format: str = "{:.3f}",
) -> str:
    """Render a list of row dicts as an aligned text table."""
    rendered: List[List[str]] = [[str(column) for column in columns]]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [max(len(line[i]) for line in rendered) for i in range(len(columns))]
    lines = []
    if title:
        lines.append(title)
    for index, line in enumerate(rendered):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths, strict=True)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def markdown_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    float_format: str = "{:.3f}",
) -> str:
    """Render a list of row dicts as a GitHub-flavored markdown table.

    Same row/column contract as :func:`format_table` — the report's
    markdown renderer emits these so CI can post sweep summaries verbatim.
    Cell text is pipe-escaped; missing keys render empty.
    """

    def cell(row: Mapping[str, object], column: str) -> str:
        value = row.get(column, "")
        text = float_format.format(value) if isinstance(value, float) else str(value)
        return text.replace("|", "\\|")

    lines = [
        "| " + " | ".join(str(column) for column in columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(cell(row, column) for column in columns) + " |")
    return "\n".join(lines)


def format_series(
    series: Mapping[object, float], title: str = "", value_format: str = "{:.3f}"
) -> str:
    """Render an x->y mapping (one figure series) as aligned text."""
    lines = [title] if title else []
    key_width = max(len(str(key)) for key in series) if series else 0
    for key, value in series.items():
        lines.append(f"{str(key).ljust(key_width)}  {value_format.format(value)}")
    return "\n".join(lines)
