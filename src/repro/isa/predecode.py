"""Hardware predecoder model.

Confluence scans every instruction block on its way into the L1-I, extracting
the branch kind and the PC-relative displacement of each branch.  The scan
takes a few cycles but stays off the critical path when the block arrives
ahead of demand (Section 3.2).  This module models that scan and produces the
exact metadata AirBTB stores: per-branch (offset, kind, target) descriptors
plus the 16-bit branch bitmap of the block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.isa.block import InstructionBlock
from repro.isa.instruction import BranchKind, INSTRUCTIONS_PER_BLOCK


@dataclass(frozen=True)
class BranchDescriptor:
    """Predecoded metadata for one branch instruction inside a block."""

    offset: int
    kind: BranchKind
    target: Optional[int]

    def __post_init__(self) -> None:
        if not 0 <= self.offset < INSTRUCTIONS_PER_BLOCK:
            raise ValueError(f"branch offset {self.offset} outside block")


@dataclass(frozen=True)
class PredecodedBlock:
    """Result of predecoding one instruction block."""

    block_address: int
    bitmap: int
    branches: Tuple[BranchDescriptor, ...]
    latency_cycles: int

    @property
    def branch_count(self) -> int:
        return len(self.branches)

    def branch_at_offset(self, offset: int) -> Optional[BranchDescriptor]:
        for descriptor in self.branches:
            if descriptor.offset == offset:
                return descriptor
        return None


class Predecoder:
    """Scans instruction blocks for branches, as done before L1-I insertion.

    ``latency_cycles`` models the few cycles the branch scan takes (the paper
    cites existing predecoding hardware in Bulldozer and SPARC T4).  The
    latency only matters for demand misses; prefetched blocks absorb it off
    the critical path.
    """

    def __init__(self, latency_cycles: int = 2) -> None:
        if latency_cycles < 0:
            raise ValueError("predecode latency cannot be negative")
        self.latency_cycles = latency_cycles
        self.blocks_scanned = 0
        self.branches_extracted = 0

    def predecode(self, block: InstructionBlock) -> PredecodedBlock:
        """Scan ``block`` and return its branch metadata."""
        descriptors = []
        bitmap = 0
        for instruction in block.branches:
            offset = instruction.offset_in_block
            bitmap |= 1 << offset
            descriptors.append(
                BranchDescriptor(
                    offset=offset,
                    kind=instruction.kind,
                    target=instruction.target,
                )
            )
        self.blocks_scanned += 1
        self.branches_extracted += len(descriptors)
        return PredecodedBlock(
            block_address=block.base_address,
            bitmap=bitmap,
            branches=tuple(descriptors),
            latency_cycles=self.latency_cycles,
        )
