"""Instruction-block and program-image containers.

The program image is the static picture of the synthetic workload binary: a
mapping from block addresses to :class:`InstructionBlock` objects.  It is what
the Confluence predecoder scans when an instruction block is brought into the
L1-I, and what trace-driven components consult to recover the branches inside
a block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.isa.instruction import (
    BLOCK_SIZE_BYTES,
    INSTRUCTIONS_PER_BLOCK,
    Instruction,
    block_address,
    block_offset,
)


@dataclass
class InstructionBlock:
    """A 64-byte aligned instruction block.

    Instructions are stored sparsely by slot (0..15); slots that were never
    populated by the program layout behave as non-branch filler instructions,
    which is how padding/NOP regions of a real binary look to the frontend.
    """

    base_address: int
    _slots: Dict[int, Instruction] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.base_address % BLOCK_SIZE_BYTES != 0:
            raise ValueError(f"block base address {self.base_address:#x} is not 64-byte aligned")

    def add(self, instruction: Instruction) -> None:
        """Place ``instruction`` into its slot within this block."""
        if block_address(instruction.address) != self.base_address:
            raise ValueError(
                f"instruction {instruction.address:#x} does not belong to block "
                f"{self.base_address:#x}"
            )
        self._slots[instruction.offset_in_block] = instruction

    def instruction_at_offset(self, offset: int) -> Optional[Instruction]:
        """Return the instruction in slot ``offset`` or None for filler slots."""
        if not 0 <= offset < INSTRUCTIONS_PER_BLOCK:
            raise ValueError(f"offset {offset} outside block")
        return self._slots.get(offset)

    def instruction_at(self, address: int) -> Optional[Instruction]:
        if block_address(address) != self.base_address:
            raise ValueError(f"address {address:#x} outside block {self.base_address:#x}")
        return self._slots.get(block_offset(address))

    @property
    def branches(self) -> List[Instruction]:
        """Branch instructions in the block, in ascending offset order."""
        return [
            self._slots[offset]
            for offset in sorted(self._slots)
            if self._slots[offset].is_branch
        ]

    @property
    def branch_count(self) -> int:
        return sum(1 for instr in self._slots.values() if instr.is_branch)

    @property
    def branch_bitmap(self) -> int:
        """16-bit bitmap with one bit per instruction slot that holds a branch."""
        bitmap = 0
        for offset, instr in self._slots.items():
            if instr.is_branch:
                bitmap |= 1 << offset
        return bitmap

    def __iter__(self) -> Iterator[Instruction]:
        for offset in sorted(self._slots):
            yield self._slots[offset]

    def __len__(self) -> int:
        return len(self._slots)


class ProgramImage:
    """Static instruction image of a synthetic workload.

    Provides block-level access for the predecoder and instruction-level
    access for trace generation and BTB studies.
    """

    def __init__(self) -> None:
        self._blocks: Dict[int, InstructionBlock] = {}

    def add_instruction(self, instruction: Instruction) -> None:
        base = block_address(instruction.address)
        block = self._blocks.get(base)
        if block is None:
            block = InstructionBlock(base)
            self._blocks[base] = block
        block.add(instruction)

    def add_instructions(self, instructions: Iterable[Instruction]) -> None:
        for instruction in instructions:
            self.add_instruction(instruction)

    def block_at(self, address: int) -> Optional[InstructionBlock]:
        """Return the block containing ``address`` (any address inside it)."""
        return self._blocks.get(block_address(address))

    def instruction_at(self, address: int) -> Optional[Instruction]:
        block = self.block_at(address)
        if block is None:
            return None
        return block.instruction_at(address)

    def blocks(self) -> Iterator[InstructionBlock]:
        for base in sorted(self._blocks):
            yield self._blocks[base]

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    @property
    def footprint_bytes(self) -> int:
        """Instruction footprint in bytes (number of blocks x 64 B)."""
        return self.block_count * BLOCK_SIZE_BYTES

    @property
    def static_branch_count(self) -> int:
        return sum(block.branch_count for block in self._blocks.values())

    def branch_density(self) -> float:
        """Average number of static branch instructions per block."""
        if not self._blocks:
            return 0.0
        return self.static_branch_count / self.block_count

    def address_range(self) -> Tuple[int, int]:
        """Lowest block base and highest block end address in the image."""
        if not self._blocks:
            return (0, 0)
        lowest = min(self._blocks)
        highest = max(self._blocks) + BLOCK_SIZE_BYTES
        return lowest, highest

    def __contains__(self, address: int) -> bool:
        return block_address(address) in self._blocks

    def __len__(self) -> int:
        return self.block_count
