"""Symbolic instruction and branch model.

Addresses are plain integers (byte addresses).  Instructions are fixed-size
(4 bytes) and instruction blocks are 64 bytes, i.e. 16 instructions per block,
matching the configuration in Table 1 of the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

#: Size of one instruction cache block in bytes (Table 1: 64 B blocks).
BLOCK_SIZE_BYTES = 64

#: Size of one instruction in bytes (UltraSPARC III: fixed 4-byte encoding).
INSTRUCTION_SIZE_BYTES = 4

#: Number of instructions that fit in one instruction block.
INSTRUCTIONS_PER_BLOCK = BLOCK_SIZE_BYTES // INSTRUCTION_SIZE_BYTES


class BranchKind(enum.Enum):
    """Branch categories tracked by the BTB designs in the paper.

    AirBTB stores a 2-bit type per branch entry covering conditional,
    unconditional, indirect and return branches.  Calls are direct
    unconditional branches that also push the return-address stack, so they
    are tracked separately here to drive the RAS model, but they map onto the
    ``unconditional`` encoding for storage purposes.
    """

    CONDITIONAL = "conditional"
    UNCONDITIONAL = "unconditional"
    CALL = "call"
    INDIRECT = "indirect"
    INDIRECT_CALL = "indirect_call"
    RETURN = "return"

    @property
    def is_direct(self) -> bool:
        """True when the target is encoded in the instruction (PC-relative)."""
        return self in (BranchKind.CONDITIONAL, BranchKind.UNCONDITIONAL, BranchKind.CALL)

    @property
    def is_call(self) -> bool:
        return self in (BranchKind.CALL, BranchKind.INDIRECT_CALL)

    @property
    def is_return(self) -> bool:
        return self is BranchKind.RETURN

    @property
    def is_indirect(self) -> bool:
        """True when the target must come from the indirect target cache or RAS."""
        return self in (BranchKind.INDIRECT, BranchKind.INDIRECT_CALL, BranchKind.RETURN)

    @property
    def is_unconditional(self) -> bool:
        return self is not BranchKind.CONDITIONAL

    @property
    def storage_encoding(self) -> int:
        """2-bit encoding used when sizing BTB entries (Section 4.2.2)."""
        if self is BranchKind.CONDITIONAL:
            return 0
        if self in (BranchKind.UNCONDITIONAL, BranchKind.CALL):
            return 1
        if self in (BranchKind.INDIRECT, BranchKind.INDIRECT_CALL):
            return 2
        return 3


@dataclass(frozen=True)
class Instruction:
    """One instruction in the synthetic program image.

    Non-branch instructions carry ``kind=None``.  Direct branches carry the
    statically-encoded ``target``; indirect branches and returns have
    ``target=None`` because their target is only known dynamically.
    """

    address: int
    kind: Optional[BranchKind] = None
    target: Optional[int] = None

    def __post_init__(self) -> None:
        if self.address % INSTRUCTION_SIZE_BYTES != 0:
            raise ValueError(f"instruction address {self.address:#x} is not 4-byte aligned")
        if self.kind is not None and self.kind.is_direct and self.target is None:
            raise ValueError("direct branches must carry a static target")
        if self.kind is None and self.target is not None:
            raise ValueError("non-branch instructions cannot carry a target")

    @property
    def is_branch(self) -> bool:
        return self.kind is not None

    @property
    def block(self) -> int:
        return block_address(self.address)

    @property
    def offset_in_block(self) -> int:
        return block_offset(self.address)

    @property
    def fallthrough(self) -> int:
        """Address of the next sequential instruction."""
        return self.address + INSTRUCTION_SIZE_BYTES


def block_address(address: int) -> int:
    """Return the base address of the 64-byte block containing ``address``."""
    return address & ~(BLOCK_SIZE_BYTES - 1)


def block_index(address: int) -> int:
    """Return the block number (address divided by the block size)."""
    return address // BLOCK_SIZE_BYTES


def block_offset(address: int) -> int:
    """Return the instruction slot (0..15) of ``address`` within its block."""
    return (address % BLOCK_SIZE_BYTES) // INSTRUCTION_SIZE_BYTES
