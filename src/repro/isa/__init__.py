"""Instruction-set model used by the Confluence reproduction.

The paper evaluates an UltraSPARC III (RISC, fixed 4-byte instructions)
machine.  The frontend mechanisms it studies only care about a small slice of
the ISA:

* which instructions are branches,
* what kind of branch they are (conditional, unconditional direct, indirect,
  call, return),
* where the branch sits inside its 64-byte instruction block, and
* the PC-relative target encoded in the instruction.

This package provides a symbolic instruction model carrying exactly that
information, the 64-byte / 16-instruction block model, and the hardware
predecoder that Confluence uses to scan blocks on their way into the L1-I.
"""

from repro.isa.instruction import (
    BLOCK_SIZE_BYTES,
    INSTRUCTION_SIZE_BYTES,
    INSTRUCTIONS_PER_BLOCK,
    BranchKind,
    Instruction,
    block_address,
    block_index,
    block_offset,
)
from repro.isa.block import InstructionBlock, ProgramImage
from repro.isa.predecode import BranchDescriptor, PredecodedBlock, Predecoder

__all__ = [
    "BLOCK_SIZE_BYTES",
    "INSTRUCTION_SIZE_BYTES",
    "INSTRUCTIONS_PER_BLOCK",
    "BranchKind",
    "Instruction",
    "InstructionBlock",
    "ProgramImage",
    "BranchDescriptor",
    "PredecodedBlock",
    "Predecoder",
    "block_address",
    "block_index",
    "block_offset",
]
