"""Kernel hot-loop benchmark harness: the tracked perf trajectory.

Performance PRs need a recorded baseline to argue against, so this module
measures the packed simulation kernel end to end — trace generation, the
columnar artifact round trip, and the allocation-free hot loop per design —
and emits the numbers in a *stable* JSON schema.  ``python -m repro bench
--json BENCH_kernel.json`` writes one trajectory point; the committed
``BENCH_kernel.json`` at the repo root is the first, and CI re-runs the
benchmark at smoke scale on every push, failing on schema drift (never on
timing — CI machines are noisy, the schema is not).

The headline numbers:

* ``designs[*].regions_per_sec`` — packed hot-loop throughput per design,
* ``record_path.regions_per_sec`` — the record-view oracle loop on the same
  trace (the packed loop's predecessor), giving ``packed_speedup``,
* ``stages`` — per-stage wall times (generate / save / load),
* ``peak_rss_kb`` — the process's peak resident set, which the mmap-backed
  trace store is meant to keep flat as worker counts grow.

Scale knobs mirror the benchmark suite: ``REPRO_BENCH_SMOKE=1`` selects the
tiny CI operating point; explicit CLI flags always win.
"""

from __future__ import annotations

import json
import os
import platform
import resource
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.designs import design_from_spec, resolve_design
from repro.core.frontend import FrontendResult, FrontendSimulator
from repro.workloads import generate_trace, get_profile, synthesize_program
from repro.workloads.packed import load_packed
from repro.workloads.trace import Trace

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "default_bench_settings",
    "format_bench_report",
    "load_trajectory_point",
    "run_kernel_benchmark",
    "schema_signature",
    "schemas_match",
]

#: Bumped whenever the emitted JSON layout changes meaning; CI compares the
#: recursive key structure of a fresh run against the committed trajectory
#: point, so accidental drift fails fast.
BENCH_SCHEMA_VERSION = 1

#: (scale, instructions, repeats) operating points: the full point is what
#: BENCH_kernel.json trajectory entries are recorded at; the smoke point is
#: what CI runs on every push.
_FULL_POINT = (0.2, 200_000, 3)
_SMOKE_POINT = (0.08, 20_000, 1)


def default_bench_settings() -> Dict[str, object]:
    """Operating point implied by ``REPRO_BENCH_SMOKE`` (CLI flags override)."""
    smoke = os.environ.get("REPRO_BENCH_SMOKE") == "1"
    scale, instructions, repeats = _SMOKE_POINT if smoke else _FULL_POINT
    return {
        "smoke": smoke,
        "scale": scale,
        "instructions": instructions,
        "repeats": repeats,
    }


def _peak_rss_kb() -> int:
    """Peak resident set size of this process in kilobytes."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss is bytes there
        peak //= 1024
    return int(peak)


def _time_run(
    simulator: FrontendSimulator, trace: Trace, use_packed: bool = True
) -> Tuple[FrontendResult, float]:
    start = time.perf_counter()
    result = simulator.run(trace, use_packed=use_packed)
    return result, time.perf_counter() - start


def run_kernel_benchmark(
    profile_name: str = "oltp_db2",
    scale: float = 0.2,
    instructions: int = 200_000,
    seed: int = 3,
    designs: Sequence[str] = ("baseline", "confluence"),
    repeats: int = 3,
    artifact_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Measure the packed kernel and return one trajectory point (plain data).

    The trace is generated once, round-tripped through the columnar artifact
    format, mapped back in zero-copy, and then driven through every design's
    packed hot loop ``repeats`` times (best-of is reported — the interesting
    quantity is the kernel's speed, not the scheduler's noise).  The first
    design is also run through the record-view oracle loop once, giving the
    packed/record speedup the acceptance gate tracks.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    if not designs:
        raise ValueError("at least one design is required")
    specs = [resolve_design(design) for design in designs]

    profile = get_profile(profile_name)
    if scale != 1.0:
        profile = profile.scaled(scale)

    start = time.perf_counter()
    program = synthesize_program(profile)
    trace = generate_trace(program, instructions, seed=seed, name=profile.name)
    generate_s = time.perf_counter() - start

    def _measure(directory: str) -> Dict[str, object]:
        artifact = Path(directory) / "bench.trace"
        start = time.perf_counter()
        trace.packed.save(artifact)
        save_s = time.perf_counter() - start
        start = time.perf_counter()
        packed = load_packed(artifact, mmap=True)
        load_s = time.perf_counter() - start
        mapped_trace = Trace.from_packed(packed)
        return {
            "save_s": save_s,
            "load_s": load_s,
            "artifact_bytes": artifact.stat().st_size,
            "mapped": packed.mapped,
            "trace": mapped_trace,
        }

    if artifact_dir is not None:
        round_trip = _measure(artifact_dir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as directory:
            round_trip = _measure(directory)
    bench_trace: Trace = round_trip.pop("trace")
    regions = len(bench_trace)

    design_rows: List[Dict[str, object]] = []
    for spec in specs:
        best_s = None
        result = None
        for _ in range(repeats):
            simulator, _ = design_from_spec(spec, program)
            result, elapsed = _time_run(simulator, bench_trace)
            best_s = elapsed if best_s is None else min(best_s, elapsed)
        design_rows.append({
            "design": spec.name,
            "seconds": best_s,
            "regions_per_sec": regions / best_s if best_s else 0.0,
            "ipc": result.ipc,
        })

    # The oracle gets the same repeats/best-of treatment as the packed rows:
    # packed_speedup is a gated trajectory metric, so both sides of the
    # ratio must absorb scheduler noise identically.
    oracle_s = None
    oracle_result = None
    for _ in range(repeats):
        oracle_sim, _ = design_from_spec(specs[0], program)
        oracle_result, elapsed = _time_run(oracle_sim, bench_trace, use_packed=False)
        oracle_s = elapsed if oracle_s is None else min(oracle_s, elapsed)
    record_regions_per_sec = regions / oracle_s if oracle_s else 0.0
    packed_regions_per_sec = design_rows[0]["regions_per_sec"]

    return {
        "schema": BENCH_SCHEMA_VERSION,
        "bench": "kernel_hotloop",
        "config": {
            "profile": profile_name,
            "scale": scale,
            "instructions": instructions,
            "seed": seed,
            "designs": [spec.name for spec in specs],
            "repeats": repeats,
        },
        "trace": {
            "regions": regions,
            "instructions": bench_trace.instruction_count,
            "artifact_bytes": round_trip["artifact_bytes"],
            "mapped": round_trip["mapped"],
        },
        "stages": {
            "generate_s": generate_s,
            "save_s": round_trip["save_s"],
            "load_s": round_trip["load_s"],
        },
        "designs": design_rows,
        "record_path": {
            "design": specs[0].name,
            "seconds": oracle_s,
            "regions_per_sec": record_regions_per_sec,
            "ipc": oracle_result.ipc,
        },
        "packed_speedup": (
            packed_regions_per_sec / record_regions_per_sec
            if record_regions_per_sec
            else 0.0
        ),
        "peak_rss_kb": _peak_rss_kb(),
        "host": {
            "python": platform.python_version(),
            "platform": sys.platform,
            "machine": platform.machine(),
        },
    }


def schema_signature(payload: object) -> object:
    """Recursive key structure of a bench payload (values erased).

    Two payloads with the same signature have the same shape: identical
    nested dict keys, with every list reduced to the signature of its
    elements (which must agree with each other).  This is what the CI smoke
    job compares against the committed trajectory point — timing values
    change every run, the schema must not.
    """
    if isinstance(payload, dict):
        return {key: schema_signature(value) for key, value in sorted(payload.items())}
    if isinstance(payload, list):
        signatures = [schema_signature(item) for item in payload]
        unique: List[object] = []
        for signature in signatures:
            if signature not in unique:
                unique.append(signature)
        return unique
    return type(payload).__name__


def schemas_match(left: object, right: object) -> bool:
    """True when two payloads share a schema (bool/int/float treated alike)."""

    def normalize(signature: object) -> object:
        if isinstance(signature, dict):
            return {key: normalize(value) for key, value in signature.items()}
        if isinstance(signature, list):
            return [normalize(item) for item in signature]
        if signature in ("int", "float", "bool"):
            return "number"
        return signature

    return normalize(schema_signature(left)) == normalize(schema_signature(right))


def format_bench_report(payload: Dict[str, object]) -> str:
    """Human-readable rendering of one trajectory point."""
    lines = [
        f"kernel hot-loop benchmark (schema {payload['schema']})",
        "  trace: {regions} regions / {instructions} instructions "
        "({artifact_bytes} bytes on disk, mapped={mapped})".format(**payload["trace"]),
        "  stages: generate {generate_s:.3f}s, save {save_s:.3f}s, "
        "load {load_s:.3f}s".format(**payload["stages"]),
    ]
    for row in payload["designs"]:
        lines.append(
            "  {design:>16}: {regions_per_sec:>12,.0f} regions/s "
            "({seconds:.3f}s best)".format(**row)
        )
    record = payload["record_path"]
    lines.append(
        f"  {record['design']:>16}: {record['regions_per_sec']:>12,.0f} "
        "regions/s (record-view oracle)"
    )
    lines.append(f"  packed speedup over record path: {payload['packed_speedup']:.2f}x")
    lines.append(f"  peak RSS: {payload['peak_rss_kb']} KB")
    return "\n".join(lines)


def load_trajectory_point(path: Union[str, Path]) -> Dict[str, object]:
    """Read a committed trajectory point (schema-checked)."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("schema") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path} is not a schema-{BENCH_SCHEMA_VERSION} bench trajectory point"
        )
    return payload
