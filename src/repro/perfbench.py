"""Kernel hot-loop benchmark harness: the tracked perf trajectory.

Performance PRs need a recorded baseline to argue against, so this module
measures the simulation kernel end to end — trace generation, the columnar
artifact round trip, and the per-design hot loop on a selected backend —
and emits the numbers in a *stable* JSON schema.  ``python -m repro bench
--json BENCH_kernel.json`` appends one trajectory point; the committed
``BENCH_kernel.json`` at the repo root holds the recorded history, and CI
re-runs the benchmark at smoke scale on every push, failing on schema drift
and on throughput regressions beyond ``--tolerance`` (timing alone never
gates — CI machines are noisy — but a collapse past the tolerance is a real
regression, not noise).

The headline numbers:

* ``designs[*].regions_per_sec`` — hot-loop throughput per design on the
  selected backend,
* ``backends[*].regions_per_sec`` — the first design driven through every
  *available* registered backend (``scalar``, ``reference``, ``batch``,
  anything user-registered), giving ``speedup_over_reference`` for the
  selected backend,
* ``scenario`` — aggregate regions/sec of an 8-core homogeneous CMP on
  ``scalar`` vs the lane-vectorized ``batch`` backend
  (``batch_speedup_over_scalar`` is the PR-8 headline metric),
* ``stages`` — per-stage wall times (generate / save / load),
* ``peak_rss_kb`` — the process's peak resident set, which the mmap-backed
  trace store is meant to keep flat as worker counts grow.

Scale knobs mirror the benchmark suite: ``REPRO_BENCH_SMOKE=1`` selects the
tiny CI operating point; explicit CLI flags always win.
"""

from __future__ import annotations

import json
import os
import platform
import resource
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.backends.base import DEFAULT_BACKEND, backend_names, get_backend
from repro.core.designs import design_from_spec, resolve_design
from repro.core.frontend import FrontendResult, FrontendSimulator
from repro.workloads import generate_trace, get_profile, synthesize_program
from repro.workloads.packed import load_packed
from repro.workloads.trace import Trace

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "append_trajectory_point",
    "compare_to_reference",
    "default_bench_settings",
    "format_bench_report",
    "format_comparison",
    "load_trajectory",
    "load_trajectory_point",
    "migrate_trajectory_point",
    "normalized_trajectory",
    "point_backend_rps",
    "run_kernel_benchmark",
    "schema_signature",
    "schemas_match",
    "trajectory_backend_series",
]

#: Bumped whenever the emitted JSON layout changes meaning; CI compares the
#: recursive key structure of a fresh run against the committed trajectory
#: point, so accidental drift fails fast.
#: (2: pluggable backends — design rows carry ``backend``, the per-backend
#: ``backends`` table replaces ``record_path``, and ``packed_speedup``
#: generalizes to ``speedup_over_reference``.)
#: (3: the ``scenario`` section — aggregate regions/sec of an 8-core
#: homogeneous CMP on the ``scalar`` and lane-vectorized ``batch`` backends,
#: plus ``batch_speedup_over_scalar``; unavailable backends are skipped in
#: the per-backend table instead of crashing the bench.  Schema-1 points
#: are migrated to schema 2 whenever the trajectory file is rewritten.)
BENCH_SCHEMA_VERSION = 3

#: (scale, instructions, repeats) operating points: the full point is what
#: BENCH_kernel.json trajectory entries are recorded at; the smoke point is
#: what CI runs on every push.
_FULL_POINT = (0.2, 200_000, 3)
_SMOKE_POINT = (0.08, 20_000, 1)


def default_bench_settings() -> Dict[str, object]:
    """Operating point implied by ``REPRO_BENCH_SMOKE`` (CLI flags override)."""
    smoke = os.environ.get("REPRO_BENCH_SMOKE") == "1"
    scale, instructions, repeats = _SMOKE_POINT if smoke else _FULL_POINT
    return {
        "smoke": smoke,
        "scale": scale,
        "instructions": instructions,
        "repeats": repeats,
    }


def _peak_rss_kb() -> int:
    """Peak resident set size of this process in kilobytes."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss is bytes there
        peak //= 1024
    return int(peak)


def _time_run(
    simulator: FrontendSimulator, trace: Trace, backend: str
) -> Tuple[FrontendResult, float]:
    start = time.perf_counter()
    result = simulator.run(trace, backend=backend)
    return result, time.perf_counter() - start


def _scenario_benchmark(
    program: object,
    design: str,
    instructions: int,
    repeats: int,
    cores: int = 8,
) -> Dict[str, object]:
    """Aggregate throughput of a ``cores``-core homogeneous CMP.

    The headline comparison the lane-vectorized ``batch`` backend exists
    for: the same chip driven by ``scalar`` (one core at a time) and by
    ``batch`` (all co-located cores as lanes of one vectorized call).
    Traces are generated *before* timing so both sides measure pure
    simulation; best-of-``repeats`` on each side.  When numpy is absent the
    batch columns record 0.0 and ``batch_available`` is ``False`` — the
    schema stays stable either way.
    """
    from repro.core.cmp import ChipMultiprocessor

    cmp_ = ChipMultiprocessor(
        program, cores=cores, instructions_per_core=instructions  # type: ignore[arg-type]
    )
    # Pre-generate (and memoize) every core's trace outside the timed region.
    traces = cmp_._core_traces()
    regions = sum(len(trace) for trace in traces)

    def _best(run_backend: str) -> float:
        best_s: Optional[float] = None
        for _ in range(repeats):
            start = time.perf_counter()
            cmp_.run_design(design, backend=run_backend)
            elapsed = time.perf_counter() - start
            best_s = elapsed if best_s is None else min(best_s, elapsed)
        assert best_s is not None
        return best_s

    scalar_s = _best("scalar")
    scalar_rps = regions / scalar_s if scalar_s else 0.0
    batch_available = get_backend("batch").available()
    if batch_available:
        batch_s = _best("batch")
        batch_rps = regions / batch_s if batch_s else 0.0
    else:
        batch_s = 0.0
        batch_rps = 0.0
    return {
        "cores": cores,
        "design": design,
        "instructions_per_core": instructions,
        "regions": regions,
        "scalar_seconds": scalar_s,
        "scalar_regions_per_sec": scalar_rps,
        "batch_available": batch_available,
        "batch_seconds": batch_s,
        "batch_regions_per_sec": batch_rps,
        "batch_speedup_over_scalar": (
            batch_rps / scalar_rps if scalar_rps and batch_rps else 0.0
        ),
    }


def run_kernel_benchmark(
    profile_name: str = "oltp_db2",
    scale: float = 0.2,
    instructions: int = 200_000,
    seed: int = 3,
    designs: Sequence[str] = ("baseline", "confluence"),
    repeats: int = 3,
    artifact_dir: Optional[str] = None,
    backend: str = DEFAULT_BACKEND,
) -> Dict[str, object]:
    """Measure the simulation kernel and return one trajectory point.

    The trace is generated once, round-tripped through the columnar artifact
    format, mapped back in zero-copy, and then driven through every design's
    hot loop on ``backend`` ``repeats`` times (best-of is reported — the
    interesting quantity is the kernel's speed, not the scheduler's noise).
    The first design is additionally driven through *every* registered
    backend, so the point records each backend's regions/sec and the
    selected backend's ``speedup_over_reference`` (the gated trajectory
    metric; both sides of the ratio get the same repeats/best-of treatment
    so they absorb scheduler noise identically).
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    if not designs:
        raise ValueError("at least one design is required")
    get_backend(backend)  # unknown names fail before any simulation
    specs = [resolve_design(design) for design in designs]

    profile = get_profile(profile_name)
    if scale != 1.0:
        profile = profile.scaled(scale)

    start = time.perf_counter()
    program = synthesize_program(profile)
    trace = generate_trace(program, instructions, seed=seed, name=profile.name)
    generate_s = time.perf_counter() - start

    def _measure(directory: str) -> Dict[str, object]:
        artifact = Path(directory) / "bench.trace"
        start = time.perf_counter()
        trace.packed.save(artifact)
        save_s = time.perf_counter() - start
        start = time.perf_counter()
        packed = load_packed(artifact, mmap=True)
        load_s = time.perf_counter() - start
        mapped_trace = Trace.from_packed(packed)
        return {
            "save_s": save_s,
            "load_s": load_s,
            "artifact_bytes": artifact.stat().st_size,
            "mapped": packed.mapped,
            "trace": mapped_trace,
        }

    if artifact_dir is not None:
        round_trip = _measure(artifact_dir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as directory:
            round_trip = _measure(directory)
    bench_trace: Trace = round_trip.pop("trace")
    regions = len(bench_trace)

    def _best_of(spec_name: str, run_backend: str) -> Tuple[float, FrontendResult]:
        best_s: Optional[float] = None
        result: Optional[FrontendResult] = None
        for _ in range(repeats):
            simulator, _ = design_from_spec(resolve_design(spec_name), program)
            result, elapsed = _time_run(simulator, bench_trace, run_backend)
            best_s = elapsed if best_s is None else min(best_s, elapsed)
        assert best_s is not None and result is not None
        return best_s, result

    design_rows: List[Dict[str, object]] = []
    for spec in specs:
        best_s, result = _best_of(spec.name, backend)
        design_rows.append({
            "design": spec.name,
            "backend": backend,
            "seconds": best_s,
            "regions_per_sec": regions / best_s if best_s else 0.0,
            "ipc": result.ipc,
        })

    # Every *available* registered backend drives the first design: the
    # per-backend regions/sec table is what makes a new backend's
    # cost/benefit visible the moment it registers.  A backend missing its
    # optional dependency (``batch`` without numpy) is skipped, not fatal.
    backend_rows: List[Dict[str, object]] = []
    per_backend_rps: Dict[str, float] = {}
    for name in backend_names():
        if not get_backend(name).available():
            continue
        best_s, result = _best_of(specs[0].name, name)
        rps = regions / best_s if best_s else 0.0
        per_backend_rps[name] = rps
        backend_rows.append({
            "backend": name,
            "design": specs[0].name,
            "seconds": best_s,
            "regions_per_sec": rps,
            "ipc": result.ipc,
        })

    reference_rps = per_backend_rps.get("reference", 0.0)
    selected_rps = per_backend_rps.get(backend, 0.0)

    scenario_row = _scenario_benchmark(program, specs[0].name, instructions, repeats)

    return {
        "schema": BENCH_SCHEMA_VERSION,
        "bench": "kernel_hotloop",
        "config": {
            "profile": profile_name,
            "scale": scale,
            "instructions": instructions,
            "seed": seed,
            "designs": [spec.name for spec in specs],
            "repeats": repeats,
            "backend": backend,
        },
        "trace": {
            "regions": regions,
            "instructions": bench_trace.instruction_count,
            "artifact_bytes": round_trip["artifact_bytes"],
            "mapped": round_trip["mapped"],
        },
        "stages": {
            "generate_s": generate_s,
            "save_s": round_trip["save_s"],
            "load_s": round_trip["load_s"],
        },
        "designs": design_rows,
        "backends": backend_rows,
        "scenario": scenario_row,
        "speedup_over_reference": (
            selected_rps / reference_rps if reference_rps else 0.0
        ),
        "peak_rss_kb": _peak_rss_kb(),
        "host": {
            "python": platform.python_version(),
            "platform": sys.platform,
            "machine": platform.machine(),
        },
    }


def schema_signature(payload: object) -> object:
    """Recursive key structure of a bench payload (values erased).

    Two payloads with the same signature have the same shape: identical
    nested dict keys, with every list reduced to the signature of its
    elements (which must agree with each other).  This is what the CI smoke
    job compares against the committed trajectory point — timing values
    change every run, the schema must not.
    """
    if isinstance(payload, dict):
        return {key: schema_signature(value) for key, value in sorted(payload.items())}
    if isinstance(payload, list):
        signatures = [schema_signature(item) for item in payload]
        unique: List[object] = []
        for signature in signatures:
            if signature not in unique:
                unique.append(signature)
        return unique
    return type(payload).__name__


def schemas_match(left: object, right: object) -> bool:
    """True when two payloads share a schema (bool/int/float treated alike)."""

    def normalize(signature: object) -> object:
        if isinstance(signature, dict):
            return {key: normalize(value) for key, value in signature.items()}
        if isinstance(signature, list):
            return [normalize(item) for item in signature]
        if signature in ("int", "float", "bool"):
            return "number"
        return signature

    return normalize(schema_signature(left)) == normalize(schema_signature(right))


def compare_to_reference(
    payload: Dict[str, object],
    reference: Dict[str, object],
    tolerance: float,
) -> List[Dict[str, object]]:
    """Gate a fresh bench payload against a recorded trajectory point.

    For every design the two payloads share, the fresh run's regions/sec
    must be at least ``tolerance`` times the recorded value; a row with
    ``ok: False`` is a regression beyond tolerance.  Works against schema-1
    and schema-2 reference points alike (both carry per-design
    ``regions_per_sec`` rows).  Raises :class:`ValueError` when the
    tolerance is not in (0, inf) or the payloads share no design.
    """
    if not tolerance > 0:
        raise ValueError("tolerance must be positive")

    def _design_rps(point: Dict[str, object]) -> Dict[str, float]:
        rows = point.get("designs")
        if not isinstance(rows, list):
            raise ValueError("bench payload has no design rows to compare")
        return {
            str(row["design"]): float(row["regions_per_sec"])
            for row in rows
            if isinstance(row, dict)
        }

    fresh = _design_rps(payload)
    recorded = _design_rps(reference)
    shared = [name for name in fresh if name in recorded]
    if not shared:
        raise ValueError(
            "no shared designs between the fresh run "
            f"({', '.join(sorted(fresh))}) and the reference point "
            f"({', '.join(sorted(recorded))})"
        )
    rows: List[Dict[str, object]] = []
    for name in shared:
        ratio = fresh[name] / recorded[name] if recorded[name] else 0.0
        rows.append({
            "design": name,
            "regions_per_sec": fresh[name],
            "reference_regions_per_sec": recorded[name],
            "ratio": ratio,
            "ok": ratio >= tolerance,
        })
    return rows


def format_comparison(
    rows: Sequence[Dict[str, object]], tolerance: float
) -> str:
    """Human-readable rendering of a :func:`compare_to_reference` result."""
    lines = [f"throughput vs recorded trajectory point (tolerance {tolerance:.2f}x):"]
    for row in rows:
        verdict = "ok" if row["ok"] else "REGRESSED"
        lines.append(
            "  {design:>16}: {regions_per_sec:>12,.0f} regions/s vs "
            "{reference_regions_per_sec:>12,.0f} recorded "
            "({ratio:.2f}x) {verdict}".format(verdict=verdict, **row)
        )
    return "\n".join(lines)


def format_bench_report(payload: Dict[str, object]) -> str:
    """Human-readable rendering of one trajectory point."""
    lines = [
        f"kernel hot-loop benchmark (schema {payload['schema']})",
        "  trace: {regions} regions / {instructions} instructions "
        "({artifact_bytes} bytes on disk, mapped={mapped})".format(**payload["trace"]),
        "  stages: generate {generate_s:.3f}s, save {save_s:.3f}s, "
        "load {load_s:.3f}s".format(**payload["stages"]),
    ]
    for row in payload["designs"]:
        lines.append(
            "  {design:>16}: {regions_per_sec:>12,.0f} regions/s "
            "({seconds:.3f}s best, {backend} backend)".format(**row)
        )
    for row in payload["backends"]:
        lines.append(
            "  backend {backend:>10}: {regions_per_sec:>12,.0f} regions/s "
            "on {design}".format(**row)
        )
    scenario = payload.get("scenario")
    if isinstance(scenario, dict):
        lines.append(
            "  {cores}-core CMP ({design}): scalar "
            "{scalar_regions_per_sec:,.0f} regions/s".format(**scenario)
        )
        if scenario.get("batch_available"):
            lines.append(
                "    batch {batch_regions_per_sec:,.0f} regions/s "
                "({batch_speedup_over_scalar:.2f}x over scalar)".format(**scenario)
            )
        else:
            lines.append("    batch backend unavailable (numpy not installed)")
    lines.append(
        "  speedup over reference backend: "
        f"{payload['speedup_over_reference']:.2f}x"
    )
    lines.append(f"  peak RSS: {payload['peak_rss_kb']} KB")
    return "\n".join(lines)


def _trajectory_points(payload: object, path: Union[str, Path]) -> List[Dict[str, object]]:
    """Normalize a trajectory file: a ``points`` list, or one bare point."""
    if isinstance(payload, dict) and isinstance(payload.get("points"), list):
        points = [point for point in payload["points"] if isinstance(point, dict)]
        if len(points) != len(payload["points"]) or not points:
            raise ValueError(f"{path} has malformed trajectory points")
        return points
    if isinstance(payload, dict) and "schema" in payload:
        return [payload]  # pre-trajectory format: one bare point
    raise ValueError(f"{path} is not a bench trajectory file")


def load_trajectory(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Read every recorded point of a trajectory file, oldest first.

    Accepts both the trajectory format (``{"bench": ..., "points": [...]}``)
    and the original single-point format (one bare payload dict).  Points
    recorded under older schemas are returned as-is — the history keeps its
    original shapes; only :func:`load_trajectory_point` insists on the
    current schema.
    """
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    return _trajectory_points(payload, path)


def migrate_trajectory_point(point: Dict[str, object]) -> Dict[str, object]:
    """Normalize a recorded point to the schema-2 field vocabulary.

    Schema-1 points carry the retired ``packed_speedup`` and ``record_path``
    fields; both map losslessly onto the schema-2 shape (the record-path row
    *was* the reference backend's measurement, ``packed_speedup`` *was*
    ``speedup_over_reference``, and everything ran on the then-only scalar
    loop).  Later schemas pass through unchanged — schema 3 only *adds* the
    ``scenario`` section, so 2 and 3 already share the compared vocabulary.
    """
    if point.get("schema") != 1:
        return point
    migrated = dict(point)
    record_path = migrated.pop("record_path", None)
    packed_speedup = migrated.pop("packed_speedup", 0.0)
    config = dict(migrated.get("config", {}))  # type: ignore[arg-type]
    config.setdefault("backend", "scalar")
    migrated["config"] = config
    design_rows = [
        {**row, "backend": "scalar"}
        for row in migrated.get("designs", ())  # type: ignore[union-attr]
        if isinstance(row, dict)
    ]
    migrated["designs"] = design_rows
    backend_rows: List[Dict[str, object]] = []
    if isinstance(record_path, dict):
        backend_rows.append({**record_path, "backend": "reference"})
    if design_rows:
        first = dict(design_rows[0])
        first["backend"] = "scalar"
        backend_rows.append(first)
    migrated["backends"] = backend_rows
    migrated["speedup_over_reference"] = packed_speedup
    migrated["schema"] = 2
    return migrated


def load_trajectory_point(path: Union[str, Path]) -> Dict[str, object]:
    """Read the latest committed trajectory point, migrated and checked.

    Schema-1 points are migrated on the fly
    (:func:`migrate_trajectory_point`); any point from schema 2 on shares
    the compared vocabulary (per-design ``regions_per_sec`` rows) and is
    accepted, so ``bench --compare`` works like-for-like across schema
    versions instead of rejecting history recorded by older builds.
    """
    latest = migrate_trajectory_point(load_trajectory(path)[-1])
    schema = latest.get("schema")
    if not isinstance(schema, int) or not 2 <= schema <= BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"latest point in {path} is not a known bench trajectory point "
            f"(schema {schema!r}, supported 2..{BENCH_SCHEMA_VERSION})"
        )
    return latest


def normalized_trajectory(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Every recorded point of a trajectory file, migrated, oldest first.

    The bundle-export hook behind ``python -m repro report``: points from
    any recorded schema come back in the schema-2+ field vocabulary
    (:func:`migrate_trajectory_point`), so renderers and the regression gate
    never meet the retired ``packed_speedup``/``record_path`` names.  Unlike
    :func:`load_trajectory`, an explicitly *empty* trajectory
    (``{"points": []}``) is returned as an empty list — a brand-new file is
    a legitimate "nothing recorded yet" state for a report, not corruption.
    """
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict) and payload.get("points") == []:
        return []
    return [migrate_trajectory_point(point) for point in _trajectory_points(payload, path)]


def point_backend_rps(point: Mapping[str, object]) -> Dict[str, float]:
    """``{backend name: regions/sec}`` from one normalized point.

    Reads the per-backend table every schema-2+ point carries; rows without
    a throughput value (or a malformed table) are simply absent, so the
    regression gate and the trend chart degrade to "fewer comparable
    backends" rather than crashing on history recorded by older builds.
    """
    rows = point.get("backends")
    series: Dict[str, float] = {}
    if not isinstance(rows, list):
        return series
    for row in rows:
        if not isinstance(row, dict):
            continue
        backend = row.get("backend")
        rps = row.get("regions_per_sec")
        if isinstance(backend, str) and isinstance(rps, (int, float)):
            series[backend] = float(rps)
    return series


def trajectory_backend_series(
    points: Sequence[Mapping[str, object]],
) -> Dict[str, List[Optional[float]]]:
    """Per-backend regions/sec series across a normalized trajectory.

    Returns ``{backend: [rps or None per point]}`` with one slot per input
    point — ``None`` where that point did not measure the backend (e.g. the
    ``batch`` backend before PR 8, or a no-numpy host).  This is the series
    the report's trend chart draws, one line per backend.
    """
    per_point = [point_backend_rps(point) for point in points]
    backends: List[str] = []
    for rps in per_point:
        for name in rps:
            if name not in backends:
                backends.append(name)
    return {
        name: [rps.get(name) for rps in per_point]
        for name in sorted(backends)
    }


def append_trajectory_point(
    path: Union[str, Path], payload: Dict[str, object]
) -> int:
    """Append one point to a trajectory file; returns the new point count.

    Creates the file when missing; a pre-trajectory single-point file is
    upgraded in place (its recorded point becomes the history's first
    entry), and recorded schema-1 points are normalized to schema 2
    (:func:`migrate_trajectory_point`) so the retired ``packed_speedup``/
    ``record_path`` vocabulary drops out of the history whenever the file
    is rewritten.  The write is atomic (temp file + rename), the ``put``
    idiom of the result cache.
    """
    path = Path(path)
    points: List[Dict[str, object]] = []
    if path.exists():
        points = [migrate_trajectory_point(point) for point in load_trajectory(path)]
    points.append(dict(payload))
    document = {"bench": "kernel_hotloop", "points": points}
    handle, tmp_name = tempfile.mkstemp(
        dir=str(path.parent) if str(path.parent) else ".",
        prefix=".tmp-", suffix=".json",
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as tmp:
            json.dump(document, tmp, indent=2, sort_keys=True)
            tmp.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return len(points)
