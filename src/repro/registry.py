"""Component registries: pluggable BTB designs and instruction prefetchers.

The factory layer used to be a closed if/elif chain over string tags inside
:func:`repro.core.designs.build_design`; every new component meant editing
core files.  This module replaces that with decorator-based registries:

* component modules self-register their factories at import time
  (``@BTB_REGISTRY.register("conventional")``), and
* user code can register custom components without touching ``repro.core``::

      from repro.registry import BTB_REGISTRY, BuildContext

      @BTB_REGISTRY.register("my_btb")
      def build_my_btb(ctx: BuildContext, **params):
          return MyBTB(**params)

A factory receives a :class:`BuildContext` describing the sharable
surroundings of the core being assembled (program image, LLC, L1-I, shared
SHIFT history) plus the parameter overrides carried by the
:class:`~repro.core.designs.DesignSpec` that named it.  Factories for
integrated frontends (Confluence's AirBTB) may deposit the integration object
on ``ctx.confluence`` so downstream factories (the SHIFT prefetcher) and the
simulator wiring can pick it up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.caches.l1i import InstructionCache
    from repro.caches.llc import SharedLLC
    from repro.core.confluence import Confluence
    from repro.prefetch.shift import ShiftHistory
    from repro.workloads.cfg import SyntheticProgram


class UnknownComponentError(KeyError):
    """Raised when a name is not found in a registry or catalog.

    Subclasses :class:`KeyError` so existing ``except KeyError`` call sites
    keep working, but renders its message without the quoting ``KeyError``
    applies to its first argument.
    """

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.args[0] if self.args else ""


def unknown_name_error(
    kind: str, name: str, known: Iterable[str]
) -> UnknownComponentError:
    """The single unknown-name error used by registries and catalogs."""
    listing = ", ".join(sorted(known))
    return UnknownComponentError(f"unknown {kind} {name!r}; known: {listing}")


def ensure_unique_names(
    kind: str,
    names: Iterable[str],
    hint: str = "DesignSpec.derive() renames a spec",
) -> None:
    """The single duplicate-name check used by runs, grids and sweeps.

    Results are keyed by name, so colliding names would silently overwrite
    each other; refuse loudly instead.
    """
    counts: Dict[str, int] = {}
    for name in names:
        counts[name] = counts.get(name, 0) + 1
    duplicates = sorted(name for name, count in counts.items() if count > 1)
    if duplicates:
        raise ValueError(
            f"duplicate {kind} name(s): {', '.join(duplicates)} — every "
            f"{kind} in a run needs a unique name ({hint})"
        )


@dataclass
class BuildContext:
    """Everything a component factory may need beyond its own parameters.

    Attributes:
        program: the synthetic program the core will run (``None`` for bare
            component builds that do not need a program image).
        llc: the shared last-level cache (virtualized metadata lives here).
        l1i: the core's instruction cache.
        shared_history: SHIFT history shared across cores, if any.
        record_history: whether this core records the shared history.
        confluence: set by the AirBTB factory so the prefetcher factory and
            the simulator wiring can reuse the integrated instance.
    """

    program: Optional["SyntheticProgram"]
    llc: "SharedLLC"
    l1i: "InstructionCache"
    shared_history: Optional["ShiftHistory"] = None
    record_history: bool = True
    confluence: Optional["Confluence"] = None


ComponentFactory = Callable[..., object]


class Registry:
    """Name -> factory mapping with decorator-based registration.

    ``loader`` is an optional zero-argument hook invoked on the first lookup
    miss; it imports whatever modules self-register into this registry (the
    component registries use :func:`load_builtin_components`, the backend
    registry in :mod:`repro.backends` imports its kernel modules).  The hook
    must be idempotent — it runs on every miss until the name resolves.
    """

    def __init__(self, kind: str, loader: Optional[Callable[[], None]] = None) -> None:
        self.kind = kind
        self._factories: Dict[str, ComponentFactory] = {}
        self._loader = loader

    def _load_lazily(self) -> None:
        if self._loader is not None:
            self._loader()

    def register(
        self,
        name: str,
        factory: Optional[ComponentFactory] = None,
        *,
        overwrite: bool = False,
    ) -> Callable[[ComponentFactory], ComponentFactory]:
        """Register ``factory`` under ``name``; usable as a decorator.

        Raises :class:`ValueError` on duplicate registration unless
        ``overwrite=True`` is passed.
        """
        if factory is None:

            def decorator(func: ComponentFactory) -> ComponentFactory:
                self.register(name, func, overwrite=overwrite)
                return func

            return decorator
        if not overwrite and name in self._factories:
            raise ValueError(
                f"{self.kind} {name!r} is already registered; "
                "pass overwrite=True to replace it"
            )
        self._factories[name] = factory
        return factory

    def unregister(self, name: str) -> None:
        """Remove a registration (mainly for tests and plugin teardown)."""
        self._factories.pop(name, None)

    def get(self, name: str) -> ComponentFactory:
        """Resolve ``name``, running the lazy loader on first miss."""
        try:
            return self._factories[name]
        except KeyError:
            self._load_lazily()
        try:
            return self._factories[name]
        except KeyError:
            raise unknown_name_error(self.kind, name, self._factories) from None

    def __contains__(self, name: str) -> bool:
        if name not in self._factories:
            self._load_lazily()
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self._factories)

    def __len__(self) -> int:
        return len(self._factories)

    def names(self) -> List[str]:
        self._load_lazily()
        return sorted(self._factories)


_BUILTIN_COMPONENT_MODULES = (
    "repro.branch.btb_conventional",
    "repro.branch.btb_two_level",
    "repro.branch.btb_phantom",
    "repro.prefetch.base",
    "repro.prefetch.fdp",
    "repro.prefetch.shift",
    "repro.core.confluence",
)

_builtins_loaded = False


def load_builtin_components() -> None:
    """Import every built-in component module so its factories register.

    Importing :mod:`repro` does this implicitly; the explicit hook keeps the
    registries usable when only :mod:`repro.registry` has been imported.
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    import importlib

    for module in _BUILTIN_COMPONENT_MODULES:
        importlib.import_module(module)


#: Registry of BTB designs (``conventional``, ``two_level``, ``phantom``,
#: ``perfect``, ``airbtb``, ... plus anything user code registers).
BTB_REGISTRY = Registry("BTB design", loader=load_builtin_components)

#: Registry of instruction prefetchers (``none``, ``fdp``, ``shift``, ...).
PREFETCHER_REGISTRY = Registry("prefetcher", loader=load_builtin_components)


def _bare_context(
    program: Optional["SyntheticProgram"] = None,
    llc: Optional["SharedLLC"] = None,
) -> BuildContext:
    from repro.caches.l1i import InstructionCache
    from repro.caches.llc import SharedLLC

    return BuildContext(
        program=program,
        llc=llc if llc is not None else SharedLLC(),
        l1i=InstructionCache(),
    )


def build_btb(
    name: str,
    program: Optional["SyntheticProgram"] = None,
    llc: Optional["SharedLLC"] = None,
    **params: Any,
) -> Any:
    """Instantiate a registered BTB outside a full design point.

    Used by coverage harnesses and sweeps that drive a bare BTB with a
    branch stream (no frontend timing model around it).
    """
    return BTB_REGISTRY.get(name)(_bare_context(program, llc), **params)


def build_prefetcher(
    name: str,
    program: Optional["SyntheticProgram"] = None,
    llc: Optional["SharedLLC"] = None,
    **params: Any,
) -> Any:
    """Instantiate a registered prefetcher outside a full design point."""
    return PREFETCHER_REGISTRY.get(name)(_bare_context(program, llc), **params)
