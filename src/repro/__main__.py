"""Command-line entry points: ``python -m repro sweep``.

The sweep subcommand runs a (profile x design) grid through
:mod:`repro.sweep` — fanned out across worker processes, served from the
on-disk result cache when the same cell has been simulated before — and
prints one RunReport table per profile plus the cache hit/miss accounting.

Examples::

    # the paper's full grid, eight profiles x the whole design catalog
    python -m repro sweep --workers 8

    # a scaled-down slice, twice: the second run is served from cache
    python -m repro sweep --profiles oltp_db2 dss_qry2 \\
        --designs baseline confluence --scale 0.1 --cores 4 --workers 4
    python -m repro sweep --profiles oltp_db2 dss_qry2 \\
        --designs baseline confluence --scale 0.1 --cores 4 --expect-cached

The cache lives under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``);
``--cache-dir`` overrides it and ``--no-cache`` disables it.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.reporting import format_table
from repro.api import reports_from_sweep
from repro.core.designs import DESIGN_POINTS
from repro.sweep import ResultCache, default_cache_dir, run_sweep
from repro.workloads.profiles import WORKLOAD_PROFILES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Confluence reproduction command-line tools.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    sweep = commands.add_parser(
        "sweep",
        help="run a (profile x design) grid with caching and worker processes",
        description=(
            "Run a workload-profile x design-point grid through the parallel "
            "sweep engine and print one report table per profile."
        ),
    )
    sweep.add_argument(
        "--profiles", nargs="+", metavar="NAME",
        default=list(WORKLOAD_PROFILES),
        help="workload profiles to sweep (default: all "
             f"{len(WORKLOAD_PROFILES)} profiles)",
    )
    sweep.add_argument(
        "--designs", nargs="+", metavar="NAME",
        default=list(DESIGN_POINTS),
        help="design points to sweep (default: the whole catalog)",
    )
    sweep.add_argument("--scale", type=float, default=1.0,
                       help="profile footprint/trace scale factor (default 1.0)")
    sweep.add_argument("--cores", type=int, default=16,
                       help="CMP cores per cell (default 16)")
    sweep.add_argument("--instructions-per-core", type=int, default=None,
                       help="trace length per core (default: profile recommendation)")
    sweep.add_argument("--trace-seed-base", type=int, default=100,
                       help="per-core trace seeds are base + core (default 100)")
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes for grid cells (default: serial)")
    sweep.add_argument("--baseline", default=None,
                       help="speedup reference design (default: 'baseline' when "
                            "present, else the first design)")
    sweep.add_argument("--cache-dir", default=None,
                       help=f"result cache directory (default: {default_cache_dir()})")
    sweep.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk result cache")
    sweep.add_argument("--expect-cached", action="store_true",
                       help="fail (exit 1) if any cell had to be simulated")
    sweep.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the reports as JSON instead of tables")
    sweep.set_defaults(handler=_run_sweep_command)
    return parser


def _run_sweep_command(args: argparse.Namespace) -> int:
    cache: Optional[ResultCache]
    if args.no_cache:
        cache = None
    else:
        cache = ResultCache(args.cache_dir)
    outcome = run_sweep(
        args.profiles,
        args.designs,
        scale=args.scale,
        cores=args.cores,
        instructions_per_core=args.instructions_per_core,
        trace_seed_base=args.trace_seed_base,
        workers=args.workers,
        cache=cache,
    )
    reports = reports_from_sweep(outcome, baseline=args.baseline)

    if args.as_json:
        payload = {
            "reports": {name: report.to_dict() for name, report in reports.items()},
            "stats": {
                "cells": outcome.stats.cells,
                "simulated": outcome.stats.simulated,
                "cache_hits": outcome.stats.cache_hits,
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        columns = ("design", "ipc", "speedup", "btb_mpki", "l1i_mpki", "area_mm2")
        for name, report in reports.items():
            rows = [report[design] for design in report.designs]
            print(format_table(
                rows, columns,
                title=f"{name} (cores={report.cores}, "
                      f"instructions/core={report.instructions_per_core})",
            ))
            print()
        where = f" ({cache.directory})" if cache is not None else " (cache disabled)"
        print(
            f"cells: {outcome.stats.cells} — {outcome.stats.simulated} simulated, "
            f"{outcome.stats.cache_hits} from cache{where}"
        )

    if args.expect_cached and outcome.stats.simulated:
        print(
            f"--expect-cached: {outcome.stats.simulated} of {outcome.stats.cells} "
            "cells were simulated instead of served from cache",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
