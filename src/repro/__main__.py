"""Command-line entry points: ``python -m repro sweep``/``trace``/``bench``/....

The ``sweep`` subcommand runs a (profile x design) grid through
:mod:`repro.sweep` — fanned out across worker processes, served from the
on-disk result cache when the same cell has been simulated before, per-core
traces mapped in zero-copy from the shared trace store — and prints one
RunReport table per profile plus the cache and trace-store accounting.

The ``trace`` subcommand works with packed trace artifacts directly:
``--out`` generates a trace and streams it to a columnar file, ``--verify``
reloads it and asserts its statistics match a fresh generator walk (the CI
round-trip guard), ``--info`` describes an existing artifact, and
``--prune BYTES`` LRU-evicts cold artifacts until the shared store fits the
byte budget.

The ``bench`` subcommand measures the simulation kernel
(:mod:`repro.perfbench`) and emits one stable-schema JSON trajectory point;
the committed ``BENCH_kernel.json`` tracks the history PR over PR (``--json``
*appends* a point), ``--expect-schema`` lets CI fail on schema drift without
failing on raw timing, and ``--compare PATH --tolerance X`` fails when
regions/sec regresses beyond the tolerance against a recorded point.

The ``backends`` subcommand lists the registered simulation backends
(:mod:`repro.backends`); every ``sweep``/``bench`` invocation picks one with
``--backend`` (default ``scalar``, the zero-allocation columnar loop).

The ``report`` subcommand (:mod:`repro.report`) collects recorded evidence —
bench trajectories, saved sweep reports (``sweep --save-report``), run
journals — into a versioned bundle and renders it as a self-contained HTML
page or CI-postable markdown; ``--check --tolerance X`` is the per-backend
perf-regression gate CI fails on (see ``docs/report.md``).

Examples::

    # the paper's full grid, eight profiles x the whole design catalog
    python -m repro sweep --workers 8

    # a scaled-down slice, twice: the second run is served from cache
    python -m repro sweep --profiles oltp_db2 dss_qry2 \\
        --designs baseline confluence --scale 0.1 --cores 4 --workers 4
    python -m repro sweep --profiles oltp_db2 dss_qry2 \\
        --designs baseline confluence --scale 0.1 --cores 4 --expect-cached

    # a heterogeneous consolidation scenario (mixed per-core workloads)
    python -m repro sweep --scenarios consolidated_oltp_dss \\
        --designs baseline confluence --scale 0.1 --cores 8

    # pack a trace artifact, prove the round trip, inspect it
    python -m repro trace --profile oltp_db2 --scale 0.1 \\
        --instructions 50000 --seed 3 --out /tmp/oltp.trace --verify
    python -m repro trace --info /tmp/oltp.trace

    # bound the shared trace store at 512 MB (least-recently-used eviction)
    python -m repro trace --prune 512M

    # record a perf trajectory point / check a smoke run against it
    python -m repro bench --json BENCH_kernel.json
    REPRO_BENCH_SMOKE=1 python -m repro bench --json /tmp/bench.json \\
        --expect-schema BENCH_kernel.json --compare BENCH_kernel.json \\
        --tolerance 0.85

    # list the registered simulation backends / sweep on the oracle loop
    python -m repro backends
    python -m repro sweep --backend reference --profiles oltp_db2 \\
        --designs baseline --scale 0.1 --cores 2

    # render the committed trajectory + a saved sweep as one HTML page,
    # then gate the newest point against the committed baseline
    python -m repro sweep --profiles oltp_db2 --designs baseline confluence \\
        --scale 0.05 --cores 2 --save-report /tmp/sweep.report.json
    python -m repro report --bench BENCH_kernel.json \\
        --sweep /tmp/sweep.report.json --out report.html
    python -m repro report --bench /tmp/bench.json \\
        --baseline BENCH_kernel.json --check --tolerance 0.5

The result cache lives under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro``); ``--cache-dir`` overrides it and ``--no-cache``
disables it.  The trace store lives under ``$REPRO_TRACE_DIR`` (default
``<cache dir>/traces``); ``--trace-dir`` overrides it and
``--no-trace-store`` disables it.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import TYPE_CHECKING, Iterator, List, Optional, Set, Union

from repro.analysis.reporting import format_table
from repro.api import reports_from_sweep
from repro.backends import DEFAULT_BACKEND
from repro.core.designs import DESIGN_POINTS
from repro.resilience import CellExecutionError, RetryPolicy
from repro.sweep import (
    ResultCache,
    TraceStore,
    default_cache_dir,
    default_journal_dir,
    default_trace_dir,
    run_sweep,
)
from repro.workloads.profiles import WORKLOAD_PROFILES
from repro.workloads.scenario import SCENARIOS

if TYPE_CHECKING:
    from repro.workloads.packed import PackedTrace
    from repro.workloads.trace import TraceStatistics


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Confluence reproduction command-line tools.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    sweep = commands.add_parser(
        "sweep",
        help="run a (profile x design) grid with caching and worker processes",
        description=(
            "Run a workload-profile x design-point grid through the parallel "
            "sweep engine and print one report table per profile."
        ),
    )
    sweep.add_argument(
        "--profiles", nargs="+", metavar="NAME",
        default=None,
        help="workload profiles to sweep (default: all "
             f"{len(WORKLOAD_PROFILES)} profiles, or none when --scenarios "
             "is given)",
    )
    sweep.add_argument(
        "--scenarios", nargs="+", metavar="NAME", default=[],
        help="heterogeneous consolidation scenarios to sweep alongside the "
             f"profiles (catalog: {', '.join(SCENARIOS)})",
    )
    sweep.add_argument(
        "--designs", nargs="+", metavar="NAME",
        default=list(DESIGN_POINTS),
        help="design points to sweep (default: the whole catalog)",
    )
    sweep.add_argument("--scale", type=float, default=1.0,
                       help="profile footprint/trace scale factor (default 1.0)")
    sweep.add_argument("--cores", type=int, default=16,
                       help="CMP cores per cell (default 16)")
    sweep.add_argument("--instructions-per-core", type=int, default=None,
                       help="trace length per core (default: profile recommendation)")
    sweep.add_argument("--trace-seed-base", type=int, default=100,
                       help="per-core trace seeds are base + core (default 100)")
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes for grid cells (default: serial)")
    sweep.add_argument("--backend", default=DEFAULT_BACKEND, metavar="NAME",
                       help="simulation backend for every cell (see "
                            "'python -m repro backends'; default "
                            f"{DEFAULT_BACKEND})")
    sweep.add_argument("--baseline", default=None,
                       help="speedup reference design (default: 'baseline' when "
                            "present, else the first design)")
    sweep.add_argument("--cache-dir", default=None,
                       help=f"result cache directory (default: {default_cache_dir()})")
    sweep.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk result cache")
    sweep.add_argument("--expect-cached", action="store_true",
                       help="fail (exit 1) if any cell had to be simulated")
    sweep.add_argument("--trace-dir", default=None,
                       help=f"packed-trace store directory (default: {default_trace_dir()})")
    sweep.add_argument("--no-trace-store", action="store_true",
                       help="disable the on-disk trace store (always generate)")
    sweep.add_argument("--expect-trace-cached", action="store_true",
                       help="fail (exit 1) if any trace had to be generated")
    sweep.add_argument("--retries", type=int, default=2,
                       help="re-executions allowed per failed cell "
                            "(deterministic backoff; default 2)")
    sweep.add_argument("--cell-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock bound per pooled cell attempt "
                            "(default: none)")
    sweep.add_argument("--journal-dir", default=None,
                       help="run-journal directory for crash resume "
                            f"(default: {default_journal_dir()})")
    sweep.add_argument("--no-journal", action="store_true",
                       help="disable the append-only run journal")
    sweep.add_argument("--resume", action="store_true",
                       help="replay a killed run's journal: cells it "
                            "completed are not re-simulated")
    sweep.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the reports as JSON instead of tables")
    sweep.add_argument("--save-report", default=None, metavar="PATH",
                       help="also persist the reports + stats as a versioned "
                            "JSON file that 'repro report --sweep PATH' "
                            "collects")
    sweep.set_defaults(handler=_run_sweep_command)

    trace = commands.add_parser(
        "trace",
        help="pack, verify and inspect columnar trace artifacts",
        description=(
            "Generate a workload trace into a packed columnar artifact "
            "(--out, optionally --verify to prove the round trip) or "
            "describe an existing one (--info)."
        ),
    )
    trace.add_argument("--profile", default=None, metavar="NAME",
                       help="workload profile to generate from")
    trace.add_argument("--scale", type=float, default=1.0,
                       help="profile footprint/trace scale factor (default 1.0)")
    trace.add_argument("--instructions", type=int, default=None,
                       help="trace length (default: profile recommendation)")
    trace.add_argument("--seed", type=int, default=1,
                       help="trace generation seed (default 1)")
    trace.add_argument("--out", default=None, metavar="PATH",
                       help="write the packed trace to PATH")
    trace.add_argument("--verify", action="store_true",
                       help="after writing, reload the artifact and assert its "
                            "statistics match a fresh generator walk")
    trace.add_argument("--info", default=None, metavar="PATH",
                       help="describe an existing packed trace artifact")
    trace.add_argument("--chunk-regions", type=int, default=1 << 16,
                       help="streaming chunk size in fetch regions (default 65536)")
    trace.add_argument("--prune", default=None, metavar="BYTES",
                       help="LRU-evict cold artifacts until the trace store is "
                            "at most BYTES (suffixes K/M/G accepted)")
    trace.add_argument("--trace-dir", default=None,
                       help=f"trace store directory to prune (default: {default_trace_dir()})")
    trace.set_defaults(handler=_run_trace_command)

    bench = commands.add_parser(
        "bench",
        help="measure the packed simulation kernel (stable-schema JSON)",
        description=(
            "Run the kernel hot-loop benchmark — trace generation, the "
            "columnar artifact round trip, and the packed simulation loop "
            "per design — and emit one stable-schema JSON trajectory point. "
            "REPRO_BENCH_SMOKE=1 selects the tiny CI operating point; "
            "explicit flags always win."
        ),
    )
    bench.add_argument("--profile", default="oltp_db2", metavar="NAME",
                       help="workload profile to benchmark on (default oltp_db2)")
    bench.add_argument("--scale", type=float, default=None,
                       help="profile scale factor (default: operating point)")
    bench.add_argument("--instructions", type=int, default=None,
                       help="trace length (default: operating point)")
    bench.add_argument("--seed", type=int, default=3,
                       help="trace generation seed (default 3)")
    bench.add_argument("--designs", nargs="+", metavar="NAME",
                       default=["baseline", "confluence"],
                       help="design points to time (default: baseline confluence)")
    bench.add_argument("--repeats", type=int, default=None,
                       help="timing repeats per design, best-of reported "
                            "(default: operating point)")
    bench.add_argument("--backend", default=DEFAULT_BACKEND, metavar="NAME",
                       help="simulation backend to time per design (every "
                            "registered backend is also timed on the first "
                            f"design; default {DEFAULT_BACKEND})")
    bench.add_argument("--json", default=None, metavar="PATH", dest="json_out",
                       help="append this run to the trajectory file at PATH "
                            "(created when missing)")
    bench.add_argument("--expect-schema", default=None, metavar="PATH",
                       help="fail (exit 1) if this run's JSON schema drifts "
                            "from the latest trajectory point at PATH")
    bench.add_argument("--compare", default=None, metavar="PATH",
                       help="fail (exit 1) if regions/sec regresses beyond "
                            "--tolerance against the latest trajectory point "
                            "at PATH")
    bench.add_argument("--tolerance", type=float, default=0.85,
                       help="minimum fresh/recorded regions-per-sec ratio "
                            "for --compare (default 0.85)")
    bench.set_defaults(handler=_run_bench_command)

    backends = commands.add_parser(
        "backends",
        help="list the registered simulation backends",
        description=(
            "List every registered simulation backend (the scalar columnar "
            "hot loop, the record-view reference oracle, and anything user "
            "code registered). All backends are bit-exact with the "
            "reference oracle; tests/test_frontend_parity.py pins each one."
        ),
    )
    backends.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the listing as JSON instead of text",
    )
    backends.set_defaults(handler=_run_backends_command)

    report = commands.add_parser(
        "report",
        help="collect recorded evidence into an HTML/markdown report and "
             "gate on perf regressions",
        description=(
            "Collect bench trajectories, saved sweep reports and run "
            "journals into a versioned report bundle, render it (HTML by "
            "default, self-contained: inline CSS + SVG, no scripts), and "
            "optionally fail on per-backend throughput regressions "
            "(--check --tolerance X) — the CI regression gate."
        ),
    )
    report.add_argument("--bench", nargs="+", metavar="PATH", default=None,
                        help="bench trajectory files to collect (any recorded "
                             "schema version; default: BENCH_kernel.json when "
                             "present)")
    report.add_argument("--sweep", nargs="+", metavar="PATH", default=[],
                        dest="sweep_paths",
                        help="saved sweep report files to collect (written by "
                             "'sweep --save-report' or 'sweep --json' output)")
    report.add_argument("--journal-dir", default=None, metavar="PATH",
                        help="summarize the run journals in this directory "
                             "into the resilience counters")
    report.add_argument("--baseline", default=None, metavar="PATH",
                        help="trajectory file whose latest point is the "
                             "regression baseline (default: the previous "
                             "collected point, when the trajectory has one)")
    report.add_argument("--title", default="Confluence reproduction report",
                        help="report title (default: 'Confluence "
                             "reproduction report')")
    report.add_argument("--format", default="html", metavar="NAME",
                        dest="fmt",
                        help="renderer to use (catalog: 'html', 'md', plus "
                             "anything registered on RENDERER_REGISTRY; "
                             "default html)")
    report.add_argument("--out", default=None, metavar="PATH",
                        help="write the rendered report to PATH instead of "
                             "stdout")
    report.add_argument("--save-bundle", action="store_true",
                        help="also persist the collected bundle, "
                             "content-addressed, under --report-dir")
    report.add_argument("--report-dir", default=None, metavar="PATH",
                        help="bundle directory for --save-bundle (default: "
                             "$REPRO_REPORT_DIR or <cache dir>/reports)")
    report.add_argument("--check", action="store_true",
                        help="fail (exit 1) when any backend's regions/sec "
                             "in the newest point falls below --tolerance x "
                             "the baseline's")
    report.add_argument("--tolerance", type=float, default=0.85,
                        help="minimum newest/baseline regions-per-sec ratio "
                             "per backend for --check (default 0.85)")
    report.set_defaults(handler=_run_report_command)

    lint = commands.add_parser(
        "lint",
        help="run the repro.staticcheck invariant rules (R001..R005)",
        description=(
            "Parse the target trees and enforce the repository's structural "
            "invariants: hot-loop allocation discipline, determinism of "
            "trace/seed/cache-key code, cache-key closure completeness, "
            "pickle-boundary safety and registry wiring. Exits 0 when clean, "
            "1 on findings, 2 on bad usage (unknown rule, unreadable "
            "baseline, unparsable target)."
        ),
    )
    lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="package directories or files to lint "
             "(default: the installed repro package)",
    )
    lint.add_argument(
        "--rules", nargs="+", metavar="ID", default=None,
        help="run only these rule IDs (default: all registered rules)",
    )
    lint.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit findings as stable-schema JSON instead of text",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="suppress findings recorded in this baseline file",
    )
    lint.add_argument(
        "--write-baseline", default=None, metavar="PATH",
        help="write the surviving findings to PATH as a baseline and exit 0 "
             "(the adoption ratchet)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    lint.set_defaults(handler=_run_lint_command)
    return parser


def _run_sweep_command(args: argparse.Namespace) -> int:
    cache: Optional[ResultCache]
    if args.no_cache:
        cache = None
    else:
        cache = ResultCache(args.cache_dir)
    trace_store: Optional[TraceStore]
    if args.no_trace_store:
        trace_store = None
    else:
        trace_store = TraceStore(args.trace_dir)
    if args.resume and args.no_journal:
        print("sweep: --resume requires the journal (drop --no-journal)",
              file=sys.stderr)
        return 2
    journal: Union[bool, str] = True
    if args.no_journal:
        journal = False
    elif args.journal_dir is not None:
        journal = args.journal_dir
    try:
        policy = RetryPolicy(retries=args.retries, cell_timeout=args.cell_timeout)
    except ValueError as error:
        print(f"sweep: {error}", file=sys.stderr)
        return 2
    profiles = args.profiles
    if profiles is None:
        # A scenarios-only invocation sweeps just the scenarios; the
        # all-profiles default only applies when neither axis was named.
        profiles = [] if args.scenarios else list(WORKLOAD_PROFILES)
    try:
        outcome = run_sweep(
            profiles,
            args.designs,
            scale=args.scale,
            cores=args.cores,
            instructions_per_core=args.instructions_per_core,
            trace_seed_base=args.trace_seed_base,
            workers=args.workers,
            cache=cache,
            trace_store=trace_store,
            scenarios=args.scenarios,
            backend=args.backend,
            policy=policy,
            journal=journal,
            resume=args.resume,
        )
    except KeyError as error:
        # Unknown profile/scenario/design names arrive as KeyErrors with a
        # "known: ..." listing; usage errors exit 2, like argparse's own.
        print(f"sweep: {error}", file=sys.stderr)
        return 2
    except CellExecutionError as error:
        # A cell failed past its retry budget; completed cells kept their
        # cache/journal entries, so re-running with --resume picks up here.
        print(f"sweep: {error}", file=sys.stderr)
        print("sweep: completed cells were journaled; re-run with --resume "
              "to continue", file=sys.stderr)
        return 1
    except OSError as error:
        # A cache or trace-store directory that cannot be created, read or
        # written (e.g. $REPRO_TRACE_DIR under a missing or read-only path)
        # is an environment problem, not a crash.
        print(f"sweep: {error}", file=sys.stderr)
        return 1
    reports = reports_from_sweep(outcome, baseline=args.baseline)

    if args.save_report is not None:
        from repro.api import save_reports

        try:
            save_reports(args.save_report, reports, stats=outcome.stats.to_dict())
        except OSError as error:
            print(f"--save-report: cannot write {args.save_report}: {error}",
                  file=sys.stderr)
            return 1
        if not args.as_json:  # keep --json stdout pure JSON
            print(f"wrote {args.save_report}")

    if args.as_json:
        payload = {
            "reports": {name: report.to_dict() for name, report in reports.items()},
            "stats": outcome.stats.to_dict(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        columns = ("design", "ipc", "speedup", "btb_mpki", "l1i_mpki", "area_mm2")
        for name, report in reports.items():
            rows = [report[design] for design in report.designs]
            print(format_table(
                rows, columns,
                title=f"{name} (cores={report.cores}, "
                      f"instructions/core={report.instructions_per_core})",
            ))
            print()
        where = f" ({cache.directory})" if cache is not None else " (cache disabled)"
        print(
            f"cells: {outcome.stats.cells} — {outcome.stats.simulated} simulated, "
            f"{outcome.stats.cache_hits} from cache{where}"
        )
        trace_where = (
            f" ({trace_store.directory})" if trace_store is not None
            else " (trace store disabled)"
        )
        print(
            f"traces: {outcome.stats.traces_generated} generated, "
            f"{outcome.stats.traces_loaded} loaded from store "
            f"({outcome.stats.traces_mapped} zero-copy mmap){trace_where}"
        )
        print(
            f"resilience: {outcome.stats.retried} retried, "
            f"{outcome.stats.timed_out} timed out, "
            f"{outcome.stats.pool_rebuilds} pool rebuilds, "
            f"{outcome.stats.quarantined} quarantined, "
            f"{outcome.stats.resumed} resumed from journal"
        )

    if args.expect_cached and outcome.stats.simulated:
        print(
            f"--expect-cached: {outcome.stats.simulated} of {outcome.stats.cells} "
            "cells were simulated instead of served from cache",
            file=sys.stderr,
        )
        return 1
    if args.expect_trace_cached and outcome.stats.traces_generated:
        print(
            f"--expect-trace-cached: {outcome.stats.traces_generated} traces "
            "were generated instead of loaded from the trace store",
            file=sys.stderr,
        )
        return 1
    return 0


def _print_trace_stats(
    name: str, instruction_count: int, stats: "TraceStatistics"
) -> None:
    print(f"trace: {name}")
    print(f"  fetch regions:        {stats.fetch_region_count}")
    print(f"  instructions:         {instruction_count}")
    print(f"  branches:             {stats.branch_count} "
          f"({stats.taken_branch_count} taken)")
    print(f"  conditionals:         {stats.conditional_count} "
          f"({stats.conditional_taken_count} taken)")
    print(f"  calls/returns:        {stats.call_count}/{stats.return_count}")
    print(f"  indirect branches:    {stats.indirect_count}")
    print(f"  unique blocks:        {stats.unique_blocks} "
          f"({stats.instruction_footprint_bytes / 1024:.1f} KB footprint)")
    print(f"  unique taken branches:{stats.unique_taken_branches}")
    print(f"  avg region length:    {stats.average_region_length:.2f}")


def _parse_byte_size(text: str) -> int:
    """``"512M"``-style byte budgets for ``trace --prune`` (K/M/G suffixes)."""
    raw = text.strip()
    multiplier = 1
    if raw and raw[-1].upper() in ("K", "M", "G"):
        multiplier = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}[raw[-1].upper()]
        raw = raw[:-1]
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"not a byte size: {text!r} (expected e.g. 1048576, 512M)"
        ) from None
    if value < 0:
        raise ValueError(f"byte size must be non-negative: {text!r}")
    return value * multiplier


def _run_trace_command(args: argparse.Namespace) -> int:
    from repro.workloads import TraceWalker, get_profile, load_packed, synthesize_program
    from repro.workloads.packed import save_chunks
    from repro.workloads.trace import Trace, TraceStatistics

    if args.prune is not None:
        if args.out is not None or args.info is not None or args.verify:
            print("trace: --prune cannot be combined with --out/--info/--verify",
                  file=sys.stderr)
            return 2
        try:
            max_bytes = _parse_byte_size(args.prune)
        except ValueError as error:
            print(f"trace: {error}", file=sys.stderr)
            return 2
        store = TraceStore(args.trace_dir)
        if not store.directory.is_dir():
            # Pruning a store that does not exist is a misdirected command
            # (a typoed --trace-dir or stale $REPRO_TRACE_DIR), not a no-op.
            print(
                f"trace: trace store directory {store.directory} does not "
                "exist (set --trace-dir or $REPRO_TRACE_DIR)",
                file=sys.stderr,
            )
            return 1
        try:
            removed, freed = store.prune(max_bytes)
        except OSError as error:
            print(f"trace: cannot prune {store.directory}: {error}", file=sys.stderr)
            return 1
        print(
            f"pruned {removed} artifact{'s' if removed != 1 else ''} "
            f"({freed} bytes) from {store.directory} "
            f"(budget {max_bytes} bytes)"
        )
        return 0

    if args.info is None and args.out is None:
        print("trace: one of --out, --info or --prune is required", file=sys.stderr)
        return 2
    if args.info is not None and (args.out is not None or args.verify):
        print("trace: --info cannot be combined with --out/--verify",
              file=sys.stderr)
        return 2

    if args.info is not None:
        try:
            packed = load_packed(args.info)
        except (OSError, ValueError) as error:
            print(f"trace: cannot read {args.info}: {error}", file=sys.stderr)
            return 1
        trace = Trace.from_packed(packed)
        _print_trace_stats(trace.name, trace.instruction_count, trace.statistics())
        return 0

    if args.profile is None:
        print("trace: --out requires --profile", file=sys.stderr)
        return 2
    profile = get_profile(args.profile)
    if args.scale != 1.0:
        profile = profile.scaled(args.scale)
    instructions = (
        args.instructions
        if args.instructions is not None
        else profile.recommended_trace_instructions
    )
    program = synthesize_program(profile)

    # Stream the walk to disk chunk by chunk, folding statistics as each
    # chunk passes through: the artifact never has to fit in memory, which
    # is the point of the chunked on-disk format.
    walker = TraceWalker(program, seed=args.seed)
    counters = [0] * 9
    blocks: Set[int] = set()
    taken_pcs: Set[int] = set()

    def folded(chunks: Iterator["PackedTrace"]) -> Iterator["PackedTrace"]:
        for chunk in chunks:
            chunk.fold_statistics(counters, blocks, taken_pcs)
            yield chunk

    try:
        save_chunks(
            args.out,
            profile.name,
            folded(walker.run_chunks(instructions, chunk_regions=args.chunk_regions)),
        )
    except (OSError, ValueError) as error:
        print(f"trace: cannot write {args.out}: {error}", file=sys.stderr)
        return 1
    stats = TraceStatistics(*counters, len(blocks), len(taken_pcs))
    _print_trace_stats(profile.name, stats.instruction_count, stats)
    print(f"wrote {args.out}")

    if args.verify:
        # The round-trip proof: the artifact must read back and describe
        # exactly the trace a fresh generator walk produces.
        try:
            reloaded = Trace.from_packed(load_packed(args.out))
        except (OSError, ValueError) as error:
            print(f"--verify: cannot read back {args.out}: {error}",
                  file=sys.stderr)
            return 1
        artifact_stats = reloaded.statistics()
        fresh = TraceWalker(program, seed=args.seed).run(
            instructions, name=profile.name
        )
        fresh_stats = fresh.statistics()
        if fresh_stats != artifact_stats or artifact_stats != stats \
                or len(fresh) != len(reloaded):
            print(
                "--verify: reloaded artifact does not match the generator "
                f"output\n  generator: {fresh_stats}\n  artifact:  {artifact_stats}",
                file=sys.stderr,
            )
            return 1
        print("--verify: artifact statistics match the generator output")
    return 0


def _run_bench_command(args: argparse.Namespace) -> int:
    from repro.perfbench import (
        append_trajectory_point,
        compare_to_reference,
        default_bench_settings,
        format_bench_report,
        format_comparison,
        load_trajectory_point,
        run_kernel_benchmark,
        schemas_match,
    )

    settings = default_bench_settings()
    try:
        payload = run_kernel_benchmark(
            profile_name=args.profile,
            scale=args.scale if args.scale is not None else settings["scale"],
            instructions=(
                args.instructions
                if args.instructions is not None
                else settings["instructions"]
            ),
            seed=args.seed,
            designs=args.designs,
            repeats=args.repeats if args.repeats is not None else settings["repeats"],
            backend=args.backend,
        )
    except KeyError as error:
        # Unknown profile/design/backend names; usage errors exit 2.
        print(f"bench: {error}", file=sys.stderr)
        return 2
    print(format_bench_report(payload))

    if args.expect_schema is not None:
        try:
            reference = load_trajectory_point(args.expect_schema)
        except (OSError, ValueError) as error:
            print(f"--expect-schema: cannot read {args.expect_schema}: {error}",
                  file=sys.stderr)
            return 1
        if not schemas_match(payload, reference):
            print(
                f"--expect-schema: this run's JSON schema drifted from "
                f"{args.expect_schema}; bump BENCH_SCHEMA_VERSION and refresh "
                "the committed trajectory point",
                file=sys.stderr,
            )
            return 1
        print(f"--expect-schema: schema matches {args.expect_schema}")

    if args.compare is not None:
        try:
            reference = load_trajectory_point(args.compare)
            rows = compare_to_reference(payload, reference, args.tolerance)
        except (OSError, ValueError) as error:
            print(f"--compare: cannot compare against {args.compare}: {error}",
                  file=sys.stderr)
            return 1
        print(format_comparison(rows, args.tolerance))
        if not all(row["ok"] for row in rows):
            print(
                f"--compare: regions/sec regressed beyond tolerance "
                f"{args.tolerance:g} of {args.compare}",
                file=sys.stderr,
            )
            return 1
        print(f"--compare: within tolerance {args.tolerance:g} of {args.compare}")

    # Append last so ``--compare PATH --json PATH`` checks against the
    # *previous* point, not the one this run just wrote — and so a failing
    # check never records the regressed run into the trajectory.
    if args.json_out is not None:
        try:
            count = append_trajectory_point(args.json_out, payload)
        except (OSError, ValueError) as error:
            print(f"--json: cannot append to {args.json_out}: {error}",
                  file=sys.stderr)
            return 1
        print(f"wrote {args.json_out} ({count} trajectory "
              f"point{'s' if count != 1 else ''})")

    return 0


def _run_backends_command(args: argparse.Namespace) -> int:
    from repro.backends import backend_names, get_backend

    rows = []
    for name in backend_names():
        impl = get_backend(name)
        doc = (type(impl).__doc__ or "").strip().splitlines()
        rows.append({
            "name": name,
            "default": name == DEFAULT_BACKEND,
            "trace form": impl.trace_form,
            "summary": doc[0] if doc else "",
            "available": impl.available(),
            "unavailable reason": impl.unavailable_reason(),
        })

    if args.as_json:
        print(json.dumps({"backends": rows}, indent=2, sort_keys=True))
        return 0

    for row in rows:
        marker = " (default)" if row["default"] else ""
        if not row["available"]:
            marker += f" (unavailable: {row['unavailable reason']})"
        print(f"{row['name']}{marker}")
        print(f"    trace form: {row['trace form']}")
        if row["summary"]:
            print(f"    {row['summary']}")
    return 0


def _run_report_command(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.registry import UnknownComponentError
    from repro.report import (
        check_bundle,
        collect_bundle,
        default_report_dir,
        format_check,
        render_bundle,
    )

    if args.check and not args.tolerance > 0:
        print(f"report: --tolerance must be positive, got {args.tolerance:g}",
              file=sys.stderr)
        return 2

    bench_paths = args.bench
    if bench_paths is None:
        # The committed trajectory is the evidence nearly every invocation
        # wants; only default to it, never require it.
        bench_paths = ["BENCH_kernel.json"] if Path("BENCH_kernel.json").is_file() else []
    if not bench_paths and not args.sweep_paths:
        print("report: nothing to collect — pass --bench and/or --sweep "
              "(no BENCH_kernel.json in the current directory)",
              file=sys.stderr)
        return 2

    try:
        bundle = collect_bundle(
            bench_paths=bench_paths,
            sweep_paths=args.sweep_paths,
            journal_dir=args.journal_dir,
            baseline_path=args.baseline,
            title=args.title,
        )
    except (OSError, ValueError) as error:
        print(f"report: cannot collect: {error}", file=sys.stderr)
        return 1

    if args.save_bundle:
        directory = args.report_dir if args.report_dir is not None else default_report_dir()
        try:
            saved = bundle.save(directory)
        except OSError as error:
            print(f"--save-bundle: cannot write under {directory}: {error}",
                  file=sys.stderr)
            return 1
        print(f"saved bundle {saved}", file=sys.stderr)

    if args.check:
        try:
            rows = check_bundle(bundle, args.tolerance)
        except ValueError as error:
            # A gate that cannot run (no points, no baseline, no shared
            # backends) fails loudly; it never passes vacuously.
            print(f"--check: {error}", file=sys.stderr)
            return 1
        print(format_check(rows, args.tolerance, bundle.baseline_source))
        if not all(row["ok"] for row in rows):
            print(
                f"--check: regions/sec regressed beyond tolerance "
                f"{args.tolerance:g}"
                + (f" of {bundle.baseline_source}" if bundle.baseline_source else ""),
                file=sys.stderr,
            )
            return 1
        print(f"--check: within tolerance {args.tolerance:g}")
        if args.out is None:
            return 0  # gate-only invocation: no rendered report to emit

    try:
        rendered = render_bundle(
            bundle, args.fmt, tolerance=args.tolerance if args.check else None
        )
    except UnknownComponentError as error:
        print(f"report: {error.args[0]}", file=sys.stderr)
        return 2

    if args.out is not None:
        try:
            Path(args.out).write_text(rendered, encoding="utf-8")
        except OSError as error:
            print(f"report: cannot write {args.out}: {error}", file=sys.stderr)
            return 1
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(rendered)
    return 0


def _run_lint_command(args: argparse.Namespace) -> int:
    from pathlib import Path

    import repro
    from repro.registry import UnknownComponentError
    from repro.staticcheck import (
        LINT_SCHEMA_VERSION,
        Baseline,
        RULE_REGISTRY,
        run_lint,
    )

    if args.list_rules:
        for rule_id in RULE_REGISTRY.names():
            print(f"{rule_id}  {RULE_REGISTRY.describe(rule_id)}")
        return 0

    paths = args.paths or [str(Path(repro.__file__).parent)]

    baseline = None
    if args.baseline is not None:
        try:
            baseline = Baseline.load(Path(args.baseline))
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"lint: cannot load baseline {args.baseline}: {error}",
                  file=sys.stderr)
            return 2

    try:
        findings = run_lint(paths, rule_ids=args.rules, baseline=baseline)
    except UnknownComponentError as error:
        print(f"lint: {error.args[0]}", file=sys.stderr)
        return 2
    except (OSError, SyntaxError) as error:
        print(f"lint: cannot parse target: {error}", file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        Baseline.dump(findings, Path(args.write_baseline))
        print(f"wrote {len(findings)} suppression(s) to {args.write_baseline}")
        return 0

    if args.as_json:
        payload = {
            "schema": LINT_SCHEMA_VERSION,
            "count": len(findings),
            "findings": [finding.to_dict() for finding in findings],
        }
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        for finding in findings:
            print(finding.render())
        suppressed = f" ({len(baseline)} baselined)" if baseline else ""
        if findings:
            print(f"{len(findings)} finding(s){suppressed}")
        else:
            print(f"clean{suppressed}")
    return 1 if findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
