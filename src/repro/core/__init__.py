"""The paper's contribution: AirBTB, Confluence and the frontend model.

* :class:`~repro.core.airbtb.AirBTB` — the block-based BTB whose content
  mirrors the L1-I (bundles tagged by block address, branch bitmap, small
  overflow buffer).
* :class:`~repro.core.confluence.Confluence` — the integration: a single
  stream-based prefetcher (SHIFT) fills the L1-I, every filled block is
  predecoded and its branch entries eagerly inserted into AirBTB, and
  evictions keep the two structures synchronized.
* :class:`~repro.core.frontend.FrontendSimulator` — the trace-driven frontend
  timing model used to compare all design points.
* :mod:`~repro.core.designs` — the declarative :class:`DesignSpec`, the
  mutable design-point catalog and the registry-driven construction path for
  every named design point in the evaluation (FDP, PhantomBTB+FDP,
  2LevelBTB+FDP, 2LevelBTB+SHIFT, Confluence, Ideal, ...).
* :mod:`~repro.core.area` — the storage/area model calibrated to the paper's
  CACTI numbers.
* :class:`~repro.core.cmp.ChipMultiprocessor` — the 16-core CMP wrapper with
  a shared SHIFT history and an opt-in parallel core runner.
"""

from repro.core.airbtb import AirBTB, AirBTBConfig
from repro.core.confluence import Confluence, ConfluenceConfig
from repro.core.frontend import FrontendConfig, FrontendResult, FrontendSimulator
from repro.core.area import AreaModel, FrontendAreaReport
from repro.core.metrics import mpki, miss_coverage, speedup
from repro.core.designs import (
    DESIGN_POINTS,
    DesignPoint,
    DesignSpec,
    build_design,
    design_from_spec,
    register_design_point,
    resolve_design,
)
from repro.core.cmp import ChipMultiprocessor, CMPResult

__all__ = [
    "AirBTB",
    "AirBTBConfig",
    "Confluence",
    "ConfluenceConfig",
    "FrontendConfig",
    "FrontendResult",
    "FrontendSimulator",
    "AreaModel",
    "FrontendAreaReport",
    "mpki",
    "miss_coverage",
    "speedup",
    "DesignPoint",
    "DesignSpec",
    "build_design",
    "design_from_spec",
    "register_design_point",
    "resolve_design",
    "DESIGN_POINTS",
    "ChipMultiprocessor",
    "CMPResult",
]
