"""Chip multiprocessor driver: many cores, shared metadata, mixed workloads.

The paper evaluates a 16-core tiled CMP whose deployment model is a
*consolidated* scale-out server: co-located server workloads sharing one
chip.  This driver reproduces that setup for trace-driven simulation, in
both its homogeneous form (every core runs the same profile, the paper's
measurement configuration) and its heterogeneous form (a
:class:`~repro.workloads.scenario.Scenario` assigns each core its own
profile, seed and instruction budget):

* every core gets its own trace, L1-I, BTB and branch predictors,
* the SHIFT history (and PhantomBTB's virtual table) is virtualized in the
  shared LLC; one history instance exists **per workload profile on the
  chip** — the first core running a profile records it, every other core of
  that profile replays it, exactly the paper's one-history-per-workload
  sharing (a homogeneous chip therefore has exactly one, recorded by
  core 0), and
* cores are simulated one after another (their only interaction is through
  the shared metadata, which is insensitive to fine-grain interleaving).

Because replaying cores never write the shared metadata, they are
independent given their profile's recorded history, and the driver can fan
them out across worker processes (``workers=N``).  The parallel path
reproduces the serial path bit for bit: the recording cores always run
first in-process, each profile's recorded history is snapshotted into the
workers, and every core keeps its own deterministic trace seed.  When a
:class:`~repro.sweep.TraceStore` is attached, workers receive the trace's
on-disk artifact *path* and mmap it — the same zero-copy discipline as the
cell-level pool, so no pool boundary ever pickles trace columns.  The
serial default is preserved.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.caches.llc import LLCConfig, SharedLLC
from repro.core.area import FrontendAreaReport
from repro.core.designs import DesignSpec, design_from_spec, resolve_design
from repro.core.frontend import FrontendConfig, FrontendResult, FrontendSimulator
from repro.core.metrics import mpki
from repro.faultinject import injection_point
from repro.prefetch.shift import ShiftHistory
from repro.registry import ensure_unique_names
from repro.resilience import CellExecutionError
from repro.workloads.cfg import SyntheticProgram, workload_program
from repro.workloads.generator import generate_trace
from repro.workloads.packed import load_packed
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.scenario import BoundScenario, CoreWorkload, Scenario
from repro.workloads.trace import Trace

if TYPE_CHECKING:  # import cycle guard: sweep.py imports this module
    from multiprocessing.context import BaseContext

    from repro.backends.base import SimBackend
    from repro.backends.batch import BatchBackend
    from repro.sweep import TraceStore

#: One replaying core's pickled work order: (spec, program, inline trace,
#: artifact path, trace name, shared-history snapshot, LLC geometry, config,
#: simulation backend, human label).  Registered backends travel as their
#: *name*; a stateless ad-hoc instance pickles by reference and works too.
#: The label names the (profile, core, seed, design) so a worker failure
#: surfaces as a :class:`~repro.resilience.CellExecutionError` that
#: identifies the dead core instead of an anonymous worker traceback.
_ReplayJob = Tuple[
    DesignSpec,
    SyntheticProgram,
    Optional[Trace],
    Optional[str],
    str,
    Dict[str, Any],
    LLCConfig,
    Optional[FrontendConfig],
    Union[str, "SimBackend", None],
    str,
]


@dataclass
class CMPResult:
    """Aggregate result of one design point on one workload or scenario.

    ``workload`` is the profile name for homogeneous runs and the scenario
    name for mixed ones; ``core_profiles`` names the profile each core ran
    (the per-core breakdown key), and :meth:`per_profile` rolls the core
    results up per profile.
    """

    design: str
    workload: str
    core_results: List[FrontendResult] = field(default_factory=list)
    area: Optional[FrontendAreaReport] = None
    #: The scenario this result came from (``None`` for homogeneous runs).
    scenario: Optional[str] = None
    #: Profile name per core, aligned with ``core_results``.
    core_profiles: List[str] = field(default_factory=list)

    @property
    def instructions(self) -> int:
        return sum(result.instructions for result in self.core_results)

    @property
    def cycles(self) -> float:
        return sum(result.cycles for result in self.core_results)

    @property
    def ipc(self) -> float:
        """System throughput proxy: aggregate instructions over aggregate cycles."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def btb_taken_misses(self) -> int:
        return sum(result.btb_taken_misses for result in self.core_results)

    @property
    def btb_mpki(self) -> float:
        # metrics.mpki raises on a zero instruction count: a result that
        # measured nothing must fail loudly, not read as miss-free.
        return mpki(self.btb_taken_misses, self.instructions)

    @property
    def l1i_mpki(self) -> float:
        return mpki(sum(result.l1i_misses for result in self.core_results),
                    self.instructions)

    def per_profile(self) -> Dict[str, Dict[str, float]]:
        """Roll the per-core results up by profile (the scenario breakdown).

        Returns ``{profile name: {cores, instructions, cycles, ipc,
        btb_mpki, l1i_mpki}}``.  Homogeneous results produce a single group,
        so consumers can treat every CMP result uniformly.
        """
        names = self.core_profiles or [self.workload] * len(self.core_results)
        groups: Dict[str, List[FrontendResult]] = {}
        for name, result in zip(names, self.core_results, strict=True):
            groups.setdefault(name, []).append(result)
        breakdown: Dict[str, Dict[str, float]] = {}
        for name, results in groups.items():
            instructions = sum(result.instructions for result in results)
            cycles = sum(result.cycles for result in results)
            breakdown[name] = {
                "cores": len(results),
                "instructions": instructions,
                "cycles": cycles,
                "ipc": instructions / cycles if cycles else 0.0,
                "btb_mpki": mpki(
                    sum(result.btb_taken_misses for result in results), instructions
                ),
                "l1i_mpki": mpki(
                    sum(result.l1i_misses for result in results), instructions
                ),
            }
        return breakdown

    def speedup_over(self, baseline: "CMPResult") -> float:
        # A zero-IPC operand measured nothing; fail loudly (the mpki /
        # miss_coverage degenerate-denominator policy), never report 0x.
        if self.ipc == 0 or baseline.ipc == 0:
            raise ValueError(
                "speedup_over is undefined when either result has zero IPC "
                f"(self.ipc={self.ipc}, baseline.ipc={baseline.ipc})"
            )
        return self.ipc / baseline.ipc


def _replay_core(job: _ReplayJob) -> FrontendResult:
    """Simulate one replaying core in a worker process.

    The worker rebuilds its private surroundings (LLC with the same geometry,
    hence the same round-trip latency, plus a replay-side clone of its
    profile's shared history); the only cross-core coupling in the serial
    path is the recorded history and LLC statistics, and the statistics do
    not feed back into timing, so the result is identical to the serial
    path's.  When the trace lives in a store, the job carries its artifact
    *path* and the worker mmaps it — all workers share one page-cache copy
    instead of receiving pickled heap columns.

    Any failure is wrapped in a :class:`CellExecutionError` naming the
    core's (profile, core index, seed, design), so the parent never sees an
    anonymous worker traceback.
    """
    (spec, program, trace, trace_path, trace_name,
     history_state, llc_config, frontend_config, backend, label) = job
    try:
        injection_point("cmp:replay_core", label=label)
        if trace is None:
            trace = Trace.from_packed(
                load_packed(trace_path, mmap=True), name=trace_name
            )
        llc = SharedLLC(llc_config)
        shared_history = ShiftHistory.restore(history_state, llc=llc)
        simulator, _ = design_from_spec(
            spec,
            program,
            llc=llc,
            shared_history=shared_history,
            frontend_config=frontend_config,
            record_history=False,
        )
        return simulator.run(trace, backend=backend)
    except CellExecutionError:
        raise
    except Exception as error:
        raise CellExecutionError(
            f"replay worker for {label} failed: {type(error).__name__}: {error}"
        ) from error


def _fork_context() -> Optional["BaseContext"]:
    """Prefer fork so worker processes inherit user-registered components."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return None


class ChipMultiprocessor:
    """Simulates ``cores`` instances of one workload — or a scenario's mix.

    Homogeneous form (the paper's measurement setup)::

        ChipMultiprocessor(program, cores=16)

    Heterogeneous form (a consolidated server)::

        ChipMultiprocessor(scenario=get_scenario("consolidated_oltp_dss"))

    ``scenario`` accepts a :class:`~repro.workloads.scenario.Scenario`
    (bound here against ``cores``/``instructions_per_core``/
    ``trace_seed_base``) or an already-bound
    :class:`~repro.workloads.scenario.BoundScenario` (whose assignment wins
    over those knobs).  A single-profile scenario is the degenerate case and
    reproduces the homogeneous form bit for bit.
    """

    def __init__(
        self,
        program: Optional[SyntheticProgram] = None,
        cores: int = 16,
        instructions_per_core: Optional[int] = None,
        frontend_config: Optional[FrontendConfig] = None,
        trace_seed_base: int = 100,
        workers: Optional[int] = None,
        trace_store: Optional["TraceStore"] = None,
        scenario: Union[None, Scenario, BoundScenario] = None,
        backend: Union[str, "SimBackend", None] = None,
    ) -> None:
        if workers is not None and workers <= 0:
            raise ValueError("workers must be positive when given")
        if scenario is not None:
            if program is not None:
                raise ValueError(
                    "pass either a program (homogeneous CMP) or a scenario "
                    "(heterogeneous CMP), not both"
                )
            if isinstance(scenario, Scenario):
                scenario = scenario.bind(
                    cores=cores,
                    instructions_per_core=instructions_per_core,
                    trace_seed_base=trace_seed_base,
                )
            if not isinstance(scenario, BoundScenario):
                raise TypeError(f"not a scenario: {scenario!r}")
            self.scenario: Optional[BoundScenario] = scenario
            self.program = None
            self.profile: Optional[WorkloadProfile] = None
            self.workload_name = scenario.name
            self.workloads: Tuple[CoreWorkload, ...] = scenario.assignments
            self.cores = len(self.workloads)
            self.instructions_per_core = scenario.instructions_per_core
            self._programs: Dict[WorkloadProfile, SyntheticProgram] = {}
        else:
            if program is None:
                raise ValueError("a CMP needs a program or a scenario")
            if cores <= 0:
                raise ValueError("a CMP needs at least one core")
            self.scenario = None
            self.program = program
            self.profile = program.profile
            self.workload_name = self.profile.name
            self.cores = cores
            self.instructions_per_core = (
                instructions_per_core or self.profile.recommended_trace_instructions
            )
            self.workloads = tuple(
                CoreWorkload(
                    profile=self.profile,
                    seed=trace_seed_base + core,
                    instructions=self.instructions_per_core,
                )
                for core in range(cores)
            )
            self._programs = {self.profile: program}
        self.frontend_config = frontend_config
        self.trace_seed_base = trace_seed_base
        self.workers = workers
        #: Default simulation backend for every core (a registry name, a
        #: ready backend instance, or ``None`` for the stack default);
        #: :meth:`run_design` accepts a per-run override.
        self.backend = backend
        #: Optional :class:`repro.sweep.TraceStore`: per-core traces become
        #: shared on-disk artifacts, loaded instead of re-generated — and the
        #: core-level fan-out ships their *paths* to workers (zero-copy).
        self.trace_store = trace_store
        #: How this driver's traces were obtained (observability; the sweep
        #: engine folds these into :class:`repro.sweep.SweepStats`).
        #: ``traces_mapped`` counts the loads served zero-copy — memoryviews
        #: over an mmap of the store artifact, not a private heap copy.
        self.traces_generated = 0
        self.traces_loaded = 0
        self.traces_mapped = 0
        self._traces: Optional[List[Trace]] = None
        self._trace_paths: Optional[List[Optional[str]]] = None

    def _program_for(self, profile: WorkloadProfile) -> SyntheticProgram:
        program = self._programs.get(profile)
        if program is None:
            program = workload_program(profile)
            self._programs[profile] = program
        return program

    def _core_traces(self) -> List[Trace]:
        if self._traces is None:
            store = self.trace_store
            traces: List[Trace] = []
            paths: List[Optional[str]] = []
            for core, workload in enumerate(self.workloads):
                name = f"{workload.profile.name}/core{core}"
                trace = None
                path: Optional[str] = None
                if store is not None:
                    trace = store.load(
                        workload.profile, workload.instructions, workload.seed,
                        name=name,
                    )
                if trace is not None:
                    self.traces_loaded += 1
                    if trace.packed.mapped:
                        self.traces_mapped += 1
                    path = str(store.path_for(
                        workload.profile, workload.instructions, workload.seed
                    ))
                else:
                    trace = generate_trace(
                        self._program_for(workload.profile),
                        workload.instructions,
                        seed=workload.seed,
                        name=name,
                    )
                    self.traces_generated += 1
                    if store is not None:
                        path = str(store.put(
                            workload.profile, workload.instructions,
                            workload.seed, trace,
                        ))
                traces.append(trace)
                paths.append(path)
            self._traces = traces
            self._trace_paths = paths
        return self._traces

    def _llc_config(self) -> LLCConfig:
        # The LLC is always the full chip's (16 slices): simulating fewer cores
        # samples the chip, it does not shrink the shared cache the virtualized
        # predictor metadata lives in.
        return LLCConfig(cores=max(self.cores, LLCConfig().cores))

    def _batch_backend(
        self, backend: Union[str, "SimBackend", None]
    ) -> Optional["BatchBackend"]:
        """Resolve ``backend`` to a usable batch backend, else ``None``.

        Only an explicit ``backend=`` selection (per-run or constructor)
        engages the lane-grouped dispatch; ``None`` keeps the per-simulator
        default path untouched.  An unavailable batch backend (numpy not
        installed) also returns ``None`` here — the per-core path then
        surfaces its uniform :class:`ValueError` on the first ``run``.
        """
        if backend is None:
            return None
        from repro.backends.base import resolve_backend
        from repro.backends.batch import BatchBackend

        impl = resolve_backend(backend)
        if isinstance(impl, BatchBackend) and impl.available():
            return impl
        return None

    def _run_design_batched(
        self,
        batch: "BatchBackend",
        spec: DesignSpec,
        llc: SharedLLC,
        histories: Dict[WorkloadProfile, ShiftHistory],
        recorder_set: "set[int]",
        traces: List[Trace],
        result: CMPResult,
        core_results: List[Optional[FrontendResult]],
    ) -> None:
        """Fill ``core_results`` through the batch backend's lane path.

        All cores' simulators are built up front; when every one vectorizes,
        co-located cores are grouped by profile (first-appearance order, the
        same order the serial path visits them) and each group becomes one
        ``run_lanes`` call.  A design outside the vectorized envelope runs
        every core serially through ``run`` instead — the backend's own
        scalar delegation — recorders first, exactly like the serial path.
        """
        simulators: List[FrontendSimulator] = []
        for index, workload in enumerate(self.workloads):
            simulator, area = design_from_spec(
                spec,
                self._program_for(workload.profile),
                llc=llc,
                shared_history=histories[workload.profile],
                frontend_config=self.frontend_config,
                record_history=index in recorder_set,
            )
            if result.area is None:
                result.area = area
            simulators.append(simulator)
        if all(batch.vectorizes(simulator) for simulator in simulators):
            groups: Dict[WorkloadProfile, List[int]] = {}
            for index, workload in enumerate(self.workloads):
                groups.setdefault(workload.profile, []).append(index)
            for lanes in groups.values():
                lane_results = batch.run_lanes(
                    [simulators[index] for index in lanes],
                    [traces[index] for index in lanes],
                    [simulators[index].config.warmup_fraction for index in lanes],
                )
                for index, lane_result in zip(lanes, lane_results, strict=True):
                    core_results[index] = lane_result
            return
        # Outside the vectorized envelope (e.g. a Confluence design) the
        # recording cores must still run before their replayers.
        order = sorted(range(self.cores), key=lambda i: (i not in recorder_set, i))
        for index in order:
            core_results[index] = simulators[index].run(
                traces[index], backend=batch
            )

    def run_design(
        self,
        design: Union[str, DesignSpec],
        workers: Optional[int] = None,
        backend: Union[str, "SimBackend", None] = None,
    ) -> CMPResult:
        """Run every core under ``design`` with per-profile shared histories.

        The first core running each profile records that profile's SHIFT
        history in-process; every other core of the profile replays it.
        ``workers`` (or the constructor's default) > 1 fans the replaying
        cores out across processes; the default stays serial and the results
        are identical either way.  ``backend`` (or the constructor's default)
        selects the simulation loop for every core, recorded and replayed
        alike.

        A ``batch`` backend takes precedence over ``workers``: when every
        core's simulator vectorizes, co-located cores are grouped by profile
        and each group runs as lanes of a single
        :meth:`~repro.backends.batch.BatchBackend.run_lanes` call — SIMD
        over cores instead of processes over cores.  When any core's design
        does not vectorize, every core runs serially through the backend's
        own per-core delegation, so the results are identical either way.
        """
        spec = resolve_design(design)
        workers = workers if workers is not None else self.workers
        backend = backend if backend is not None else self.backend
        llc = SharedLLC(self._llc_config())
        traces = self._core_traces()
        paths = self._trace_paths or [None] * len(traces)
        result = CMPResult(
            design=spec.name,
            workload=self.workload_name,
            scenario=self.scenario.name if self.scenario is not None else None,
            core_profiles=[workload.profile.name for workload in self.workloads],
        )

        # One shared history per profile on the chip, each virtualized in its
        # own LLC region.  The first core of each profile records; it always
        # runs first, in-process, like core 0 always has.
        histories: Dict[WorkloadProfile, ShiftHistory] = {}
        recorders: List[int] = []
        replayers: List[int] = []
        for index, workload in enumerate(self.workloads):
            if workload.profile not in histories:
                histories[workload.profile] = ShiftHistory(
                    llc=llc,
                    region_name=f"shift_history:{workload.profile.name}",
                )
                recorders.append(index)
            else:
                replayers.append(index)

        core_results: List[Optional[FrontendResult]] = [None] * self.cores
        batch = self._batch_backend(backend)
        if batch is not None:
            self._run_design_batched(
                batch, spec, llc, histories, set(recorders), traces,
                result, core_results,
            )
            completed = [core for core in core_results if core is not None]
            if len(completed) != self.cores:  # pragma: no cover - defensive
                raise RuntimeError("CMP run left a core without a result")
            result.core_results.extend(completed)
            return result

        for index in recorders:
            workload = self.workloads[index]
            simulator, area = design_from_spec(
                spec,
                self._program_for(workload.profile),
                llc=llc,
                shared_history=histories[workload.profile],
                frontend_config=self.frontend_config,
                record_history=True,
            )
            if result.area is None:
                result.area = area
            core_results[index] = simulator.run(traces[index], backend=backend)

        if replayers and workers is not None and workers > 1:
            # Each profile's history is immutable once its recorder finishes;
            # one snapshot per profile serves every replaying core.  Traces
            # backed by a store artifact travel as paths, not pickled columns.
            snapshots: Dict[WorkloadProfile, Dict[str, Any]] = {}
            jobs = []
            for index in replayers:
                workload = self.workloads[index]
                if workload.profile not in snapshots:
                    snapshots[workload.profile] = histories[workload.profile].snapshot()
                trace = traces[index]
                path = paths[index]
                jobs.append((
                    spec,
                    self._program_for(workload.profile),
                    None if path is not None else trace,
                    path,
                    trace.name,
                    snapshots[workload.profile],
                    self._llc_config(),
                    self.frontend_config,
                    backend,
                    f"{workload.profile.name}/core{index}"
                    f"[seed={workload.seed}] design={spec.name}",
                ))
            pool_size = min(workers, len(jobs))
            with ProcessPoolExecutor(
                max_workers=pool_size, mp_context=_fork_context()
            ) as pool:
                for index, core_result in zip(replayers, pool.map(_replay_core, jobs), strict=True):
                    core_results[index] = core_result
        else:
            for index in replayers:
                workload = self.workloads[index]
                simulator, _ = design_from_spec(
                    spec,
                    self._program_for(workload.profile),
                    llc=llc,
                    shared_history=histories[workload.profile],
                    frontend_config=self.frontend_config,
                    record_history=False,
                )
                core_results[index] = simulator.run(traces[index], backend=backend)

        # Every core index was filled (replayed or simulated inline); the
        # comprehension narrows List[Optional[...]] for the result list.
        completed = [core for core in core_results if core is not None]
        if len(completed) != self.cores:  # pragma: no cover - defensive
            raise RuntimeError("CMP run left a core without a result")
        result.core_results.extend(completed)
        return result

    def run_designs(
        self,
        designs: Iterable[Union[str, DesignSpec]],
        workers: Optional[int] = None,
        backend: Union[str, "SimBackend", None] = None,
    ) -> Dict[str, CMPResult]:
        """Run a set of design points; returns ``{design name: CMPResult}``.

        Each spec is resolved exactly once, and duplicate design names are
        rejected: they would silently overwrite each other in the result
        mapping (rename a derived spec with :meth:`DesignSpec.derive`).
        """
        specs = [resolve_design(design) for design in designs]
        ensure_unique_names("design", [spec.name for spec in specs])
        return {
            spec.name: self.run_design(spec, workers=workers, backend=backend)
            for spec in specs
        }
