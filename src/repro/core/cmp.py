"""Chip multiprocessor driver: many cores, one workload, shared metadata.

The paper evaluates a 16-core tiled CMP in which every core runs the same
server workload; SHIFT's history (and PhantomBTB's virtual table) are shared
by all cores and virtualized in the LLC.  This driver reproduces that setup
for trace-driven simulation:

* one :class:`~repro.workloads.cfg.SyntheticProgram` is shared by all cores,
* each core gets its own trace (same request mix, different seed), its own
  L1-I, BTB and branch predictors,
* the SHIFT history instance is shared; core 0 records it, all cores replay
  it, exactly as in the paper, and
* cores are simulated one after another (their only interaction is through
  the shared metadata, which is insensitive to fine-grain interleaving).

Because the replaying cores (1..N-1) never write the shared metadata, they
are independent given core 0's recorded history, and the driver can fan them
out across worker processes (``workers=N``).  The parallel path reproduces
the serial path bit for bit: core 0 always runs first in-process, its
recorded history is snapshotted into each worker, and every core keeps its
own deterministic trace seed.  The serial default is preserved.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

from repro.caches.llc import LLCConfig, SharedLLC
from repro.core.area import FrontendAreaReport
from repro.core.designs import DesignSpec, design_from_spec, resolve_design
from repro.core.frontend import FrontendConfig, FrontendResult
from repro.core.metrics import mpki
from repro.prefetch.shift import ShiftHistory
from repro.registry import ensure_unique_names
from repro.workloads.cfg import SyntheticProgram
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import WorkloadProfile


@dataclass
class CMPResult:
    """Aggregate result of one design point on one workload."""

    design: str
    workload: str
    core_results: List[FrontendResult] = field(default_factory=list)
    area: Optional[FrontendAreaReport] = None

    @property
    def instructions(self) -> int:
        return sum(result.instructions for result in self.core_results)

    @property
    def cycles(self) -> float:
        return sum(result.cycles for result in self.core_results)

    @property
    def ipc(self) -> float:
        """System throughput proxy: aggregate instructions over aggregate cycles."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def btb_taken_misses(self) -> int:
        return sum(result.btb_taken_misses for result in self.core_results)

    @property
    def btb_mpki(self) -> float:
        # metrics.mpki raises on a zero instruction count: a result that
        # measured nothing must fail loudly, not read as miss-free.
        return mpki(self.btb_taken_misses, self.instructions)

    @property
    def l1i_mpki(self) -> float:
        return mpki(sum(result.l1i_misses for result in self.core_results),
                    self.instructions)

    def speedup_over(self, baseline: "CMPResult") -> float:
        # A zero-IPC operand measured nothing; fail loudly (the mpki /
        # miss_coverage degenerate-denominator policy), never report 0x.
        if self.ipc == 0 or baseline.ipc == 0:
            raise ValueError(
                "speedup_over is undefined when either result has zero IPC "
                f"(self.ipc={self.ipc}, baseline.ipc={baseline.ipc})"
            )
        return self.ipc / baseline.ipc


def _replay_core(job) -> FrontendResult:
    """Simulate one replaying core in a worker process.

    The worker rebuilds its private surroundings (LLC with the same geometry,
    hence the same round-trip latency, plus a replay-side clone of the shared
    history); the only cross-core coupling in the serial path is the recorded
    history and LLC statistics, and the statistics do not feed back into
    timing, so the result is identical to the serial path's.
    """
    spec, program, trace, history_state, llc_config, frontend_config = job
    llc = SharedLLC(llc_config)
    shared_history = ShiftHistory.restore(history_state, llc=llc)
    simulator, _ = design_from_spec(
        spec,
        program,
        llc=llc,
        shared_history=shared_history,
        frontend_config=frontend_config,
        record_history=False,
    )
    return simulator.run(trace)


def _fork_context():
    """Prefer fork so worker processes inherit user-registered components."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return None


class ChipMultiprocessor:
    """Simulates ``cores`` instances of a workload under one design point."""

    def __init__(
        self,
        program: SyntheticProgram,
        cores: int = 16,
        instructions_per_core: Optional[int] = None,
        frontend_config: Optional[FrontendConfig] = None,
        trace_seed_base: int = 100,
        workers: Optional[int] = None,
        trace_store=None,
    ) -> None:
        if cores <= 0:
            raise ValueError("a CMP needs at least one core")
        if workers is not None and workers <= 0:
            raise ValueError("workers must be positive when given")
        self.program = program
        self.profile: WorkloadProfile = program.profile
        self.cores = cores
        self.instructions_per_core = (
            instructions_per_core or self.profile.recommended_trace_instructions
        )
        self.frontend_config = frontend_config
        self.trace_seed_base = trace_seed_base
        self.workers = workers
        #: Optional :class:`repro.sweep.TraceStore`: per-core traces become
        #: shared on-disk artifacts, loaded instead of re-generated.
        self.trace_store = trace_store
        #: How this driver's traces were obtained (observability; the sweep
        #: engine folds these into :class:`repro.sweep.SweepStats`).
        #: ``traces_mapped`` counts the loads served zero-copy — memoryviews
        #: over an mmap of the store artifact, not a private heap copy.
        self.traces_generated = 0
        self.traces_loaded = 0
        self.traces_mapped = 0
        self._traces = None

    def _core_traces(self):
        if self._traces is None:
            store = self.trace_store
            traces = []
            for core in range(self.cores):
                seed = self.trace_seed_base + core
                name = f"{self.profile.name}/core{core}"
                trace = None
                if store is not None:
                    trace = store.load(
                        self.profile, self.instructions_per_core, seed, name=name
                    )
                if trace is not None:
                    self.traces_loaded += 1
                    if trace.packed.mapped:
                        self.traces_mapped += 1
                else:
                    trace = generate_trace(
                        self.program,
                        self.instructions_per_core,
                        seed=seed,
                        name=name,
                    )
                    self.traces_generated += 1
                    if store is not None:
                        store.put(self.profile, self.instructions_per_core, seed, trace)
                traces.append(trace)
            self._traces = traces
        return self._traces

    def _llc_config(self) -> LLCConfig:
        # The LLC is always the full chip's (16 slices): simulating fewer cores
        # samples the chip, it does not shrink the shared cache the virtualized
        # predictor metadata lives in.
        return LLCConfig(cores=max(self.cores, LLCConfig().cores))

    def run_design(
        self,
        design: Union[str, DesignSpec],
        workers: Optional[int] = None,
    ) -> CMPResult:
        """Run every core under ``design`` with shared SHIFT history.

        ``workers`` (or the constructor's default) > 1 fans the replaying
        cores out across processes; the default stays serial and the results
        are identical either way.
        """
        spec = resolve_design(design)
        workers = workers if workers is not None else self.workers
        llc = SharedLLC(self._llc_config())
        shared_history = ShiftHistory(llc=llc)
        traces = self._core_traces()
        result = CMPResult(design=spec.name, workload=self.profile.name)

        # Core 0 always runs first, in-process: it records the shared history
        # the other cores replay.
        simulator, area = design_from_spec(
            spec,
            self.program,
            llc=llc,
            shared_history=shared_history,
            frontend_config=self.frontend_config,
            record_history=True,
        )
        result.core_results.append(simulator.run(traces[0]))
        result.area = area

        replay_traces = traces[1:]
        if not replay_traces:
            return result
        if workers is not None and workers > 1:
            # The history is immutable once core 0 finishes; one snapshot
            # serves every replaying core.
            history_state = shared_history.snapshot()
            jobs = [
                (
                    spec,
                    self.program,
                    trace,
                    history_state,
                    self._llc_config(),
                    self.frontend_config,
                )
                for trace in replay_traces
            ]
            pool_size = min(workers, len(jobs))
            with ProcessPoolExecutor(
                max_workers=pool_size, mp_context=_fork_context()
            ) as pool:
                result.core_results.extend(pool.map(_replay_core, jobs))
        else:
            for trace in replay_traces:
                simulator, _ = design_from_spec(
                    spec,
                    self.program,
                    llc=llc,
                    shared_history=shared_history,
                    frontend_config=self.frontend_config,
                    record_history=False,
                )
                result.core_results.append(simulator.run(trace))
        return result

    def run_designs(
        self,
        designs: Iterable[Union[str, DesignSpec]],
        workers: Optional[int] = None,
    ) -> Dict[str, CMPResult]:
        """Run a set of design points; returns ``{design name: CMPResult}``.

        Each spec is resolved exactly once, and duplicate design names are
        rejected: they would silently overwrite each other in the result
        mapping (rename a derived spec with :meth:`DesignSpec.derive`).
        """
        specs = [resolve_design(design) for design in designs]
        ensure_unique_names("design", [spec.name for spec in specs])
        return {spec.name: self.run_design(spec, workers=workers) for spec in specs}
