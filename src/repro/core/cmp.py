"""Chip multiprocessor driver: many cores, one workload, shared metadata.

The paper evaluates a 16-core tiled CMP in which every core runs the same
server workload; SHIFT's history (and PhantomBTB's virtual table) are shared
by all cores and virtualized in the LLC.  This driver reproduces that setup
for trace-driven simulation:

* one :class:`~repro.workloads.cfg.SyntheticProgram` is shared by all cores,
* each core gets its own trace (same request mix, different seed), its own
  L1-I, BTB and branch predictors,
* the SHIFT history instance is shared; core 0 records it, all cores replay
  it, exactly as in the paper, and
* cores are simulated one after another (their only interaction is through
  the shared metadata, which is insensitive to fine-grain interleaving).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.caches.llc import LLCConfig, SharedLLC
from repro.core.area import FrontendAreaReport
from repro.core.designs import DESIGN_POINTS, build_design
from repro.core.frontend import FrontendConfig, FrontendResult
from repro.core.metrics import arithmetic_mean, geometric_mean
from repro.prefetch.shift import ShiftHistory
from repro.workloads.cfg import SyntheticProgram
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import WorkloadProfile


@dataclass
class CMPResult:
    """Aggregate result of one design point on one workload."""

    design: str
    workload: str
    core_results: List[FrontendResult] = field(default_factory=list)
    area: Optional[FrontendAreaReport] = None

    @property
    def instructions(self) -> int:
        return sum(result.instructions for result in self.core_results)

    @property
    def cycles(self) -> float:
        return sum(result.cycles for result in self.core_results)

    @property
    def ipc(self) -> float:
        """System throughput proxy: aggregate instructions over aggregate cycles."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def btb_taken_misses(self) -> int:
        return sum(result.btb_taken_misses for result in self.core_results)

    @property
    def btb_mpki(self) -> float:
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.btb_taken_misses / self.instructions

    @property
    def l1i_mpki(self) -> float:
        if self.instructions == 0:
            return 0.0
        misses = sum(result.l1i_misses for result in self.core_results)
        return 1000.0 * misses / self.instructions

    def speedup_over(self, baseline: "CMPResult") -> float:
        if self.ipc == 0 or baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc


class ChipMultiprocessor:
    """Simulates ``cores`` instances of a workload under one design point."""

    def __init__(
        self,
        program: SyntheticProgram,
        cores: int = 16,
        instructions_per_core: Optional[int] = None,
        frontend_config: Optional[FrontendConfig] = None,
        trace_seed_base: int = 100,
    ) -> None:
        if cores <= 0:
            raise ValueError("a CMP needs at least one core")
        self.program = program
        self.profile: WorkloadProfile = program.profile
        self.cores = cores
        self.instructions_per_core = (
            instructions_per_core or self.profile.recommended_trace_instructions
        )
        self.frontend_config = frontend_config
        self.trace_seed_base = trace_seed_base
        self._traces = None

    def _core_traces(self):
        if self._traces is None:
            self._traces = [
                generate_trace(
                    self.program,
                    self.instructions_per_core,
                    seed=self.trace_seed_base + core,
                    name=f"{self.profile.name}/core{core}",
                )
                for core in range(self.cores)
            ]
        return self._traces

    def run_design(self, design_name: str) -> CMPResult:
        """Run every core under ``design_name`` with shared SHIFT history."""
        if design_name not in DESIGN_POINTS:
            known = ", ".join(sorted(DESIGN_POINTS))
            raise KeyError(f"unknown design point {design_name!r}; known: {known}")
        # The LLC is always the full chip's (16 slices): simulating fewer cores
        # samples the chip, it does not shrink the shared cache the virtualized
        # predictor metadata lives in.
        llc = SharedLLC(LLCConfig(cores=max(self.cores, LLCConfig().cores)))
        shared_history = ShiftHistory(llc=llc)
        result = CMPResult(design=design_name, workload=self.profile.name)
        for core, trace in enumerate(self._core_traces()):
            simulator, area = build_design(
                design_name,
                self.program,
                llc=llc,
                shared_history=shared_history,
                frontend_config=self.frontend_config,
                # Core 0 generates the shared history; the others consume it.
                record_history=(core == 0),
            )
            result.core_results.append(simulator.run(trace))
            if core == 0:
                result.area = area
        return result

    def run_designs(self, design_names) -> Dict[str, CMPResult]:
        return {name: self.run_design(name) for name in design_names}
