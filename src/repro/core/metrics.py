"""Metrics used throughout the evaluation.

Small, dependency-free helpers so benchmarks, tests and examples all compute
MPKI, miss coverage and speedups the same way the paper does.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping


def mpki(misses: int, instructions: int) -> float:
    """Misses per kilo-instruction.

    A non-positive instruction count is an error, not zero MPKI: it means
    the run measured nothing (e.g. the warmup swallowed the whole trace),
    and silently reporting 0.0 would read as a *perfect* result.
    """
    if instructions <= 0:
        raise ValueError(
            f"mpki needs a positive instruction count, got {instructions} "
            "(a run that measured no instructions is broken, not miss-free)"
        )
    return 1000.0 * misses / instructions


def miss_coverage(baseline_misses: int, design_misses: int) -> float:
    """Fraction of the baseline's misses a design eliminates (Figures 8-10).

    Negative values mean the design *added* misses relative to the baseline,
    which Figure 10 shows for undersized AirBTB configurations.  A baseline
    without misses is an error (matching :func:`geometric_mean`'s
    loud-failure behavior): there is nothing to cover, so every answer would
    be an artifact of the degenerate denominator.
    """
    if baseline_misses <= 0:
        raise ValueError(
            f"miss_coverage needs positive baseline misses, got "
            f"{baseline_misses} (a baseline with no misses leaves nothing "
            "to cover — the workload is too small for this study)"
        )
    return (baseline_misses - design_misses) / baseline_misses


def speedup(baseline_cycles: float, design_cycles: float) -> float:
    """Performance of a design relative to a baseline (same instruction count)."""
    if design_cycles <= 0 or baseline_cycles <= 0:
        return 0.0
    return baseline_cycles / design_cycles


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, the conventional way to average speedups.

    Non-positive values are an error, not something to silently drop: a zero
    speedup means a run produced no cycles or no instructions, and averaging
    around it would mask the broken run.
    """
    values = list(values)
    if not values:
        return 0.0
    non_positive = sum(1 for value in values if value <= 0)
    if non_positive:
        raise ValueError(
            f"geometric_mean needs positive values; got {non_positive} "
            f"non-positive of {len(values)} (a non-positive speedup usually "
            "means a broken run)"
        )
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def arithmetic_mean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def fraction_of_ideal(design_speedup: float, ideal_speedup: float) -> float:
    """How much of the ideal design's *improvement* a design captures.

    The paper's headline metric: Confluence delivers 85% of the performance
    improvement of a perfect L1-I + BTB, i.e.
    (design - 1) / (ideal - 1).
    """
    if ideal_speedup <= 1.0:
        return 0.0
    return (design_speedup - 1.0) / (ideal_speedup - 1.0)


def normalize(values: Mapping[str, float], reference_key: str) -> Dict[str, float]:
    """Normalize a mapping of values to one reference entry.

    Degenerate input raises :class:`ValueError` (matching
    :func:`geometric_mean`'s loud-failure behavior) rather than a bare
    ``KeyError`` or a silent division artifact.
    """
    if reference_key not in values:
        known = ", ".join(sorted(str(key) for key in values))
        raise ValueError(f"unknown reference {reference_key!r}; known: {known}")
    reference = values[reference_key]
    if reference == 0:
        raise ValueError(f"reference value {reference_key!r} is zero")
    return {key: value / reference for key, value in values.items()}
