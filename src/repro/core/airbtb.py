"""AirBTB: the block-based BTB of Confluence (Section 3.1-3.3).

AirBTB is organized as a set-associative cache of *bundles*, one per
instruction block resident in the L1-I.  A bundle carries a single tag (the
block address), a 16-bit branch bitmap identifying which instruction slots
hold branches, and a fixed number of branch entries (offset, type, target).
Blocks whose branch count exceeds the bundle capacity spill the excess
entries into a small fully-associative overflow buffer.

Under Confluence, bundle insertions and evictions are driven by the L1-I
(content synchronization).  The class also supports standalone operation with
its own LRU replacement and configurable insertion policy, which the Figure 8
ablation uses to isolate where AirBTB's coverage advantage comes from:

* ``insertion_policy="demand"`` — only the resolved branch's entry is
  inserted on a miss (isolates the *capacity* benefit of the block-based,
  tag-amortized organization),
* ``insertion_policy="eager"`` — the whole block is predecoded on a miss and
  all of its branch entries are installed (adds the *spatial locality*
  benefit),
* synchronized operation under Confluence adds the *prefetching* and
  *block-based organization* benefits (fills ahead of the fetch stream, no
  conflicts between L1-I-resident blocks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.branch.btb_base import BaseBTB, BTBEntry, BTBLookupResult
from repro.caches.sram import SetAssociativeCache
from repro.isa.block import InstructionBlock
from repro.isa.instruction import BranchKind, block_address, block_offset
from repro.isa.predecode import PredecodedBlock, Predecoder
from repro.registry import BTB_REGISTRY, BuildContext

#: A callback that returns the instruction block at a given block address
#: (normally ``ProgramImage.block_at``); AirBTB predecodes through it.
BlockProvider = Callable[[int], Optional[InstructionBlock]]


@dataclass(frozen=True)
class AirBTBConfig:
    """AirBTB sizing; defaults are the final design of Section 4.2.2."""

    bundles: int = 512
    ways: int = 4
    branch_entries_per_bundle: int = 3
    overflow_entries: int = 32
    latency_cycles: int = 1
    insertion_policy: str = "eager"  # "eager" or "demand"

    def __post_init__(self) -> None:
        if self.insertion_policy not in ("eager", "demand"):
            raise ValueError("insertion_policy must be 'eager' or 'demand'")
        if self.bundles % self.ways:
            raise ValueError("bundle count must be divisible by associativity")
        if self.branch_entries_per_bundle <= 0:
            raise ValueError("bundles need at least one branch entry")

    @property
    def storage_kb(self) -> float:
        """Storage estimate following the paper's entry breakdown.

        Each bundle: block tag (48-bit address minus 6 offset bits and the
        index bits), a 16-bit branch bitmap and B entries of 4-bit offset,
        2-bit type and 30-bit target.  The overflow buffer entries carry a
        full branch-PC tag.
        """
        sets = self.bundles // self.ways
        index_bits = max(0, sets.bit_length() - 1)
        tag_bits = 48 - 6 - index_bits
        bundle_bits = tag_bits + 16 + self.branch_entries_per_bundle * (4 + 2 + 30) + 1
        overflow_bits = self.overflow_entries * (48 + 2 + 30 + 1)
        return (self.bundles * bundle_bits + overflow_bits) / 8 / 1024


class _Bundle:
    """Branch entries of one instruction block."""

    __slots__ = ("block_addr", "bitmap", "entries")

    def __init__(self, block_addr: int, bitmap: int = 0) -> None:
        self.block_addr = block_addr
        self.bitmap = bitmap
        self.entries: Dict[int, BTBEntry] = {}


class AirBTB(BaseBTB):
    """Block-based BTB with eager insertion and an overflow buffer."""

    def __init__(
        self,
        config: Optional[AirBTBConfig] = None,
        block_provider: Optional[BlockProvider] = None,
        predecoder: Optional[Predecoder] = None,
        name: str = "airbtb",
    ) -> None:
        super().__init__(name)
        self.config = config or AirBTBConfig()
        self.block_provider = block_provider
        self.predecoder = predecoder or Predecoder()
        self._bundles = SetAssociativeCache(
            sets=self.config.bundles // self.config.ways,
            ways=self.config.ways,
            name=f"{name}_bundles",
            index_shift=6,
            on_eviction=self._on_bundle_eviction,
        )
        self._overflow = (
            SetAssociativeCache(
                sets=1, ways=self.config.overflow_entries, name=f"{name}_overflow"
            )
            if self.config.overflow_entries > 0
            else None
        )
        #: When True the bundle array is managed externally (synchronized with
        #: the L1-I through on_block_fill/on_block_evict); standalone use
        #: keeps it False and relies on the internal LRU.
        self.synchronized = False
        self.bundle_insertions = 0
        self.bundle_evictions = 0
        self.overflow_insertions = 0

    # ------------------------------------------------------------------ #
    # Lookup / update (BaseBTB interface)
    # ------------------------------------------------------------------ #

    def lookup(self, branch_pc: int, taken: bool = True) -> BTBLookupResult:
        block = block_address(branch_pc)
        offset = block_offset(branch_pc)
        hit, bundle = self._bundles.access(block)
        if hit and bundle is not None and (bundle.bitmap >> offset) & 1:
            entry = bundle.entries.get(offset)
            if entry is not None:
                self.stats.record(True, taken)
                return BTBLookupResult(True, entry, self.config.latency_cycles, "l1")
            overflow_hit, overflow_entry = (
                self._overflow.access(branch_pc) if self._overflow is not None else (False, None)
            )
            if overflow_hit:
                self.stats.record(True, taken)
                return BTBLookupResult(
                    True, overflow_entry, self.config.latency_cycles, "overflow"
                )
        self.stats.record(False, taken)
        return BTBLookupResult(False, None, 0, "miss")

    def peek_hit(self, branch_pc: int) -> bool:
        block = block_address(branch_pc)
        offset = block_offset(branch_pc)
        bundle = self._bundles.peek(block)
        if bundle is not None and (bundle.bitmap >> offset) & 1:
            if offset in bundle.entries:
                return True
            return self._overflow is not None and self._overflow.contains(branch_pc)
        return False

    def update(self, branch_pc: int, kind: BranchKind, target: Optional[int], taken: bool) -> None:
        """Insert/refresh on branch resolution.

        Under Confluence the bundle normally already exists (the block was
        predecoded on its way into the L1-I), so this is a refresh.  In
        standalone operation the update allocates bundles according to the
        configured insertion policy.
        """
        if not taken and not kind.is_unconditional:
            return
        self.stats.insertions += 1
        block = block_address(branch_pc)
        bundle = self._bundles.peek(block)
        if bundle is None:
            if self.synchronized:
                # Content is mirrored from the L1-I; a missing bundle means the
                # block is not resident, so nothing is allocated here.
                return
            if self.config.insertion_policy == "eager":
                bundle = self._install_block(block)
            if bundle is None:
                bundle = _Bundle(block)
                self._install_bundle(bundle)
        self._add_entry(
            bundle,
            BTBEntry(branch_pc=branch_pc, kind=kind, target=target),
        )

    # ------------------------------------------------------------------ #
    # Content synchronization with the L1-I (Confluence)
    # ------------------------------------------------------------------ #

    def on_block_fill(self, predecoded: PredecodedBlock, demand: bool = False) -> None:
        """Install the bundle for a block arriving in the L1-I."""
        self._install_predecoded(predecoded)

    def on_block_evict(self, block_addr: int) -> None:
        """Drop the bundle of a block leaving the L1-I."""
        bundle = self._bundles.peek(block_addr)
        if bundle is None:
            return
        self._drop_overflow_entries(bundle)
        self._bundles.invalidate(block_addr)
        self.bundle_evictions += 1

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _on_bundle_eviction(self, block_addr: int, bundle: object) -> None:
        self.bundle_evictions += 1
        if isinstance(bundle, _Bundle):
            self._drop_overflow_entries(bundle)

    def _drop_overflow_entries(self, bundle: _Bundle) -> None:
        """Remove this block's spilled entries from the overflow buffer."""
        capacity = self.config.branch_entries_per_bundle
        bitmap = bundle.bitmap
        if self._overflow is None:
            return
        for offset in range(16):
            if (bitmap >> offset) & 1 and offset not in bundle.entries:
                self._overflow.invalidate(bundle.block_addr + offset * 4)

    def _install_block(self, block_addr: int) -> Optional[_Bundle]:
        """Predecode and install the whole block (eager insertion)."""
        if self.block_provider is None:
            return None
        block = self.block_provider(block_addr)
        if block is None:
            return None
        predecoded = self.predecoder.predecode(block)
        return self._install_predecoded(predecoded)

    def _install_predecoded(self, predecoded: PredecodedBlock) -> _Bundle:
        block_addr = predecoded.block_address
        existing = self._bundles.peek(block_addr)
        if existing is not None:
            self._bundles.touch(block_addr)
            return existing
        bundle = _Bundle(block_addr, bitmap=predecoded.bitmap)
        for descriptor in predecoded.branches:
            entry = BTBEntry(
                branch_pc=block_addr + descriptor.offset * 4,
                kind=descriptor.kind,
                target=descriptor.target,
            )
            self._place_entry(bundle, descriptor.offset, entry)
        self._install_bundle(bundle)
        return bundle

    def _install_bundle(self, bundle: _Bundle) -> None:
        self._bundles.insert(bundle.block_addr, bundle)
        self.bundle_insertions += 1

    def _add_entry(self, bundle: _Bundle, entry: BTBEntry) -> None:
        offset = block_offset(entry.branch_pc)
        bundle.bitmap |= 1 << offset
        self._place_entry(bundle, offset, entry)

    def _place_entry(self, bundle: _Bundle, offset: int, entry: BTBEntry) -> None:
        if offset in bundle.entries:
            bundle.entries[offset] = entry
            return
        if len(bundle.entries) < self.config.branch_entries_per_bundle:
            bundle.entries[offset] = entry
            return
        # Bundle full: spill to the overflow buffer (if the design has one).
        if self._overflow is not None:
            self._overflow.insert(entry.branch_pc, entry)
            self.overflow_insertions += 1

    @property
    def storage_kb(self) -> float:
        return self.config.storage_kb

    @property
    def resident_bundles(self) -> int:
        return self._bundles.occupancy()


@BTB_REGISTRY.register("airbtb_standalone")
def _build_airbtb_standalone(ctx: BuildContext, **params: Any) -> AirBTB:
    """A bare AirBTB with internal LRU (no Confluence around it).

    Used by component-level coverage studies (the Figure 8 capacity and
    spatial-locality steps); the full design point uses the ``airbtb``
    component, which wires in Confluence.
    """
    provider = ctx.program.image.block_at if ctx.program is not None else None
    config = AirBTBConfig(**params) if params else None
    return AirBTB(config=config, block_provider=provider)
