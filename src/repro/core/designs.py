"""Declarative design specs and the named design-point catalog.

A :class:`DesignSpec` names the BTB and prefetcher components of a frontend
(by their registry names) and carries parameter overrides for each, so a
design point is pure data: sweeps over BTB entries, bundle sizes or cache
geometry are lists of specs, not bespoke factory code.  Construction resolves
through :data:`repro.registry.BTB_REGISTRY` and
:data:`repro.registry.PREFETCHER_REGISTRY`, so user code can register custom
components and design points without touching this module.

The catalog ships the paper's evaluated design points
(Sections 2.3, 4.2 and 5):

==================  =====================================  ==================
name                BTB                                    instruction supply
==================  =====================================  ==================
``baseline``        1K-entry conventional + victim buffer  none
``fdp``             1K-entry conventional + victim buffer  FDP
``phantom_fdp``     PhantomBTB                             FDP
``2level_fdp``      two-level (1K + 16K)                   FDP
``phantom_shift``   PhantomBTB                             SHIFT
``2level_shift``    two-level (1K + 16K)                   SHIFT
``idealbtb_shift``  16K-entry, single cycle                SHIFT
``confluence``      AirBTB, synchronized with the L1-I     SHIFT (Confluence)
``ideal``           perfect BTB                            perfect L1-I
==================  =====================================  ==================

Extending the catalog takes one call::

    from repro import DesignSpec, register_design_point

    register_design_point(DesignSpec(
        name="fat_baseline", label="4K BTB", btb="conventional",
        prefetcher="none", btb_params={"entries": 4096, "victim_entries": 64},
    ))
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.branch.btb_conventional import conventional_storage_kb
from repro.branch.unit import BranchPredictionUnit
from repro.caches.l1i import InstructionCache
from repro.caches.llc import SharedLLC
from repro.core.area import AreaModel, FrontendAreaReport
from repro.core.frontend import FrontendConfig, FrontendSimulator
from repro.prefetch.shift import ShiftHistory
from repro.registry import (
    BTB_REGISTRY,
    PREFETCHER_REGISTRY,
    BuildContext,
    load_builtin_components,
    unknown_name_error,
)
from repro.workloads.cfg import SyntheticProgram

# Importing the built-in component modules populates the registries before
# the catalog below names them.
load_builtin_components()


@dataclass(frozen=True)
class DesignSpec:
    """Declarative description of one frontend design point.

    Attributes:
        name: catalog key and the ``design_name`` reported by simulators.
        label: human-readable label used in tables and figures.
        btb: BTB component name in :data:`~repro.registry.BTB_REGISTRY`.
        prefetcher: prefetcher component name in
            :data:`~repro.registry.PREFETCHER_REGISTRY`.
        btb_params: parameter overrides passed to the BTB factory.
        prefetcher_params: parameter overrides for the prefetcher factory.
        uses_shift: whether the design pays SHIFT's per-core area share.
        perfect_l1i: model a perfect instruction cache.
        perfect_btb: the BTB is an idealisation, not a real structure.
        btb_storage_kb: explicit storage for area accounting.  ``None`` means
            "ask the built BTB"; idealised designs (infinite storage) set it
            to the storage they should be *priced* at — e.g. ``ideal`` carries
            the baseline BTB's storage so relative-area plots stay anchored.
    """

    # Field order keeps positional construction compatible with the old
    # DesignPoint(name, label, btb, prefetcher, uses_shift, ...) descriptor;
    # the spec-only fields come after every inherited one.
    name: str
    label: str
    btb: str
    prefetcher: str
    uses_shift: bool = False
    perfect_l1i: bool = False
    perfect_btb: bool = False
    btb_params: Mapping[str, object] = field(default_factory=dict)
    prefetcher_params: Mapping[str, object] = field(default_factory=dict)
    btb_storage_kb: Optional[float] = None

    def derive(
        self, name: str, label: Optional[str] = None, **overrides: Any
    ) -> "DesignSpec":
        """A renamed copy with parameter overrides merged in.

        ``btb_params``/``prefetcher_params`` given here are merged over the
        existing mappings; other keyword arguments replace spec fields.
        """
        merged = dict(overrides)
        if "btb_params" in merged:
            merged["btb_params"] = {**self.btb_params, **merged["btb_params"]}
        if "prefetcher_params" in merged:
            merged["prefetcher_params"] = {
                **self.prefetcher_params,
                **merged["prefetcher_params"],
            }
        return replace(self, name=name, label=label if label is not None else name, **merged)

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form (JSON-serializable for reports and configs)."""
        return {
            "name": self.name,
            "label": self.label,
            "btb": self.btb,
            "prefetcher": self.prefetcher,
            "btb_params": dict(self.btb_params),
            "prefetcher_params": dict(self.prefetcher_params),
            "uses_shift": self.uses_shift,
            "perfect_l1i": self.perfect_l1i,
            "perfect_btb": self.perfect_btb,
            "btb_storage_kb": self.btb_storage_kb,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "DesignSpec":
        return cls(**data)


#: Backwards-compatible alias: the old descriptor type grew into the spec.
DesignPoint = DesignSpec


def _paper_design_points() -> Tuple[DesignSpec, ...]:
    baseline_params: Dict[str, object] = {"entries": 1024, "victim_entries": 64}
    return (
        DesignSpec(
            "baseline", "1K BTB (baseline)", "conventional", "none",
            btb_params=baseline_params,
        ),
        DesignSpec(
            "fdp", "FDP", "conventional", "fdp", btb_params=baseline_params
        ),
        DesignSpec("phantom_fdp", "PhantomBTB+FDP", "phantom", "fdp"),
        DesignSpec("2level_fdp", "2LevelBTB+FDP", "two_level", "fdp"),
        DesignSpec(
            "phantom_shift", "PhantomBTB+SHIFT", "phantom", "shift", uses_shift=True
        ),
        DesignSpec(
            "2level_shift", "2LevelBTB+SHIFT", "two_level", "shift", uses_shift=True
        ),
        DesignSpec(
            "idealbtb_shift", "IdealBTB+SHIFT", "ideal_16k", "shift", uses_shift=True
        ),
        DesignSpec("confluence", "Confluence", "airbtb", "shift", uses_shift=True),
        DesignSpec(
            "ideal", "Ideal", "perfect", "perfect",
            perfect_l1i=True, perfect_btb=True,
            # Priced at the baseline BTB's storage (the paper's convention for
            # the ideal core) straight from the area model — no shadow BTB.
            btb_storage_kb=conventional_storage_kb(1024, ways=4, victim_entries=64),
        ),
    )


#: Mutable catalog of named design points.  Extend via
#: :func:`register_design_point` rather than writing to it directly.
DESIGN_POINTS: Dict[str, DesignSpec] = {
    spec.name: spec for spec in _paper_design_points()
}


def register_design_point(spec: DesignSpec, overwrite: bool = False) -> DesignSpec:
    """Add ``spec`` to the catalog under ``spec.name``."""
    if not overwrite and spec.name in DESIGN_POINTS:
        raise ValueError(
            f"design point {spec.name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    DESIGN_POINTS[spec.name] = spec
    return spec


def resolve_design(design: Union[str, DesignSpec]) -> DesignSpec:
    """The single catalog lookup (shared by the CMP driver and Session)."""
    if isinstance(design, DesignSpec):
        return design
    try:
        return DESIGN_POINTS[design]
    except KeyError:
        raise unknown_name_error("design point", design, DESIGN_POINTS) from None


def design_from_spec(
    spec: DesignSpec,
    program: SyntheticProgram,
    llc: Optional[SharedLLC] = None,
    shared_history: Optional[ShiftHistory] = None,
    frontend_config: Optional[FrontendConfig] = None,
    record_history: bool = True,
) -> Tuple[FrontendSimulator, FrontendAreaReport]:
    """Instantiate ``spec`` for one core through the component registries.

    ``llc`` and ``shared_history`` may be shared across cores (the CMP driver
    does this); when omitted, private instances are created, which models a
    single core of the CMP with its share of the LLC.
    """
    context = BuildContext(
        program=program,
        llc=llc if llc is not None else SharedLLC(),
        l1i=InstructionCache(),
        shared_history=shared_history,
        record_history=record_history,
    )
    btb = BTB_REGISTRY.get(spec.btb)(context, **dict(spec.btb_params))
    prefetcher = PREFETCHER_REGISTRY.get(spec.prefetcher)(
        context, **dict(spec.prefetcher_params)
    )

    simulator = FrontendSimulator(
        bpu=BranchPredictionUnit(btb=btb),
        l1i=context.l1i,
        llc=context.llc,
        prefetcher=prefetcher,
        confluence=context.confluence,
        config=frontend_config,
        perfect_l1i=spec.perfect_l1i,
        design_name=spec.name,
    )

    btb_kb = spec.btb_storage_kb
    if btb_kb is None:
        btb_kb = getattr(btb, "storage_kb", 0.0)
    if btb_kb == float("inf"):
        btb_kb = 0.0
    area = AreaModel().report_for(
        design=spec.name,
        btb_storage_kb=btb_kb,
        shift_shared=spec.uses_shift,
    )
    return simulator, area


def build_design(
    name: Union[str, DesignSpec],
    program: SyntheticProgram,
    llc: Optional[SharedLLC] = None,
    shared_history: Optional[ShiftHistory] = None,
    frontend_config: Optional[FrontendConfig] = None,
    record_history: bool = True,
) -> Tuple[FrontendSimulator, FrontendAreaReport]:
    """Instantiate a named design point (or an ad-hoc spec) for one core."""
    return design_from_spec(
        resolve_design(name),
        program,
        llc=llc,
        shared_history=shared_history,
        frontend_config=frontend_config,
        record_history=record_history,
    )
