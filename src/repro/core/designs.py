"""Named frontend design points of the evaluation.

Each design point bundles a BTB design, an instruction prefetcher and the
area accounting the paper attributes to that combination.  The factory
returns a ready-to-run :class:`~repro.core.frontend.FrontendSimulator` plus
its :class:`~repro.core.area.FrontendAreaReport`, so benchmarks, examples and
the CMP driver all assemble design points the same way.

Design points (Sections 2.3, 4.2 and 5):

==================  =====================================  ==================
name                BTB                                    instruction supply
==================  =====================================  ==================
``baseline``        1K-entry conventional + victim buffer  none
``fdp``             1K-entry conventional + victim buffer  FDP
``phantom_fdp``     PhantomBTB                             FDP
``2level_fdp``      two-level (1K + 16K)                   FDP
``phantom_shift``   PhantomBTB                             SHIFT
``2level_shift``    two-level (1K + 16K)                   SHIFT
``idealbtb_shift``  16K-entry, single cycle                SHIFT
``confluence``      AirBTB, synchronized with the L1-I     SHIFT (Confluence)
``ideal``           perfect BTB                            perfect L1-I
==================  =====================================  ==================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.branch.btb_conventional import ConventionalBTB, PerfectBTB
from repro.branch.btb_phantom import PhantomBTB
from repro.branch.btb_two_level import TwoLevelBTB
from repro.branch.unit import BranchPredictionUnit
from repro.caches.l1i import InstructionCache
from repro.caches.llc import SharedLLC
from repro.core.area import AreaModel, FrontendAreaReport
from repro.core.confluence import Confluence, ConfluenceConfig
from repro.core.frontend import FrontendConfig, FrontendSimulator
from repro.prefetch.base import NullPrefetcher
from repro.prefetch.fdp import FetchDirectedPrefetcher
from repro.prefetch.shift import ShiftHistory, ShiftPrefetcher
from repro.workloads.cfg import SyntheticProgram


@dataclass(frozen=True)
class DesignPoint:
    """Descriptor of one named frontend configuration."""

    name: str
    label: str
    btb: str
    prefetcher: str
    uses_shift: bool = False
    perfect_l1i: bool = False
    perfect_btb: bool = False


DESIGN_POINTS: Dict[str, DesignPoint] = {
    point.name: point
    for point in (
        DesignPoint("baseline", "1K BTB (baseline)", "conventional_1k", "none"),
        DesignPoint("fdp", "FDP", "conventional_1k", "fdp"),
        DesignPoint("phantom_fdp", "PhantomBTB+FDP", "phantom", "fdp"),
        DesignPoint("2level_fdp", "2LevelBTB+FDP", "two_level", "fdp"),
        DesignPoint("phantom_shift", "PhantomBTB+SHIFT", "phantom", "shift", uses_shift=True),
        DesignPoint("2level_shift", "2LevelBTB+SHIFT", "two_level", "shift", uses_shift=True),
        DesignPoint(
            "idealbtb_shift", "IdealBTB+SHIFT", "ideal_16k", "shift", uses_shift=True
        ),
        DesignPoint(
            "confluence", "Confluence", "airbtb", "shift", uses_shift=True
        ),
        DesignPoint(
            "ideal", "Ideal", "perfect", "perfect", perfect_l1i=True, perfect_btb=True
        ),
    )
}


def build_design(
    name: str,
    program: SyntheticProgram,
    llc: Optional[SharedLLC] = None,
    shared_history: Optional[ShiftHistory] = None,
    frontend_config: Optional[FrontendConfig] = None,
    record_history: bool = True,
) -> Tuple[FrontendSimulator, FrontendAreaReport]:
    """Instantiate the named design point for one core.

    ``llc`` and ``shared_history`` may be shared across cores (the CMP driver
    does this); when omitted, private instances are created, which models a
    single core of the CMP with its share of the LLC.
    """
    try:
        point = DESIGN_POINTS[name]
    except KeyError:
        known = ", ".join(sorted(DESIGN_POINTS))
        raise KeyError(f"unknown design point {name!r}; known: {known}") from None

    llc = llc if llc is not None else SharedLLC()
    area_model = AreaModel()
    l1i = InstructionCache()
    confluence: Optional[Confluence] = None

    # --- BTB ---------------------------------------------------------------
    if point.btb == "conventional_1k":
        btb = ConventionalBTB(entries=1024, victim_entries=64)
        btb_kb = btb.storage_kb
    elif point.btb == "two_level":
        btb = TwoLevelBTB()
        btb_kb = btb.storage_kb
    elif point.btb == "phantom":
        btb = PhantomBTB(llc=llc)
        btb_kb = btb.storage_kb
    elif point.btb == "ideal_16k":
        btb = ConventionalBTB(entries=16 * 1024, latency_cycles=1, name="ideal_btb_16k")
        btb_kb = btb.storage_kb
    elif point.btb == "perfect":
        btb = PerfectBTB()
        btb_kb = ConventionalBTB(entries=1024, victim_entries=64).storage_kb
    elif point.btb == "airbtb":
        confluence = Confluence(
            image=program.image,
            l1i=l1i,
            shared_history=shared_history,
            llc=llc,
            record_history=record_history,
        )
        btb = confluence.airbtb
        btb_kb = confluence.storage_kb
    else:  # pragma: no cover - defensive
        raise ValueError(f"unhandled BTB kind {point.btb}")

    # --- prefetcher ---------------------------------------------------------
    if point.prefetcher == "none" or point.prefetcher == "perfect":
        prefetcher = NullPrefetcher()
    elif point.prefetcher == "fdp":
        prefetcher = FetchDirectedPrefetcher()
    elif point.prefetcher == "shift":
        if confluence is not None:
            prefetcher = confluence.prefetcher
        else:
            history = shared_history or ShiftHistory(llc=llc)
            prefetcher = ShiftPrefetcher(history, record_history=record_history)
    else:  # pragma: no cover - defensive
        raise ValueError(f"unhandled prefetcher kind {point.prefetcher}")

    bpu = BranchPredictionUnit(btb=btb)
    simulator = FrontendSimulator(
        bpu=bpu,
        l1i=l1i,
        llc=llc,
        prefetcher=prefetcher,
        confluence=confluence,
        config=frontend_config,
        perfect_l1i=point.perfect_l1i,
        design_name=point.name,
    )

    area = area_model.report_for(
        design=point.name,
        btb_storage_kb=btb_kb if btb_kb != float("inf") else 0.0,
        shift_shared=point.uses_shift,
    )
    return simulator, area
