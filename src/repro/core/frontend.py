"""Trace-driven frontend timing model.

The model walks a fetch-region trace through a branch prediction unit, an
L1-I, an optional instruction prefetcher and an optional Confluence instance,
charging stall cycles for the events that differentiate the paper's design
points:

* **misfetches** — a taken branch whose target the BTB could not supply is
  discovered in the first decode stage, costing the misfetch penalty
  (4 cycles for the modelled 3-fetch-stage core),
* **second-level BTB bubbles** — hierarchical BTBs (two-level, PhantomBTB)
  serve first-level misses from a slower structure, exposing its latency,
* **L1-I miss stalls** — a fetch that misses waits for the LLC round trip,
  minus however much of that latency an earlier prefetch already hid,
* **direction mispredictions** — identical across design points but modelled
  for realism of the absolute numbers.

Cycle accounting is additive on top of a base CPI that folds together the
core's issue width and all non-frontend stalls; the paper's relative numbers
come from the frontend terms, which is what this model reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING, Union

from repro.branch.unit import BranchPredictionUnit
from repro.caches.l1i import InstructionCache
from repro.caches.llc import SharedLLC
from repro.core.confluence import Confluence
from repro.core.metrics import mpki
from repro.prefetch.base import InstructionPrefetcher, NullPrefetcher
from repro.workloads.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.backends.base import SimBackend


@dataclass(frozen=True)
class FrontendConfig:
    """Timing parameters of the modelled core (Table 1 and Section 4.1)."""

    base_cpi: float = 1.0
    misfetch_penalty_cycles: int = 4
    direction_mispredict_penalty_cycles: int = 12
    fetch_queue_basic_blocks: int = 6
    warmup_fraction: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        if self.base_cpi <= 0:
            raise ValueError("base_cpi must be positive")


@dataclass
class FrontendResult:
    """Measured portion of one frontend simulation."""

    design: str
    workload: str
    instructions: int = 0
    fetch_regions: int = 0
    base_cycles: float = 0.0
    misfetch_stall_cycles: int = 0
    btb_latency_stall_cycles: int = 0
    l1i_stall_cycles: int = 0
    direction_stall_cycles: int = 0
    misfetches: int = 0
    btb_taken_lookups: int = 0
    btb_taken_misses: int = 0
    second_level_accesses: int = 0
    l1i_accesses: int = 0
    l1i_misses: int = 0
    l1i_prefetch_hits: int = 0
    direction_mispredictions: int = 0
    prefetches_issued: int = 0

    @property
    def stall_cycles(self) -> int:
        return (
            self.misfetch_stall_cycles
            + self.btb_latency_stall_cycles
            + self.l1i_stall_cycles
            + self.direction_stall_cycles
        )

    @property
    def cycles(self) -> float:
        return self.base_cycles + self.stall_cycles

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def btb_mpki(self) -> float:
        # metrics.mpki raises on a zero instruction count: a result that
        # measured nothing must fail loudly, not read as miss-free.
        return mpki(self.btb_taken_misses, self.instructions)

    @property
    def l1i_mpki(self) -> float:
        return mpki(self.l1i_misses, self.instructions)

    def speedup_over(self, baseline: "FrontendResult") -> float:
        """Performance (IPC) relative to ``baseline``.

        A zero-IPC operand means one of the results measured nothing; that
        must fail loudly (like ``mpki``/``miss_coverage``), not read as a
        0x "slowdown".
        """
        if self.ipc == 0 or baseline.ipc == 0:
            raise ValueError(
                "speedup_over is undefined when either result has zero IPC "
                f"(self.ipc={self.ipc}, baseline.ipc={baseline.ipc})"
            )
        return self.ipc / baseline.ipc


class FrontendSimulator:
    """Runs one core's fetch-region trace through a frontend design point."""

    def __init__(
        self,
        bpu: BranchPredictionUnit,
        l1i: Optional[InstructionCache] = None,
        llc: Optional[SharedLLC] = None,
        prefetcher: Optional[InstructionPrefetcher] = None,
        confluence: Optional[Confluence] = None,
        config: Optional[FrontendConfig] = None,
        perfect_l1i: bool = False,
        design_name: str = "frontend",
        backend: Union[str, "SimBackend", None] = None,
    ) -> None:
        self.bpu = bpu
        # Note: "l1i or InstructionCache()" would silently replace an *empty*
        # cache (len() == 0 is falsy) — always compare against None.
        self.l1i = l1i if l1i is not None else InstructionCache()
        self.llc = llc if llc is not None else SharedLLC()
        self.prefetcher = prefetcher if prefetcher is not None else NullPrefetcher()
        self.confluence = confluence
        self.config = config or FrontendConfig()
        self.perfect_l1i = perfect_l1i
        self.design_name = design_name
        #: Default simulation backend for :meth:`run` — a registry name, a
        #: ready :class:`~repro.backends.base.SimBackend`, or ``None`` for
        #: the stack-wide default (``scalar``).
        self.backend = backend
        #: Prefetched blocks still in flight: block address -> ready cycle.
        self._inflight: Dict[int, float] = {}
        self._cycle: float = 0.0

    # ------------------------------------------------------------------ #
    # Simulation loop
    # ------------------------------------------------------------------ #

    def run(
        self,
        trace: Trace,
        warmup_fraction: Optional[float] = None,
        backend: Union[str, "SimBackend", None] = None,
    ) -> FrontendResult:
        """Simulate ``trace``; statistics cover the post-warmup portion.

        The simulation loop itself lives in :mod:`repro.backends`; ``backend``
        selects it — a registry name, a ready
        :class:`~repro.backends.base.SimBackend`, or ``None`` to use the
        simulator's configured backend (itself defaulting to ``scalar``, the
        zero-allocation columnar loop).  Every registered backend produces
        bit-identical results — the parity suite in
        ``tests/test_frontend_parity.py`` pins each one against the
        ``reference`` oracle.

        Raises :class:`ValueError` when the selected backend cannot consume
        the trace's form (e.g. the ``scalar`` backend on a trace-like object
        with no ``.packed`` columnar view).  There is deliberately no silent
        fallback to another backend: a sweep that quietly ran 40x slower —
        or a benchmark that quietly measured the wrong loop — is worse than
        an error.
        """
        from repro.backends.base import resolve_backend

        warmup = warmup_fraction if warmup_fraction is not None else self.config.warmup_fraction
        impl = resolve_backend(backend if backend is not None else self.backend)
        if not impl.consumes(trace):
            raise ValueError(
                f"backend {impl.name!r} cannot consume trace {trace.name!r}: "
                f"it requires the {impl.trace_form} trace form, which this "
                "trace does not provide; pick a backend that matches the "
                "trace (see repro.backends.backend_names())"
            )
        return impl.run(self, trace, warmup)

    def _finalize(self, result: FrontendResult) -> None:
        # Repeated run() calls start clean: drop stale in-flight entries AND
        # rewind the cycle counter (caches and predictors stay warm — reuse
        # models a core moving to the next trace, not a cold restart).
        self._inflight.clear()
        self._cycle = 0.0
