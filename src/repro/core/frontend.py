"""Trace-driven frontend timing model.

The model walks a fetch-region trace through a branch prediction unit, an
L1-I, an optional instruction prefetcher and an optional Confluence instance,
charging stall cycles for the events that differentiate the paper's design
points:

* **misfetches** — a taken branch whose target the BTB could not supply is
  discovered in the first decode stage, costing the misfetch penalty
  (4 cycles for the modelled 3-fetch-stage core),
* **second-level BTB bubbles** — hierarchical BTBs (two-level, PhantomBTB)
  serve first-level misses from a slower structure, exposing its latency,
* **L1-I miss stalls** — a fetch that misses waits for the LLC round trip,
  minus however much of that latency an earlier prefetch already hid,
* **direction mispredictions** — identical across design points but modelled
  for realism of the absolute numbers.

Cycle accounting is additive on top of a base CPI that folds together the
core's issue width and all non-frontend stalls; the paper's relative numbers
come from the frontend terms, which is what this model reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence

from repro.branch.unit import BranchPredictionUnit
from repro.caches.l1i import InstructionCache
from repro.caches.llc import SharedLLC
from repro.core.confluence import Confluence
from repro.core.metrics import mpki
from repro.prefetch.base import InstructionPrefetcher, NullPrefetcher, PrefetchContext
from repro.workloads.trace import FetchRecord, Trace


@dataclass(frozen=True)
class FrontendConfig:
    """Timing parameters of the modelled core (Table 1 and Section 4.1)."""

    base_cpi: float = 1.0
    misfetch_penalty_cycles: int = 4
    direction_mispredict_penalty_cycles: int = 12
    fetch_queue_basic_blocks: int = 6
    warmup_fraction: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        if self.base_cpi <= 0:
            raise ValueError("base_cpi must be positive")


@dataclass
class FrontendResult:
    """Measured portion of one frontend simulation."""

    design: str
    workload: str
    instructions: int = 0
    fetch_regions: int = 0
    base_cycles: float = 0.0
    misfetch_stall_cycles: int = 0
    btb_latency_stall_cycles: int = 0
    l1i_stall_cycles: int = 0
    direction_stall_cycles: int = 0
    misfetches: int = 0
    btb_taken_lookups: int = 0
    btb_taken_misses: int = 0
    second_level_accesses: int = 0
    l1i_accesses: int = 0
    l1i_misses: int = 0
    l1i_prefetch_hits: int = 0
    direction_mispredictions: int = 0
    prefetches_issued: int = 0

    @property
    def stall_cycles(self) -> int:
        return (
            self.misfetch_stall_cycles
            + self.btb_latency_stall_cycles
            + self.l1i_stall_cycles
            + self.direction_stall_cycles
        )

    @property
    def cycles(self) -> float:
        return self.base_cycles + self.stall_cycles

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def btb_mpki(self) -> float:
        # metrics.mpki raises on a zero instruction count: a result that
        # measured nothing must fail loudly, not read as miss-free.
        return mpki(self.btb_taken_misses, self.instructions)

    @property
    def l1i_mpki(self) -> float:
        return mpki(self.l1i_misses, self.instructions)

    def speedup_over(self, baseline: "FrontendResult") -> float:
        """Performance (IPC) relative to ``baseline``."""
        if self.ipc == 0 or baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc


class FrontendSimulator:
    """Runs one core's fetch-region trace through a frontend design point."""

    def __init__(
        self,
        bpu: BranchPredictionUnit,
        l1i: Optional[InstructionCache] = None,
        llc: Optional[SharedLLC] = None,
        prefetcher: Optional[InstructionPrefetcher] = None,
        confluence: Optional[Confluence] = None,
        config: Optional[FrontendConfig] = None,
        perfect_l1i: bool = False,
        design_name: str = "frontend",
    ) -> None:
        self.bpu = bpu
        # Note: "l1i or InstructionCache()" would silently replace an *empty*
        # cache (len() == 0 is falsy) — always compare against None.
        self.l1i = l1i if l1i is not None else InstructionCache()
        self.llc = llc if llc is not None else SharedLLC()
        self.prefetcher = prefetcher if prefetcher is not None else NullPrefetcher()
        self.confluence = confluence
        self.config = config or FrontendConfig()
        self.perfect_l1i = perfect_l1i
        self.design_name = design_name
        #: Prefetched blocks still in flight: block address -> ready cycle.
        self._inflight: Dict[int, float] = {}
        self._cycle: float = 0.0

    # ------------------------------------------------------------------ #
    # Simulation loop
    # ------------------------------------------------------------------ #

    def run(self, trace: Trace, warmup_fraction: Optional[float] = None) -> FrontendResult:
        """Simulate ``trace``; statistics cover the post-warmup portion."""
        records = trace.records
        warmup = warmup_fraction if warmup_fraction is not None else self.config.warmup_fraction
        warmup_boundary = int(len(records) * warmup)
        result = FrontendResult(design=self.design_name, workload=trace.name)
        llc_latency = self.llc.round_trip_latency_cycles

        for index, record in enumerate(records):
            measured = index >= warmup_boundary
            self._simulate_region(records, index, record, llc_latency, result, measured)

        self._finalize(result)
        return result

    def _simulate_region(
        self,
        records: Sequence[FetchRecord],
        index: int,
        record: FetchRecord,
        llc_latency: int,
        result: FrontendResult,
        measured: bool,
    ) -> None:
        config = self.config
        cycle_start = self._cycle

        # --- branch prediction -------------------------------------------------
        prediction = self.bpu.predict(record)
        btb_result = prediction.btb_result
        btb_bubble = 0
        if btb_result.hit and btb_result.latency_cycles > 1:
            btb_bubble = btb_result.latency_cycles - 1
        # Misfetches (BTB could not supply a predicted-taken target; caught at
        # decode) and direction mispredictions (wrong steer; caught at
        # execute) are disjoint by construction: a misfetch requires the
        # direction prediction to be correct.
        misfetch = prediction.misfetch
        direction_miss = (
            not prediction.direction_correct and record.branch_pc is not None
        )

        # --- instruction fetch -------------------------------------------------
        fetch_stall = 0
        demand_miss_block: Optional[int] = None
        prefetch_hits = 0
        misses = 0
        accesses = 0
        for block in record.blocks():
            accesses += 1
            if self.perfect_l1i:
                continue
            if self.l1i.access(block):
                ready = self._inflight.pop(block, None)
                if ready is not None:
                    # The block was installed by a prefetch that is still in
                    # flight; only the remaining latency (if any) is exposed.
                    remaining = max(0.0, ready - self._cycle)
                    max_lead = self.prefetcher.max_lead_cycles
                    if max_lead is not None:
                        # Prefetchers with bounded lookahead (FDP) can hide at
                        # most ``max_lead`` cycles of the round trip.
                        remaining = max(remaining, llc_latency - max_lead)
                    fetch_stall += int(round(remaining))
                    prefetch_hits += 1
                continue
            misses += 1
            demand_miss_block = block if demand_miss_block is None else demand_miss_block
            stall = llc_latency
            if self.confluence is not None:
                stall += self.confluence.demand_fill_penalty_cycles
            fetch_stall += stall
            self.llc.fetch_instruction_block(block)
            self.l1i.fill(block, demand=True)

        # --- cycle accounting --------------------------------------------------
        self._cycle += record.instruction_count * config.base_cpi
        if misfetch:
            self._cycle += config.misfetch_penalty_cycles
        if direction_miss:
            self._cycle += config.direction_mispredict_penalty_cycles
        self._cycle += btb_bubble + fetch_stall

        # --- prefetching -------------------------------------------------------
        context = PrefetchContext(
            records=records,
            index=index,
            cycle=self._cycle,
            l1i=self.l1i,
            bpu=self.bpu,
            demand_miss_block=demand_miss_block,
        )
        issued = 0
        for target in self.prefetcher.prefetch_targets(context):
            if self.perfect_l1i:
                break
            if self.l1i.contains(target) or target in self._inflight:
                continue
            # The block (and, under Confluence, its predecoded branch entries)
            # is installed now; its *use* before the LLC round trip completes
            # still pays the remaining latency through the in-flight table.
            self._inflight[target] = self._cycle + llc_latency
            self.llc.fetch_instruction_block(target)
            self.l1i.fill(target, demand=False)
            issued += 1

        # --- resolution / training ---------------------------------------------
        self.bpu.resolve(record)

        if not measured:
            return
        result.instructions += record.instruction_count
        result.fetch_regions += 1
        result.base_cycles += record.instruction_count * config.base_cpi
        result.misfetch_stall_cycles += config.misfetch_penalty_cycles if misfetch else 0
        result.direction_stall_cycles += (
            config.direction_mispredict_penalty_cycles if direction_miss else 0
        )
        result.btb_latency_stall_cycles += btb_bubble
        result.l1i_stall_cycles += fetch_stall
        result.misfetches += int(misfetch)
        if record.is_taken_branch:
            result.btb_taken_lookups += 1
            if not btb_result.hit:
                result.btb_taken_misses += 1
        if btb_result.level in ("l2",):
            result.second_level_accesses += 1
        result.l1i_accesses += accesses
        result.l1i_misses += misses
        result.l1i_prefetch_hits += prefetch_hits
        result.direction_mispredictions += int(not prediction.direction_correct)
        result.prefetches_issued += issued

    def _finalize(self, result: FrontendResult) -> None:
        # Repeated run() calls start clean: drop stale in-flight entries AND
        # rewind the cycle counter (caches and predictors stay warm — reuse
        # models a core moving to the next trace, not a cold restart).
        self._inflight.clear()
        self._cycle = 0.0
