"""Trace-driven frontend timing model.

The model walks a fetch-region trace through a branch prediction unit, an
L1-I, an optional instruction prefetcher and an optional Confluence instance,
charging stall cycles for the events that differentiate the paper's design
points:

* **misfetches** — a taken branch whose target the BTB could not supply is
  discovered in the first decode stage, costing the misfetch penalty
  (4 cycles for the modelled 3-fetch-stage core),
* **second-level BTB bubbles** — hierarchical BTBs (two-level, PhantomBTB)
  serve first-level misses from a slower structure, exposing its latency,
* **L1-I miss stalls** — a fetch that misses waits for the LLC round trip,
  minus however much of that latency an earlier prefetch already hid,
* **direction mispredictions** — identical across design points but modelled
  for realism of the absolute numbers.

Cycle accounting is additive on top of a base CPI that folds together the
core's issue width and all non-frontend stalls; the paper's relative numbers
come from the frontend terms, which is what this model reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.branch.unit import BranchPredictionUnit, PredictionSlot
from repro.caches.l1i import InstructionCache
from repro.caches.llc import SharedLLC
from repro.core.confluence import Confluence
from repro.core.metrics import mpki
from repro.isa.instruction import (
    BLOCK_SIZE_BYTES,
    INSTRUCTION_SIZE_BYTES,
)
from repro.prefetch.base import InstructionPrefetcher, NullPrefetcher, PrefetchContext
from repro.staticcheck.markers import hot_loop
from repro.workloads.packed import KIND_CODES, NO_VALUE
from repro.workloads.trace import FetchRecord, Trace


@dataclass(frozen=True)
class FrontendConfig:
    """Timing parameters of the modelled core (Table 1 and Section 4.1)."""

    base_cpi: float = 1.0
    misfetch_penalty_cycles: int = 4
    direction_mispredict_penalty_cycles: int = 12
    fetch_queue_basic_blocks: int = 6
    warmup_fraction: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        if self.base_cpi <= 0:
            raise ValueError("base_cpi must be positive")


@dataclass
class FrontendResult:
    """Measured portion of one frontend simulation."""

    design: str
    workload: str
    instructions: int = 0
    fetch_regions: int = 0
    base_cycles: float = 0.0
    misfetch_stall_cycles: int = 0
    btb_latency_stall_cycles: int = 0
    l1i_stall_cycles: int = 0
    direction_stall_cycles: int = 0
    misfetches: int = 0
    btb_taken_lookups: int = 0
    btb_taken_misses: int = 0
    second_level_accesses: int = 0
    l1i_accesses: int = 0
    l1i_misses: int = 0
    l1i_prefetch_hits: int = 0
    direction_mispredictions: int = 0
    prefetches_issued: int = 0

    @property
    def stall_cycles(self) -> int:
        return (
            self.misfetch_stall_cycles
            + self.btb_latency_stall_cycles
            + self.l1i_stall_cycles
            + self.direction_stall_cycles
        )

    @property
    def cycles(self) -> float:
        return self.base_cycles + self.stall_cycles

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def btb_mpki(self) -> float:
        # metrics.mpki raises on a zero instruction count: a result that
        # measured nothing must fail loudly, not read as miss-free.
        return mpki(self.btb_taken_misses, self.instructions)

    @property
    def l1i_mpki(self) -> float:
        return mpki(self.l1i_misses, self.instructions)

    def speedup_over(self, baseline: "FrontendResult") -> float:
        """Performance (IPC) relative to ``baseline``.

        A zero-IPC operand means one of the results measured nothing; that
        must fail loudly (like ``mpki``/``miss_coverage``), not read as a
        0x "slowdown".
        """
        if self.ipc == 0 or baseline.ipc == 0:
            raise ValueError(
                "speedup_over is undefined when either result has zero IPC "
                f"(self.ipc={self.ipc}, baseline.ipc={baseline.ipc})"
            )
        return self.ipc / baseline.ipc


class FrontendSimulator:
    """Runs one core's fetch-region trace through a frontend design point."""

    def __init__(
        self,
        bpu: BranchPredictionUnit,
        l1i: Optional[InstructionCache] = None,
        llc: Optional[SharedLLC] = None,
        prefetcher: Optional[InstructionPrefetcher] = None,
        confluence: Optional[Confluence] = None,
        config: Optional[FrontendConfig] = None,
        perfect_l1i: bool = False,
        design_name: str = "frontend",
    ) -> None:
        self.bpu = bpu
        # Note: "l1i or InstructionCache()" would silently replace an *empty*
        # cache (len() == 0 is falsy) — always compare against None.
        self.l1i = l1i if l1i is not None else InstructionCache()
        self.llc = llc if llc is not None else SharedLLC()
        self.prefetcher = prefetcher if prefetcher is not None else NullPrefetcher()
        self.confluence = confluence
        self.config = config or FrontendConfig()
        self.perfect_l1i = perfect_l1i
        self.design_name = design_name
        #: Prefetched blocks still in flight: block address -> ready cycle.
        self._inflight: Dict[int, float] = {}
        self._cycle: float = 0.0

    # ------------------------------------------------------------------ #
    # Simulation loop
    # ------------------------------------------------------------------ #

    def run(
        self,
        trace: Trace,
        warmup_fraction: Optional[float] = None,
        use_packed: bool = True,
    ) -> FrontendResult:
        """Simulate ``trace``; statistics cover the post-warmup portion.

        When the trace carries its columnar form (every :class:`Trace` does),
        the packed fast path walks the columns directly; ``use_packed=False``
        forces the record-view path.  Both produce bit-identical results —
        the parity test in ``tests/test_frontend_parity.py`` pins this.
        """
        warmup = warmup_fraction if warmup_fraction is not None else self.config.warmup_fraction
        if use_packed and getattr(trace, "packed", None) is not None:
            return self._run_packed(trace, warmup)
        records = trace.records
        warmup_boundary = int(len(records) * warmup)
        result = FrontendResult(design=self.design_name, workload=trace.name)
        llc_latency = self.llc.round_trip_latency_cycles

        for index, record in enumerate(records):
            measured = index >= warmup_boundary
            self._simulate_region(records, index, record, llc_latency, result, measured)

        self._finalize(result)
        return result

    @hot_loop
    def _run_packed(self, trace: Trace, warmup: float) -> FrontendResult:
        """Columnar fast loop: one pass over the packed arrays, no records.

        This mirrors :meth:`_simulate_region` operation for operation — same
        component calls, same accumulation order — so the results are
        bit-identical; only the Python-level record/attribute overhead is
        gone.  The loop is also *allocation-free*: one reusable
        :class:`~repro.branch.unit.PredictionSlot` receives every region's
        prediction (no ``BranchPrediction``/``BTBLookupResult`` objects on
        BTBs that override ``lookup_into``), a single
        :class:`~repro.prefetch.base.PrefetchContext` is mutated per
        iteration instead of constructed, and designs with no prefetcher
        (plain :class:`~repro.prefetch.base.NullPrefetcher`) or a perfect
        L1-I skip the corresponding machinery entirely.
        """
        packed = trace.packed
        records = trace.records  # lazy view, handed to custom prefetchers
        total = len(packed)
        warmup_boundary = int(total * warmup)
        result = FrontendResult(design=self.design_name, workload=trace.name)

        config = self.config
        base_cpi = config.base_cpi
        misfetch_penalty = config.misfetch_penalty_cycles
        direction_penalty = config.direction_mispredict_penalty_cycles
        llc_latency = self.llc.round_trip_latency_cycles
        demand_penalty = (
            self.confluence.demand_fill_penalty_cycles
            if self.confluence is not None
            else 0
        )
        perfect = self.perfect_l1i
        bpu = self.bpu
        predict_into = bpu.predict_region_into
        resolve = bpu.resolve_region
        l1i = self.l1i
        l1i_access = l1i.access
        l1i_fill = l1i.fill
        l1i_contains = l1i.contains
        llc_fetch = self.llc.fetch_instruction_block
        prefetcher = self.prefetcher
        prefetch_targets = prefetcher.prefetch_targets
        max_lead = prefetcher.max_lead_cycles
        inflight = self._inflight
        cycle = self._cycle

        # The one prediction scratch the whole loop writes into, and — for
        # designs that prefetch at all — the one context the prefetcher sees
        # (index/cycle/demand_miss_block are rewritten per iteration).  A
        # plain NullPrefetcher never observes anything, so its designs skip
        # the context and the target loop altogether (a subclass overriding
        # ``prefetch_targets`` still gets called).
        slot = PredictionSlot()
        null_prefetch = type(prefetcher) is NullPrefetcher
        context = None if null_prefetch else PrefetchContext(
            records=records,
            index=0,
            cycle=0,
            l1i=l1i,
            bpu=bpu,
            demand_miss_block=None,
            packed=packed,
        )

        starts = packed.starts
        instruction_counts = packed.instruction_counts
        branch_pcs = packed.branch_pcs
        kinds = packed.kinds
        takens = packed.takens
        target_col = packed.targets
        next_pcs = packed.next_pcs
        block_firsts = packed.block_firsts
        block_counts = packed.block_counts
        block_size = BLOCK_SIZE_BYTES
        instruction_size = INSTRUCTION_SIZE_BYTES
        kind_table = KIND_CODES

        for index in range(total):
            count = instruction_counts[index]
            raw_branch_pc = branch_pcs[index]
            taken = bool(takens[index])
            next_pc = next_pcs[index]
            if raw_branch_pc == NO_VALUE:
                branch_pc = None
                kind = None
                fallthrough = starts[index] + count * instruction_size
            else:
                branch_pc = raw_branch_pc
                # A branch may still carry no kind (records are permitted to);
                # the -1 sentinel must decode to None, never wrap the table.
                code = kinds[index]
                kind = kind_table[code] if code >= 0 else None
                fallthrough = raw_branch_pc + instruction_size

            # --- branch prediction ------------------------------------------
            predict_into(slot, branch_pc, kind, taken, next_pc, fallthrough)
            btb_bubble = 0
            if slot.btb_hit and slot.btb_latency_cycles > 1:
                btb_bubble = slot.btb_latency_cycles - 1
            misfetch = slot.misfetch
            direction_miss = not slot.direction_correct and branch_pc is not None

            # --- instruction fetch ------------------------------------------
            fetch_stall = 0
            demand_miss_block: Optional[int] = None
            prefetch_hits = 0
            misses = 0
            accesses = block_counts[index]
            if not perfect:
                first = block_firsts[index]
                stop = first + accesses * block_size
                for block in range(first, stop, block_size):
                    if l1i_access(block):
                        if inflight:
                            ready = inflight.pop(block, None)
                            if ready is not None:
                                remaining = max(0.0, ready - cycle)
                                if max_lead is not None:
                                    remaining = max(remaining, llc_latency - max_lead)
                                fetch_stall += int(round(remaining))
                                prefetch_hits += 1
                        continue
                    misses += 1
                    demand_miss_block = block if demand_miss_block is None else demand_miss_block
                    fetch_stall += llc_latency + demand_penalty
                    llc_fetch(block)
                    l1i_fill(block, demand=True)

            # --- cycle accounting -------------------------------------------
            cycle += count * base_cpi
            if misfetch:
                cycle += misfetch_penalty
            if direction_miss:
                cycle += direction_penalty
            cycle += btb_bubble + fetch_stall

            # --- prefetching ------------------------------------------------
            issued = 0
            if not null_prefetch:
                context.index = index
                context.cycle = cycle
                context.demand_miss_block = demand_miss_block
                for target in prefetch_targets(context):
                    if perfect:
                        break
                    if l1i_contains(target) or target in inflight:
                        continue
                    inflight[target] = cycle + llc_latency
                    llc_fetch(target)
                    l1i_fill(target, demand=False)
                    issued += 1

            # --- resolution / training --------------------------------------
            raw_target = target_col[index]
            resolve(
                branch_pc,
                kind,
                taken,
                raw_target if raw_target != NO_VALUE else None,
                next_pc,
                fallthrough,
            )

            if index < warmup_boundary:
                continue
            result.instructions += count
            result.fetch_regions += 1
            result.base_cycles += count * base_cpi
            result.misfetch_stall_cycles += misfetch_penalty if misfetch else 0
            result.direction_stall_cycles += direction_penalty if direction_miss else 0
            result.btb_latency_stall_cycles += btb_bubble
            result.l1i_stall_cycles += fetch_stall
            result.misfetches += int(misfetch)
            if branch_pc is not None and taken:
                result.btb_taken_lookups += 1
                if not slot.btb_hit:
                    result.btb_taken_misses += 1
            if slot.btb_level in ("l2",):
                result.second_level_accesses += 1
            result.l1i_accesses += accesses
            result.l1i_misses += misses
            result.l1i_prefetch_hits += prefetch_hits
            # Counted with the same guarded predicate the stall charge uses:
            # a branchless region can never report a direction misprediction.
            result.direction_mispredictions += int(direction_miss)
            result.prefetches_issued += issued

        self._cycle = cycle
        self._finalize(result)
        return result

    def _simulate_region(
        self,
        records: Sequence[FetchRecord],
        index: int,
        record: FetchRecord,
        llc_latency: int,
        result: FrontendResult,
        measured: bool,
    ) -> None:
        config = self.config
        cycle_start = self._cycle

        # --- branch prediction -------------------------------------------------
        prediction = self.bpu.predict(record)
        btb_result = prediction.btb_result
        btb_bubble = 0
        if btb_result.hit and btb_result.latency_cycles > 1:
            btb_bubble = btb_result.latency_cycles - 1
        # Misfetches (BTB could not supply a predicted-taken target; caught at
        # decode) and direction mispredictions (wrong steer; caught at
        # execute) are disjoint by construction: a misfetch requires the
        # direction prediction to be correct.
        misfetch = prediction.misfetch
        direction_miss = (
            not prediction.direction_correct and record.branch_pc is not None
        )

        # --- instruction fetch -------------------------------------------------
        fetch_stall = 0
        demand_miss_block: Optional[int] = None
        prefetch_hits = 0
        misses = 0
        accesses = 0
        for block in record.blocks():
            accesses += 1
            if self.perfect_l1i:
                continue
            if self.l1i.access(block):
                ready = self._inflight.pop(block, None)
                if ready is not None:
                    # The block was installed by a prefetch that is still in
                    # flight; only the remaining latency (if any) is exposed.
                    remaining = max(0.0, ready - self._cycle)
                    max_lead = self.prefetcher.max_lead_cycles
                    if max_lead is not None:
                        # Prefetchers with bounded lookahead (FDP) can hide at
                        # most ``max_lead`` cycles of the round trip.
                        remaining = max(remaining, llc_latency - max_lead)
                    fetch_stall += int(round(remaining))
                    prefetch_hits += 1
                continue
            misses += 1
            demand_miss_block = block if demand_miss_block is None else demand_miss_block
            stall = llc_latency
            if self.confluence is not None:
                stall += self.confluence.demand_fill_penalty_cycles
            fetch_stall += stall
            self.llc.fetch_instruction_block(block)
            self.l1i.fill(block, demand=True)

        # --- cycle accounting --------------------------------------------------
        self._cycle += record.instruction_count * config.base_cpi
        if misfetch:
            self._cycle += config.misfetch_penalty_cycles
        if direction_miss:
            self._cycle += config.direction_mispredict_penalty_cycles
        self._cycle += btb_bubble + fetch_stall

        # --- prefetching -------------------------------------------------------
        context = PrefetchContext(
            records=records,
            index=index,
            cycle=self._cycle,
            l1i=self.l1i,
            bpu=self.bpu,
            demand_miss_block=demand_miss_block,
        )
        issued = 0
        for target in self.prefetcher.prefetch_targets(context):
            if self.perfect_l1i:
                break
            if self.l1i.contains(target) or target in self._inflight:
                continue
            # The block (and, under Confluence, its predecoded branch entries)
            # is installed now; its *use* before the LLC round trip completes
            # still pays the remaining latency through the in-flight table.
            self._inflight[target] = self._cycle + llc_latency
            self.llc.fetch_instruction_block(target)
            self.l1i.fill(target, demand=False)
            issued += 1

        # --- resolution / training ---------------------------------------------
        self.bpu.resolve(record)

        if not measured:
            return
        result.instructions += record.instruction_count
        result.fetch_regions += 1
        result.base_cycles += record.instruction_count * config.base_cpi
        result.misfetch_stall_cycles += config.misfetch_penalty_cycles if misfetch else 0
        result.direction_stall_cycles += (
            config.direction_mispredict_penalty_cycles if direction_miss else 0
        )
        result.btb_latency_stall_cycles += btb_bubble
        result.l1i_stall_cycles += fetch_stall
        result.misfetches += int(misfetch)
        if record.is_taken_branch:
            result.btb_taken_lookups += 1
            if not btb_result.hit:
                result.btb_taken_misses += 1
        if btb_result.level in ("l2",):
            result.second_level_accesses += 1
        result.l1i_accesses += accesses
        result.l1i_misses += misses
        result.l1i_prefetch_hits += prefetch_hits
        # Same guarded predicate as the stall charge above: a region without
        # a branch cannot be a direction misprediction, whatever the
        # prediction object's unguarded flag says.
        result.direction_mispredictions += int(direction_miss)
        result.prefetches_issued += issued

    def _finalize(self, result: FrontendResult) -> None:
        # Repeated run() calls start clean: drop stale in-flight entries AND
        # rewind the cycle counter (caches and predictors stay warm — reuse
        # models a core moving to the next trace, not a cold restart).
        self._inflight.clear()
        self._cycle = 0.0
