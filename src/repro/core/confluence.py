"""Confluence: unified instruction supply (Section 3).

Confluence ties three pieces together:

1. the SHIFT stream prefetcher, which runs ahead of the core's fetch stream
   and decides which instruction blocks to bring into the L1-I,
2. a hardware predecoder, which scans each arriving block for branches, and
3. AirBTB, which receives the predecoded branch entries of every block the
   L1-I receives and drops them when the block is evicted.

The result is a single set of control-flow metadata — SHIFT's block-grain
history, shared by all cores and virtualized in the LLC — that fills both the
L1-I and the BTB ahead of the fetch stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.caches.l1i import InstructionCache
from repro.caches.llc import SharedLLC
from repro.core.airbtb import AirBTB, AirBTBConfig
from repro.isa.block import ProgramImage
from repro.isa.predecode import Predecoder
from repro.prefetch.shift import ShiftConfig, ShiftHistory, ShiftPrefetcher
from repro.registry import BTB_REGISTRY, BuildContext


@dataclass(frozen=True)
class ConfluenceConfig:
    """Configuration of a Confluence frontend instance."""

    airbtb: AirBTBConfig = AirBTBConfig()
    shift: ShiftConfig = ShiftConfig()
    predecode_latency_cycles: int = 2


class Confluence:
    """Wires the L1-I, AirBTB, predecoder and SHIFT into one frontend.

    The instance registers itself as a fill listener on the L1-I: every block
    installed there (by SHIFT or on demand) is predecoded and mirrored into
    AirBTB; every eviction removes the corresponding bundle.
    """

    def __init__(
        self,
        image: ProgramImage,
        l1i: InstructionCache,
        shared_history: Optional[ShiftHistory] = None,
        llc: Optional[SharedLLC] = None,
        config: Optional[ConfluenceConfig] = None,
        record_history: bool = True,
    ) -> None:
        self.config = config or ConfluenceConfig()
        self.image = image
        self.l1i = l1i
        self.predecoder = Predecoder(latency_cycles=self.config.predecode_latency_cycles)
        self.airbtb = AirBTB(
            config=self.config.airbtb,
            block_provider=image.block_at,
            predecoder=self.predecoder,
        )
        self.airbtb.synchronized = True
        self.history = shared_history or ShiftHistory(self.config.shift, llc=llc)
        self.prefetcher = ShiftPrefetcher(
            self.history, record_history=record_history, config=self.config.shift
        )
        self.demand_predecodes = 0
        self.prefetch_predecodes = 0
        l1i.add_listener(self)

    # ------------------------------------------------------------------ #
    # L1-I fill listener interface
    # ------------------------------------------------------------------ #

    def on_block_fill(self, block_addr: int, demand: bool) -> None:
        """Predecode an arriving block and insert its branches into AirBTB."""
        block = self.image.block_at(block_addr)
        if block is None:
            return
        predecoded = self.predecoder.predecode(block)
        if demand:
            self.demand_predecodes += 1
        else:
            self.prefetch_predecodes += 1
        self.airbtb.on_block_fill(predecoded, demand=demand)

    def on_block_evict(self, block_addr: int) -> None:
        """Keep AirBTB's content identical to the L1-I's."""
        self.airbtb.on_block_evict(block_addr)

    # ------------------------------------------------------------------ #
    # Convenience accessors used by the frontend simulator and benches
    # ------------------------------------------------------------------ #

    @property
    def btb(self) -> AirBTB:
        return self.airbtb

    @property
    def demand_fill_penalty_cycles(self) -> int:
        """Extra cycles a demand miss pays for predecoding before insertion."""
        return self.config.predecode_latency_cycles

    @property
    def storage_kb(self) -> float:
        """Dedicated per-core storage added by Confluence (AirBTB only)."""
        return self.airbtb.storage_kb


@BTB_REGISTRY.register("airbtb")
def _build_airbtb(ctx: BuildContext, **params: Any) -> AirBTB:
    """AirBTB comes wrapped in a full Confluence instance.

    ``params`` map onto :class:`~repro.core.airbtb.AirBTBConfig` fields, plus
    ``synchronized`` (content synchronization with the L1-I, default True —
    the Figure 8 ablation turns it off) and ``shift`` (a
    :class:`~repro.prefetch.shift.ShiftConfig` override).  The assembled
    :class:`Confluence` is deposited on ``ctx.confluence`` so the prefetcher
    factory and the simulator wiring can reuse it.
    """
    if ctx.program is None:
        raise ValueError("the 'airbtb' BTB needs a program image in the build context")
    synchronized = params.pop("synchronized", True)
    shift_config = params.pop("shift", None)
    config = ConfluenceConfig(
        airbtb=AirBTBConfig(**params),
        shift=shift_config if shift_config is not None else ShiftConfig(),
    )
    confluence = Confluence(
        image=ctx.program.image,
        l1i=ctx.l1i,
        shared_history=ctx.shared_history,
        llc=ctx.llc,
        config=config,
        record_history=ctx.record_history,
    )
    confluence.airbtb.synchronized = synchronized
    ctx.confluence = confluence
    return confluence.airbtb
