"""Storage and area model.

The paper sizes every structure with CACTI 6.5 at 40 nm and reports a few
anchor points (Section 4.2):

* 1K-entry conventional BTB + 64-entry victim buffer: ~9.9 KB, 0.08 mm^2
* 16K-entry conventional BTB (second level): ~140 KB, 0.6 mm^2
* AirBTB (512 bundles x 3 entries + 32-entry overflow): ~10.2 KB, 0.08 mm^2
* SHIFT: ~0.06 mm^2 per core (LLC tag-array extension amortized over 16 cores)
* ARM Cortex-A72-like core: 7.2 mm^2 at 40 nm

This module fits a power-law SRAM area curve through the two BTB anchor
points and uses it for every dedicated SRAM structure, which keeps relative
areas (the x-axis of Figures 2 and 6) consistent with the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

#: Area of the modelled core at 40 nm (ARM Cortex-A72-like), mm^2.
CORE_AREA_MM2 = 7.2

#: Per-core area of SHIFT's LLC tag-array extension (Section 4.2.1), mm^2.
SHIFT_PER_CORE_MM2 = 0.06

# Power-law fit a * KB^b through (9.9 KB, 0.08 mm^2) and (140 KB, 0.6 mm^2).
_FIT_EXPONENT = math.log(0.6 / 0.08) / math.log(140.0 / 9.9)
_FIT_COEFFICIENT = 0.08 / 9.9 ** _FIT_EXPONENT


def sram_area_mm2(storage_kb: float) -> float:
    """Area of a dedicated SRAM structure of ``storage_kb`` kilobytes."""
    if storage_kb < 0:
        raise ValueError("storage cannot be negative")
    if storage_kb == 0:
        return 0.0
    return _FIT_COEFFICIENT * storage_kb ** _FIT_EXPONENT


@dataclass
class FrontendAreaReport:
    """Per-core area accounting of one frontend design point."""

    design: str
    components_mm2: Dict[str, float] = field(default_factory=dict)

    def add(self, name: str, area_mm2: float) -> None:
        self.components_mm2[name] = self.components_mm2.get(name, 0.0) + area_mm2

    @property
    def total_mm2(self) -> float:
        return sum(self.components_mm2.values())

    @property
    def fraction_of_core(self) -> float:
        return self.total_mm2 / CORE_AREA_MM2

    def relative_to(self, baseline: "FrontendAreaReport") -> float:
        """Relative core area versus a baseline design (Figures 2 and 6)."""
        return (CORE_AREA_MM2 + self.total_mm2 - baseline.total_mm2) / CORE_AREA_MM2


class AreaModel:
    """Builds :class:`FrontendAreaReport` objects for the evaluated designs."""

    def __init__(self, core_area_mm2: float = CORE_AREA_MM2) -> None:
        self.core_area_mm2 = core_area_mm2

    def report_for(
        self,
        design: str,
        btb_storage_kb: float = 0.0,
        prefetcher_storage_kb: float = 0.0,
        shift_shared: bool = False,
        extra_components: Optional[Dict[str, float]] = None,
    ) -> FrontendAreaReport:
        """Assemble an area report from per-component storage figures.

        ``shift_shared`` adds the fixed per-core cost of SHIFT's virtualized
        history/index (which is not dedicated SRAM and therefore not run
        through the power-law fit).
        """
        report = FrontendAreaReport(design=design)
        if btb_storage_kb:
            report.add("btb", sram_area_mm2(btb_storage_kb))
        if prefetcher_storage_kb:
            report.add("prefetcher", sram_area_mm2(prefetcher_storage_kb))
        if shift_shared:
            report.add("shift", SHIFT_PER_CORE_MM2)
        for name, value in (extra_components or {}).items():
            report.add(name, value)
        return report
