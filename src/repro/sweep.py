"""Parallel sweep engine with content-addressed on-disk result caching.

The paper's evaluation is a grid — workload profiles x frontend design
points — and scale-out studies live and die by sweep throughput.  This
module makes the whole grid the unit of parallelism and makes repeat runs
nearly free:

* A **grid cell** (:class:`SweepCell`) is one (profile, design) pair plus
  everything that determines its outcome: core count, trace length, trace
  seeds and the frontend timing config.  Cells are independent given their
  seeds — every workload program and per-core trace is synthesized
  deterministically from the cell's parameters — so fanning cells out across
  a :class:`~concurrent.futures.ProcessPoolExecutor` is bit-identical to
  running them one after another.
* Every finished cell is summarized to plain JSON data and stored in a
  **content-addressed result cache** (:class:`ResultCache`): the file name is
  a stable hash of the cell's parameters, so an unchanged cell is loaded
  from disk instead of re-simulated, and any parameter change (a different
  seed, one more core, a derived spec) naturally misses.  The cache lives
  under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``).
* Traces themselves are **shared on-disk artifacts** (:class:`TraceStore`):
  a per-core trace is a pure function of (profile, seed, length), so the
  first run packs it into a compact columnar file (see
  :mod:`repro.workloads.packed`) and every later consumer — any design of
  the grid, any future run, any process — loads the columns back instead of
  re-walking the generator.  The store lives under ``$REPRO_TRACE_DIR``
  (default ``<cache dir>/traces``); ``SweepStats.traces_generated`` /
  ``traces_loaded`` make its behavior observable, mirroring the result
  cache's counters.
* Execution is **fault tolerant and crash resumable** (see
  ``docs/resilience.md``).  The pooled scheduler streams every finished
  cell straight into the cache and the sweep's :class:`RunJournal` instead
  of waiting for the whole grid, retries failed cells under a bounded
  deterministic :class:`RetryPolicy`, survives ``BrokenProcessPool`` by
  rebuilding the pool and requeueing only unfinished cells (degrading to
  the serial path after repeated failures), and bounds each attempt's
  wall-clock with a per-cell timeout watchdog.  Both stores checksum their
  artifacts and quarantine corrupt files to ``*.corrupt``
  (:class:`CorruptArtifactWarning`) rather than silently missing — or
  crashing mid-``mmap``.  ``python -m repro sweep --resume`` replays a
  killed sweep's journal and simulates exactly the missing cells.

:func:`run_sweep` is the high-level entry point; ``repro.api.run_grid`` and
:class:`repro.api.Session` are built on top of it, and
``python -m repro sweep`` exposes it on the command line.  The
:class:`SweepStats` counters (``simulated`` vs ``cache_hits``) make cache
behavior observable: a warm re-run of an unchanged grid reports
``simulated == 0``.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import inspect
import json
import os
import tempfile
import time
import warnings
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.backends.base import BACKEND_REGISTRY, DEFAULT_BACKEND, get_backend
from repro.core.cmp import ChipMultiprocessor, CMPResult, _fork_context
from repro.core.designs import DesignSpec, resolve_design
from repro.core.frontend import FrontendConfig
from repro.faultinject import injection_point
from repro.registry import (
    BTB_REGISTRY,
    PREFETCHER_REGISTRY,
    Registry,
    ensure_unique_names,
)
from repro.resilience import CellExecutionError, RetryPolicy, RunJournal
from repro.workloads.cfg import clear_program_memo, workload_program
from repro.workloads.packed import PACKED_TRACE_FORMAT_VERSION, load_packed
from repro.workloads.profiles import WorkloadProfile, get_profile
from repro.workloads.scenario import BoundScenario, Scenario, resolve_scenario
from repro.workloads.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.context import BaseContext

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "CellExecutionError",
    "CorruptArtifactWarning",
    "ResultCache",
    "RetryPolicy",
    "RunJournal",
    "SweepCell",
    "SweepOutcome",
    "SweepStats",
    "TraceStore",
    "cell_key",
    "clear_workload_memo",
    "cmp_driver",
    "default_cache_dir",
    "default_journal_dir",
    "default_trace_dir",
    "run_cells",
    "run_sweep",
    "simulate_cell",
    "summarize_result",
    "trace_key",
    "workload_program",
]

#: Bumped whenever the simulator or the summary layout changes meaning:
#: entries written under another schema are ignored, never misread.
#: (2: scenario cells — summaries carry scenario/core_profiles/per_profile.)
#: (3: the simulation backend joins the cell key and the summary.)
#: (4: the ``batch`` lane-vectorized backend and the CMP lane-grouped
#: dispatch land; cells simulated by earlier builds must re-earn.)
#: (5: checksummed payloads — entries carry an integrity checksum verified
#: on load; earlier entries are plain schema misses, never quarantined.)
CACHE_SCHEMA_VERSION = 5

#: Joins the trace-store key: bumped whenever trace *generation* changes
#: meaning (the walker's algorithm or the packed column semantics), so stale
#: artifacts miss instead of being replayed as current.
TRACE_SCHEMA_VERSION = 1


class CorruptArtifactWarning(UserWarning):
    """A store artifact failed integrity checks and was quarantined.

    Emitted (once per artifact — quarantining moves the file aside) by
    :meth:`ResultCache.get` and :meth:`TraceStore.load` when an entry is
    unreadable, structurally wrong or fails its checksum.  The artifact is
    renamed to ``<name>.corrupt`` so a flaky disk can't cause unbounded
    re-simulation, and the load degrades to a counted miss — never an
    exception.  Absent files and stale schema versions are ordinary misses,
    not corruption.
    """


# --------------------------------------------------------------------------- #
# Content-addressed result cache
# --------------------------------------------------------------------------- #

def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


def default_journal_dir() -> Path:
    """Where sweep :class:`RunJournal` files live: ``<cache dir>/journal``."""
    return default_cache_dir() / "journal"


def _jsonable(value: object) -> object:
    """Canonical plain-data form of cell parameters (dataclasses, mappings)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def _summary_checksum(summary: Mapping[str, object]) -> str:
    """Integrity checksum of one cached summary (stable across JSON round-trips)."""
    canonical = json.dumps(dict(summary), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _file_sha256(path: Union[str, Path]) -> str:
    """Streaming SHA-256 of a file's bytes (trace artifacts can be large)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _quarantine_file(path: Path) -> Optional[Path]:
    """Move a corrupt artifact to ``<name>.corrupt``; best-effort, never raises.

    Returns the quarantine path, or ``None`` when the move itself failed
    (e.g. the file vanished concurrently) — the caller still counts and
    warns either way.
    """
    target = path.with_name(path.name + ".corrupt")
    try:
        os.replace(path, target)
    except OSError:
        return None
    return target


#: Per-process memo of component-factory fingerprints, keyed by the factory
#: object itself so re-registering a name (overwrite=True) re-fingerprints.
_FACTORY_FINGERPRINTS: Dict[object, str] = {}


def _factory_fingerprint(registry: Registry, name: str) -> str:
    """Content fingerprint of a registered component factory.

    The factory's *source* joins the cache key, so swapping or editing a
    registered factory invalidates its cached cells instead of silently
    serving results from the old implementation.  (Classes the factory
    merely calls are not hashed — clear the cache directory after editing
    component internals that the factory source does not mention; in-repo
    simulator changes are covered by :data:`CACHE_SCHEMA_VERSION`.)
    """
    factory = registry.get(name)
    fingerprint = _FACTORY_FINGERPRINTS.get(factory)
    if fingerprint is None:
        try:
            identity = inspect.getsource(factory)
        except (OSError, TypeError):  # e.g. factories defined in a REPL
            module = getattr(factory, "__module__", "?")
            qualname = getattr(factory, "__qualname__", repr(factory))
            identity = f"{module}:{qualname}"
        fingerprint = hashlib.sha256(identity.encode("utf-8")).hexdigest()[:16]
        _FACTORY_FINGERPRINTS[factory] = fingerprint
    return fingerprint


def cell_key(cell: "SweepCell") -> str:
    """Stable content hash of everything that determines a cell's result.

    Covers the full workload closure — either the workload profile with the
    core count, per-core trace seeds and trace length, or a bound scenario's
    complete per-core assignment (every core's full profile parameters, seed
    and instruction budget) — plus the design spec (component names and
    every parameter override), the source fingerprints of the registered
    component factories the spec names, the frontend timing config and the
    simulation backend (name plus the registered backend factory's source
    fingerprint — all backends are bit-exact by contract, but an edited or
    swapped backend must re-earn its results, not inherit them): the closure
    of inputs the simulation is a pure function of.
    """
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "design": _jsonable(cell.spec.to_dict()),
        "btb_factory": _factory_fingerprint(BTB_REGISTRY, cell.spec.btb),
        "prefetcher_factory": _factory_fingerprint(
            PREFETCHER_REGISTRY, cell.spec.prefetcher
        ),
        "frontend_config": _jsonable(cell.frontend_config),
        "cores": cell.cores,
        "backend": cell.backend,
        "backend_factory": _factory_fingerprint(BACKEND_REGISTRY, cell.backend),
    }
    if isinstance(cell.profile, BoundScenario):
        # The bound assignment is the scenario's full parameter closure:
        # every core's profile, seed and budget are in it verbatim.
        payload["scenario"] = _jsonable(cell.profile)
    else:
        payload["profile"] = _jsonable(cell.profile)
        payload["instructions_per_core"] = cell.instructions_per_core
        payload["trace_seeds"] = [
            cell.trace_seed_base + core for core in range(cell.cores)
        ]
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """On-disk JSON store of cell summaries, one file per content hash.

    Writes are atomic (temp file + rename) so concurrent sweeps sharing a
    cache directory can only ever observe complete entries.  Entries carry a
    checksum of their summary, verified on :meth:`get`; an entry that is
    unreadable, structurally wrong or checksum-mismatched is **quarantined**
    (renamed to ``*.corrupt``, warned via :class:`CorruptArtifactWarning`,
    counted in ``quarantined``) and served as a miss.  A missing file or a
    stale ``schema`` is an ordinary miss.  ``hits`` and ``misses`` count
    :meth:`get` outcomes for observability.
    """

    def __init__(self, directory: Union[str, Path, None] = None) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        #: Corrupt entries moved aside by :meth:`get`.
        self.quarantined = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache({str(self.directory)!r}, hits={self.hits}, misses={self.misses})"

    @classmethod
    def coerce(
        cls, cache: Union[None, bool, str, Path, "ResultCache"]
    ) -> Optional["ResultCache"]:
        """Normalize the user-facing ``cache`` knob.

        ``None``/``False`` disables caching, ``True`` uses the default
        directory, a path uses that directory, and an existing
        :class:`ResultCache` (counters and all) passes through.
        """
        if cache is None or cache is False:
            return None
        if cache is True:
            return cls()
        if isinstance(cache, cls):
            return cache
        return cls(cache)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _quarantine(self, path: Path, reason: str) -> None:
        self.quarantined += 1
        moved = _quarantine_file(path)
        where = f" (moved to {moved.name})" if moved is not None else ""
        warnings.warn(
            f"quarantined corrupt cache entry {path.name}: {reason}{where}",
            CorruptArtifactWarning,
            stacklevel=3,
        )

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """Load a cached summary, or ``None`` on miss.

        Absent entries and stale schema versions miss silently; unreadable
        or checksum-mismatched entries are quarantined (see
        :class:`CorruptArtifactWarning`) and then miss.
        """
        path = self._path(key)
        try:
            injection_point("cache:get", label=key)
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (FileNotFoundError, NotADirectoryError):
            # Absent entry — or an unusable store directory, which is not an
            # artifact's fault and must not read as a quarantine.
            self.misses += 1
            return None
        except (OSError, ValueError) as error:
            self._quarantine(path, f"unreadable entry ({type(error).__name__})")
            self.misses += 1
            return None
        if not isinstance(payload, dict):
            self._quarantine(path, "entry is not a JSON object")
            self.misses += 1
            return None
        if payload.get("schema") != CACHE_SCHEMA_VERSION:
            # Another build's entry: a legitimate miss, not corruption.
            self.misses += 1
            return None
        summary = payload.get("summary")
        if (
            not isinstance(summary, dict)
            or payload.get("checksum") != _summary_checksum(summary)
        ):
            self._quarantine(path, "entry failed its checksum")
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def put(self, key: str, summary: Mapping[str, object]) -> Path:
        """Store one cell summary atomically; returns the entry's path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        summary = dict(summary)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "summary": summary,
            "checksum": _summary_checksum(summary),
        }
        handle, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                json.dump(payload, tmp, sort_keys=True)
            os.replace(tmp_name, self._path(key))
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        return self._path(key)


# --------------------------------------------------------------------------- #
# Content-addressed trace store
# --------------------------------------------------------------------------- #

def default_trace_dir() -> Path:
    """``$REPRO_TRACE_DIR`` when set, else ``<result cache dir>/traces``."""
    override = os.environ.get("REPRO_TRACE_DIR")
    if override:
        return Path(override)
    return default_cache_dir() / "traces"


def trace_key(profile: WorkloadProfile, instructions: int, seed: int) -> str:
    """Stable content hash of everything a trace is a pure function of.

    The synthetic program is deterministic given the profile (its layout
    seed is a profile field), so the profile's full parameter set plus the
    walk seed and requested length close over the trace.  The packed format
    version joins the key so a layout change can never be misread.
    """
    payload = {
        "schema": TRACE_SCHEMA_VERSION,
        "format": PACKED_TRACE_FORMAT_VERSION,
        "profile": _jsonable(profile),
        "instructions": instructions,
        "seed": seed,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class TraceStore:
    """On-disk store of packed traces, one columnar file per content hash.

    The (profile x design) grid generates each per-core trace exactly once:
    every design sharing a profile — and every future run, in any process —
    maps the artifact back in through :meth:`load` instead of re-walking the
    generator.  Writes are atomic (temp file + rename), so sweeps sharing a
    store can only observe complete artifacts.  Each artifact gets a
    ``<name>.sum`` sidecar with its SHA-256, verified before the columns are
    mapped; a truncated, bit-flipped or otherwise unreadable artifact is
    **quarantined** to ``*.corrupt`` (with its sidecar), warned via
    :class:`CorruptArtifactWarning`, counted in ``quarantined`` and served
    as a miss — never a crash mid-``mmap``.  Artifacts without a sidecar
    (written by earlier builds) get structural checks only.
    ``hits``/``misses`` count :meth:`load` outcomes for observability.
    """

    def __init__(
        self, directory: Union[str, Path, None] = None, mmap: bool = True
    ) -> None:
        self.directory = Path(directory) if directory is not None else default_trace_dir()
        #: Serve loads as memoryviews over an mmap of the artifact (the
        #: zero-copy default): N processes sharing a store read one
        #: page-cache copy of each trace instead of N heap copies.
        self.mmap = mmap
        self.hits = 0
        self.misses = 0
        #: How many :meth:`load` hits were served zero-copy (mmap-backed).
        self.mapped = 0
        #: Corrupt artifacts moved aside by :meth:`load`.
        self.quarantined = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceStore({str(self.directory)!r}, hits={self.hits}, "
            f"misses={self.misses}, mapped={self.mapped})"
        )

    @classmethod
    def coerce(
        cls, store: Union[None, bool, str, Path, "TraceStore"]
    ) -> Optional["TraceStore"]:
        """Normalize the user-facing ``trace_store`` knob (the ``cache`` idiom):
        ``None``/``False`` disables, ``True`` uses the default directory, a
        path uses that directory, an existing store passes through."""
        if store is None or store is False:
            return None
        if store is True:
            return cls()
        if isinstance(store, cls):
            return store
        return cls(store)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.trace"

    @staticmethod
    def _checksum_path(path: Path) -> Path:
        return path.with_name(path.name + ".sum")

    def path_for(self, profile: WorkloadProfile, instructions: int, seed: int) -> Path:
        """The artifact path for (profile, instructions, seed).

        Purely computed — the artifact may or may not exist yet.  The CMP
        driver ships these paths (never trace objects) across its core-level
        pool boundary so workers mmap the shared page-cache copy.
        """
        return self._path(trace_key(profile, instructions, seed))

    def _quarantine(self, path: Path, reason: str) -> None:
        self.quarantined += 1
        moved = _quarantine_file(path)
        _quarantine_file(self._checksum_path(path))
        where = f" (moved to {moved.name})" if moved is not None else ""
        warnings.warn(
            f"quarantined corrupt trace artifact {path.name}: {reason}{where}",
            CorruptArtifactWarning,
            stacklevel=3,
        )

    def load(
        self,
        profile: WorkloadProfile,
        instructions: int,
        seed: int,
        name: Optional[str] = None,
    ) -> Optional[Trace]:
        """Map a stored trace back in, or ``None`` on miss.

        The artifact's ``.sum`` sidecar (when present) is verified before
        the columns are mapped; a checksum mismatch or an unreadable
        artifact is quarantined (see :class:`CorruptArtifactWarning`) and
        served as a miss.  ``name`` overrides the stored trace name
        (per-core names differ even when the underlying artifact is shared
        across runs).
        """
        key = trace_key(profile, instructions, seed)
        path = self._path(key)
        try:
            injection_point("trace:load", label=key)
            expected: Optional[str] = None
            try:
                expected = self._checksum_path(path).read_text(
                    encoding="utf-8"
                ).strip()
            except FileNotFoundError:
                expected = None  # legacy artifact predating checksums
            if expected is not None and _file_sha256(path) != expected:
                raise ValueError("artifact does not match its stored checksum")
            packed = load_packed(path, mmap=self.mmap)
        except (FileNotFoundError, NotADirectoryError):
            # Absent artifact — or an unusable store directory, which is not
            # an artifact's fault and must not read as a quarantine.
            self.misses += 1
            return None
        except (OSError, ValueError) as error:
            self._quarantine(path, str(error) or type(error).__name__)
            self.misses += 1
            return None
        self.hits += 1
        if packed.mapped:
            self.mapped += 1
        return Trace.from_packed(packed, name=name)

    def put(
        self,
        profile: WorkloadProfile,
        instructions: int,
        seed: int,
        trace: Trace,
    ) -> Path:
        """Store one trace atomically; returns the artifact's path.

        The checksum sidecar is written (atomically) after the artifact, so
        a crash between the two leaves a loadable legacy-style artifact,
        never a mismatched pair.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        key = trace_key(profile, instructions, seed)
        handle, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".trace"
        )
        os.close(handle)
        try:
            trace.packed.save(tmp_name)
            digest = _file_sha256(tmp_name)
            os.replace(tmp_name, self._path(key))
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        sum_handle, sum_tmp = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".sum"
        )
        try:
            with os.fdopen(sum_handle, "w", encoding="utf-8") as tmp:
                tmp.write(digest + "\n")
            os.replace(sum_tmp, self._checksum_path(self._path(key)))
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(sum_tmp)
            raise
        return self._path(key)

    def prune(self, max_bytes: int) -> Tuple[int, int]:
        """Size-bounded LRU sweep: evict cold artifacts until the store fits.

        Artifacts are content-addressed and never expire on their own, so a
        long-lived shared directory only ever grows; ``prune`` deletes the
        least-recently-used ``.trace`` files (by ``max(atime, mtime)`` —
        atime tracks use where the filesystem records it, mtime is the
        write-time floor on ``noatime`` mounts) until the total size is at
        most ``max_bytes``.  Checksum sidecars ride along with their
        artifact (they neither count toward the size nor survive it).
        Returns ``(files removed, bytes freed)``.  Processes currently
        mapping a removed artifact are unaffected (the page cache holds the
        inode until the last mapping drops).
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        entries = []
        total = 0
        try:
            candidates = list(self.directory.glob("*.trace"))
        except OSError:
            return (0, 0)
        for path in candidates:
            if path.name.startswith(".tmp-"):
                continue  # an in-flight put(); its os.replace must not race us
            try:
                stat = path.stat()
            except OSError:
                continue  # concurrently removed
            entries.append((max(stat.st_atime, stat.st_mtime), stat.st_size, path))
            total += stat.st_size
        entries.sort(key=lambda entry: entry[0])
        removed = 0
        freed = 0
        for _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                if path.exists():
                    continue  # undeletable (permissions?); its bytes remain
                total -= size  # a concurrent prune freed it; don't over-evict
                continue
            with contextlib.suppress(OSError):
                self._checksum_path(path).unlink()
            total -= size
            removed += 1
            freed += size
        return (removed, freed)


# --------------------------------------------------------------------------- #
# Grid cells
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class SweepCell:
    """One (workload x design) grid cell with its full parameter closure.

    ``profile`` is either a homogeneous :class:`WorkloadProfile` or a
    :class:`~repro.workloads.scenario.BoundScenario` (a heterogeneous
    per-core assignment); both are frozen, hashable and carry a ``name``.
    For scenario cells ``cores`` is the assignment's length,
    ``instructions_per_core`` its widest core's budget (the per-core truth
    lives in the assignment itself, which is what :func:`cell_key` hashes).

    Cell-key closure invariant (staticcheck R003): every field that can
    change a cell's outcome is folded into :func:`cell_key` — a field this
    dataclass grows but the key omits would let two *different*
    computations share one cache entry.  Adding a field therefore means
    extending :func:`cell_key` in the same change, and R003 fails the
    build until it is.
    """

    profile: Union[WorkloadProfile, BoundScenario]
    spec: DesignSpec
    cores: int
    instructions_per_core: int
    trace_seed_base: int = 100
    frontend_config: Optional[FrontendConfig] = None
    #: Simulation backend *name* (a :data:`repro.backends.BACKEND_REGISTRY`
    #: entry).  A name, not an instance: cells are hashed into cache keys and
    #: pickled across pool boundaries, and the name pins the registered
    #: implementation whose source fingerprint joins the key.
    backend: str = DEFAULT_BACKEND

    def key(self) -> str:
        return cell_key(self)


@dataclass
class SweepStats:
    """How a sweep's cells were satisfied (the cache observability hook).

    ``simulated``/``cache_hits``/``resumed`` count cells (``resumed`` ones
    were replayed from a crashed run's :class:`RunJournal` instead of
    re-simulating); ``traces_generated`` / ``traces_loaded`` count how the
    simulated cells' per-core traces were obtained (generator walk vs
    :class:`TraceStore` artifact).  A warm trace-store run reports
    ``traces_generated == 0`` — CI pins this like ``--expect-cached`` pins
    ``simulated == 0``.  ``traces_mapped`` counts the loaded traces that
    were served zero-copy (memoryviews over an mmap of the artifact rather
    than a private heap copy).

    The resilience counters make fault handling observable: ``retried``
    counts cell re-executions (after a failure, a pool break or a timeout),
    ``timed_out`` counts attempts the per-cell watchdog expired,
    ``pool_rebuilds`` counts :class:`~concurrent.futures.process.\
BrokenProcessPool` / stuck-worker recoveries, and ``quarantined`` counts
    corrupt cache/trace artifacts moved aside during the sweep.
    """

    simulated: int = 0
    cache_hits: int = 0
    traces_generated: int = 0
    traces_loaded: int = 0
    traces_mapped: int = 0
    retried: int = 0
    timed_out: int = 0
    quarantined: int = 0
    resumed: int = 0
    pool_rebuilds: int = 0

    @property
    def cells(self) -> int:
        return self.simulated + self.cache_hits + self.resumed

    def to_dict(self) -> Dict[str, int]:
        """Every counter (plus the derived ``cells`` total) as plain data.

        The single serialization used by the CLI's ``--json`` output, the
        saved sweep-report files (:func:`repro.api.save_reports`) and the
        report bundle's resilience section, so the counter vocabulary cannot
        drift between surfaces.
        """
        payload = {
            field_.name: getattr(self, field_.name)
            for field_ in dataclasses.fields(self)
        }
        payload["cells"] = self.cells
        return payload


@dataclass
class SweepOutcome:
    """Result of :func:`run_sweep`: per-cell summaries plus satisfaction stats.

    ``summaries`` is keyed by (workload name, design name), where a workload
    is a profile or a scenario; ``profiles`` and ``scenarios`` list the two
    kinds separately, ``workloads`` joins them in grid order.
    """

    profiles: List[str]
    designs: List[str]
    scale: float
    cells: List[SweepCell]
    summaries: Dict[Tuple[str, str], Dict[str, object]]
    stats: SweepStats = field(default_factory=SweepStats)
    scenarios: List[str] = field(default_factory=list)

    @property
    def workloads(self) -> List[str]:
        """Every grid row: the profiles, then the scenarios."""
        return list(self.profiles) + list(self.scenarios)

    def summary(self, profile: str, design: str) -> Dict[str, object]:
        return self.summaries[(profile, design)]


# --------------------------------------------------------------------------- #
# Cell execution (runs in the parent or in pool workers)
# --------------------------------------------------------------------------- #

#: Per-process memo of CMP drivers (which cache their per-core traces), keyed
#: by everything that shapes the traces; designs of the same workload reuse
#: it.  (The synthesized-program memo lives with the generator, in
#: :func:`repro.workloads.cfg.workload_program`, so heterogeneous CMP cores
#: share it too.)  Traces are the heavy part (cores x instructions_per_core
#: fetch records per entry), so this memo is a small LRU rather than
#: unbounded.
_CMP_MEMO: "OrderedDict[tuple, ChipMultiprocessor]" = OrderedDict()
_CMP_MEMO_MAX_ENTRIES = 4


def clear_workload_memo() -> None:
    """Drop the per-process program/trace memos (frees their memory)."""
    clear_program_memo()
    _CMP_MEMO.clear()


def cmp_driver(
    profile: Union[WorkloadProfile, BoundScenario],
    cores: int,
    instructions_per_core: int,
    trace_seed_base: int = 100,
    frontend_config: Optional[FrontendConfig] = None,
    trace_store: Optional[TraceStore] = None,
    backend: Optional[str] = None,
) -> ChipMultiprocessor:
    """The per-process memoized CMP driver for one workload configuration.

    Shared by sweep cells and :class:`repro.api.Session`, so a session and
    the cells it schedules reuse one driver (and its cached traces).
    ``profile`` may be a :class:`~repro.workloads.scenario.BoundScenario`,
    in which case the driver runs its heterogeneous per-core assignment.  A
    ``trace_store`` attaches to the memoized driver: traces it has not yet
    materialized are loaded from (or saved to) the store.  ``backend`` sets
    the driver's default simulation backend; like the store it does not join
    the memo key (it never shapes the cached traces) — the latest caller's
    knob wins, and per-``run_design`` overrides always take precedence.
    """
    memo_key = (profile, cores, instructions_per_core, trace_seed_base,
                frontend_config)
    cmp_model = _CMP_MEMO.get(memo_key)
    if cmp_model is None:
        if isinstance(profile, BoundScenario):
            cmp_model = ChipMultiprocessor(
                frontend_config=frontend_config,
                trace_store=trace_store,
                scenario=profile,
                backend=backend,
            )
        else:
            cmp_model = ChipMultiprocessor(
                workload_program(profile),
                cores=cores,
                instructions_per_core=instructions_per_core,
                frontend_config=frontend_config,
                trace_seed_base=trace_seed_base,
                trace_store=trace_store,
                backend=backend,
            )
        _CMP_MEMO[memo_key] = cmp_model
        while len(_CMP_MEMO) > _CMP_MEMO_MAX_ENTRIES:
            _CMP_MEMO.popitem(last=False)
    else:
        _CMP_MEMO.move_to_end(memo_key)
        # The caller's knob always wins: attaching a store enables loads for
        # traces the driver has not yet materialized, and passing None
        # detaches a previously attached one (the documented "generate
        # in-process" default must not silently keep using an old store).
        # Artifact paths recorded under a *different* store directory (or
        # under a now-detached store) must not survive the swap: the
        # core-level fan-out would ship workers paths into the wrong
        # directory.  Dropping them falls back to shipping the heap traces
        # the driver already holds.
        old_dir = (
            cmp_model.trace_store.directory
            if cmp_model.trace_store is not None else None
        )
        new_dir = trace_store.directory if trace_store is not None else None
        if old_dir != new_dir:
            cmp_model._trace_paths = None
        cmp_model.trace_store = trace_store
        cmp_model.backend = backend
    return cmp_model


def _cmp_for_cell(
    cell: SweepCell, trace_store: Optional[TraceStore] = None
) -> ChipMultiprocessor:
    return cmp_driver(
        cell.profile,
        cell.cores,
        cell.instructions_per_core,
        cell.trace_seed_base,
        cell.frontend_config,
        trace_store=trace_store,
    )


def summarize_result(
    result: CMPResult, spec: DesignSpec, cores: int, backend: str = DEFAULT_BACKEND
) -> Dict[str, object]:
    """Flatten one CMP result into plain JSON-compatible data.

    This is the cacheable unit: everything in it is baseline-independent
    (speedups are derived later, when a report picks its reference design).
    """
    summary: Dict[str, object] = {
        "design": result.design,
        "label": spec.label,
        "workload": result.workload,
        "scenario": result.scenario,
        "cores": cores,
        "backend": backend,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "ipc": result.ipc,
        "btb_mpki": result.btb_mpki,
        "l1i_mpki": result.l1i_mpki,
        "core_ipc": [core.ipc for core in result.core_results],
        "core_profiles": list(result.core_profiles),
        "per_profile": result.per_profile(),
    }
    if result.area is not None:
        summary["area_mm2"] = result.area.total_mm2
        summary["area_fraction_of_core"] = result.area.fraction_of_core
        summary["area_components_mm2"] = dict(result.area.components_mm2)
    return summary


def _cell_label(cell: SweepCell) -> str:
    """Human identity of a cell for errors and fault-injection matching."""
    return (
        f"{cell.profile.name}/{cell.spec.name}"
        f"[seed_base={cell.trace_seed_base}, backend={cell.backend}]"
    )


def _cell_failure(
    cell: SweepCell, error: Optional[BaseException]
) -> CellExecutionError:
    """Wrap a cell's terminal failure so the raised error names the cell."""
    if isinstance(error, CellExecutionError):
        return error
    detail = (
        f"{type(error).__name__}: {error}" if error is not None else "unknown error"
    )
    return CellExecutionError(f"sweep cell {_cell_label(cell)} failed: {detail}")


#: (summary, traces generated, loaded, mapped, artifacts quarantined) — the
#: per-cell deltas a scheduler folds into :class:`SweepStats`.
_CellOutcome = Tuple[Dict[str, object], int, int, int, int]


def simulate_cell(
    cell: SweepCell, workers: Optional[int] = None
) -> Dict[str, object]:
    """Run one grid cell and return its summary.

    ``workers`` (rarely needed) fans the cell's *replaying cores* out instead
    of its siblings — used when a sweep has more workers than pending cells.
    """
    return _simulate_cell_counted(cell, None, workers=workers)[0]


def _simulate_cell_counted(
    cell: SweepCell,
    trace_store: Optional[TraceStore],
    workers: Optional[int] = None,
    attempt: int = 0,
) -> _CellOutcome:
    """Run one cell; returns (summary, traces generated, loaded, mapped,
    quarantined).

    The trace counters are deltas over this run, so the scheduler can fold
    them into :class:`SweepStats` even when the memoized driver already holds
    its traces (in which case every delta is zero).  ``attempt`` is the
    scheduler's retry counter for this cell — it parameterizes the
    ``"cell:simulate"`` fault-injection point so "fail N times, then
    succeed" plans behave deterministically across pool workers.
    """
    injection_point("cell:simulate", label=_cell_label(cell), attempt=attempt)
    cmp_model = _cmp_for_cell(cell, trace_store=trace_store)
    generated_before = cmp_model.traces_generated
    loaded_before = cmp_model.traces_loaded
    mapped_before = cmp_model.traces_mapped
    quarantined_before = trace_store.quarantined if trace_store is not None else 0
    result = cmp_model.run_design(cell.spec, workers=workers, backend=cell.backend)
    summary = summarize_result(result, cell.spec, cell.cores, backend=cell.backend)
    return (
        summary,
        cmp_model.traces_generated - generated_before,
        cmp_model.traces_loaded - loaded_before,
        cmp_model.traces_mapped - mapped_before,
        (trace_store.quarantined - quarantined_before)
        if trace_store is not None else 0,
    )


def _cell_job(job: Tuple[SweepCell, Optional[str], int]) -> _CellOutcome:
    """Pool-worker entry: rebuilds the trace store from its directory.

    Workers receive the artifact *directory*, never trace objects: each
    worker lazily mmaps the artifacts it needs, so all workers share one
    page-cache copy of every trace instead of pickling heap copies around.
    The job carries the cell's attempt number (for deterministic fault
    injection), and any worker-side failure is wrapped so the parent's
    exception names the cell instead of an anonymous worker.
    """
    cell, trace_dir, attempt = job
    store = TraceStore(trace_dir) if trace_dir is not None else None
    try:
        return _simulate_cell_counted(cell, store, attempt=attempt)
    except CellExecutionError:
        raise
    except Exception as error:
        raise CellExecutionError(
            f"sweep cell {_cell_label(cell)} failed in a worker: "
            f"{type(error).__name__}: {error}"
        ) from error


# --------------------------------------------------------------------------- #
# The scheduler
# --------------------------------------------------------------------------- #

def _now() -> float:
    """Scheduler wall clock — timeout bookkeeping only, never in results."""
    # Deadline arithmetic must not jump with NTP; results never see it.
    return time.monotonic()  # staticcheck: allow[R002]


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even when its workers are stuck or already dead.

    ``shutdown()`` alone joins worker processes, which never returns while
    a worker hangs; terminating the processes first makes teardown prompt.
    (``_processes`` is private executor state — degrade to a plain shutdown
    if a future stdlib renames it.)
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        with contextlib.suppress(Exception):
            process.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


def _attempt_cell(
    cell: SweepCell,
    traces: Optional[TraceStore],
    stats: SweepStats,
    policy: RetryPolicy,
    workers: Optional[int] = None,
    first_attempt: int = 0,
) -> _CellOutcome:
    """Run one cell in-process under the retry policy (the serial path).

    ``first_attempt`` carries retries already charged elsewhere (the pooled
    scheduler hands half-retried cells here when it degrades), so the total
    attempt budget is shared, not reset.
    """
    last_error: Optional[BaseException] = None
    for attempt in range(first_attempt, policy.retries + 1):
        if attempt > first_attempt:
            stats.retried += 1
            time.sleep(policy.delay(attempt - 1))
        try:
            return _simulate_cell_counted(
                cell, traces, workers=workers, attempt=attempt
            )
        except Exception as error:
            last_error = error
    raise _cell_failure(cell, last_error)


def _run_pending_pooled(
    cells: Sequence[SweepCell],
    pending: Sequence[int],
    traces: Optional[TraceStore],
    workers: int,
    stats: SweepStats,
    policy: RetryPolicy,
    context: "BaseContext",
    complete: Callable[[int, _CellOutcome], None],
) -> None:
    """Fan pending cells across a process pool, streaming completions.

    Per-cell futures instead of ``pool.map``: every finished cell flows
    through ``complete`` (cache + journal) the moment it lands, a failed
    cell is retried under ``policy`` without disturbing its siblings, a
    broken pool is rebuilt with only the unfinished cells requeued, and a
    cell attempt outliving ``policy.cell_timeout`` gets its stuck worker
    terminated.  After ``policy.max_pool_rebuilds`` recoveries the
    remaining cells degrade to the in-process serial path — a sweep never
    fails merely because pooling does.
    """
    trace_dir = str(traces.directory) if traces is not None else None
    width = min(workers, len(pending))
    attempts: Dict[int, int] = {index: 0 for index in pending}
    queue: Deque[int] = deque(pending)
    in_flight: Dict[Future[_CellOutcome], int] = {}
    deadlines: Dict[Future[_CellOutcome], float] = {}
    rebuilds = 0
    pool: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
        max_workers=width, mp_context=context
    )

    def fail_or_requeue(
        index: int, error: BaseException, timed_out: bool = False
    ) -> None:
        """Charge one failed/victim attempt; requeue within budget or raise."""
        if timed_out:
            stats.timed_out += 1
        attempts[index] += 1
        if attempts[index] > policy.retries:
            raise _cell_failure(cells[index], error)
        stats.retried += 1
        queue.append(index)

    try:
        while queue or in_flight:
            broken = False
            while queue and len(in_flight) < width and pool is not None:
                index = queue.popleft()
                if attempts[index] > 0:
                    time.sleep(policy.delay(attempts[index] - 1))
                try:
                    future = pool.submit(
                        _cell_job, (cells[index], trace_dir, attempts[index])
                    )
                except BrokenProcessPool:
                    queue.appendleft(index)
                    broken = True
                    break
                in_flight[future] = index
                if policy.cell_timeout is not None:
                    deadlines[future] = _now() + policy.cell_timeout

            expired: List[Future[_CellOutcome]] = []
            if in_flight and not broken:
                timeout = (
                    max(0.0, min(deadlines.values()) - _now())
                    if deadlines else None
                )
                done, _ = wait(
                    list(in_flight), timeout=timeout, return_when=FIRST_COMPLETED
                )
                for future in done:
                    index = in_flight.pop(future)
                    deadlines.pop(future, None)
                    try:
                        outcome = future.result()
                    except BrokenProcessPool as error:
                        broken = True
                        fail_or_requeue(index, error)
                    except Exception as error:
                        fail_or_requeue(index, error)
                    else:
                        complete(index, outcome)
                if not done and deadlines:
                    now = _now()
                    expired = [
                        future for future, deadline in deadlines.items()
                        if deadline <= now
                    ]

            if broken or expired:
                # Recovery: harvest results that did land, charge every
                # other in-flight cell one victim attempt, then rebuild —
                # or, past the rebuild budget, degrade to the serial path.
                rebuilds += 1
                stats.pool_rebuilds += 1
                expired_set = set(expired)
                for future, index in list(in_flight.items()):
                    if future.done() and not future.cancelled():
                        try:
                            outcome = future.result()
                        except Exception as error:
                            fail_or_requeue(index, error)
                        else:
                            complete(index, outcome)
                        continue
                    if future in expired_set:
                        fail_or_requeue(
                            index,
                            TimeoutError(
                                f"cell attempt exceeded the per-cell timeout "
                                f"of {policy.cell_timeout}s"
                            ),
                            timed_out=True,
                        )
                    else:
                        fail_or_requeue(
                            index, BrokenProcessPool("pool worker died mid-cell")
                        )
                in_flight.clear()
                deadlines.clear()
                if pool is not None:
                    _terminate_pool(pool)
                    pool = None
                if rebuilds > policy.max_pool_rebuilds:
                    while queue:
                        index = queue.popleft()
                        complete(index, _attempt_cell(
                            cells[index], traces, stats, policy,
                            first_attempt=attempts[index],
                        ))
                    return
                pool = ProcessPoolExecutor(max_workers=width, mp_context=context)
    finally:
        if pool is not None:
            _terminate_pool(pool)


def _coerce_journal(
    journal: Union[None, bool, str, Path, RunJournal],
    keys: Sequence[str],
) -> Optional[RunJournal]:
    """Normalize the user-facing ``journal`` knob (the ``cache`` idiom).

    ``None``/``False`` disables journaling, ``True`` uses the default
    directory (:func:`default_journal_dir`), a path uses that directory,
    and an existing :class:`RunJournal` passes through — provided it was
    built for exactly this sweep's cell-key set.
    """
    if journal is None or journal is False:
        return None
    if isinstance(journal, RunJournal):
        if journal.keys != frozenset(keys):
            raise ValueError(
                "journal was built for a different cell-key set than this sweep"
            )
        return journal
    if journal is True:
        return RunJournal(default_journal_dir(), keys)
    return RunJournal(journal, keys)


def run_cells(
    cells: Sequence[SweepCell],
    workers: Optional[int] = None,
    cache: Union[None, bool, str, Path, ResultCache] = None,
    trace_store: Union[None, bool, str, Path, TraceStore] = None,
    policy: Optional[RetryPolicy] = None,
    journal: Union[None, bool, str, Path, RunJournal] = None,
    resume: bool = False,
) -> Tuple[List[Dict[str, object]], SweepStats]:
    """Satisfy every cell, from the cache when possible, else by simulating.

    Cache misses get the whole ``workers`` budget at exactly one level —
    never nested pools (forking inside forked pool workers is the classic
    fork-with-threads deadlock hazard):

    * enough pending cells to keep the pool busy — fan *cells* out across
      processes, each cell's cores serial;
    * few wide cells (more workers than cells, cells wider than the pool
      they would fill) — run cells one after another, fanning each cell's
      *replaying cores* out instead.

    Both levels are bit-identical to the serial path (cells are pure
    functions of their parameters; the core-level path is PR 1's
    bit-identical fan-out), so the choice only affects wall-clock.

    Execution is resilient (``docs/resilience.md``): every path runs under
    ``policy`` (default :class:`RetryPolicy`) — bounded retry with
    deterministic backoff, optional per-cell timeouts, pool rebuilds on
    ``BrokenProcessPool`` and graceful degradation to serial execution —
    and completed cells stream into the cache and the ``journal`` as they
    land.  ``journal`` (the ``cache``-style knob) appends each fresh
    simulation to a :class:`RunJournal` keyed by this sweep's cell-key set;
    with ``resume=True`` the journal of a previous (killed) run pre-fills
    its completed cells, counted in ``SweepStats.resumed`` and re-``put``
    into the cache, so only the missing cells simulate.  A cell that fails
    past its retry budget raises :class:`CellExecutionError` naming the
    cell; cells already completed keep their cache/journal entries, so the
    rerun resumes.  Returns the summaries in cell order plus the
    :class:`SweepStats` of this run.
    """
    if workers is not None and workers <= 0:
        raise ValueError("workers must be positive when given")
    if policy is None:
        policy = RetryPolicy()
    store = ResultCache.coerce(cache)
    traces = TraceStore.coerce(trace_store)
    keys = [cell.key() for cell in cells]
    run_journal = _coerce_journal(journal, keys)
    journaled: Dict[str, Dict[str, object]] = {}
    if resume and run_journal is not None:
        journaled = run_journal.load()
    stats = SweepStats()
    summaries: List[Optional[Dict[str, object]]] = [None] * len(cells)

    cache_quarantined_before = store.quarantined if store is not None else 0
    pending: List[int] = []
    for index in range(len(cells)):
        cached = store.get(keys[index]) if store is not None else None
        if cached is not None:
            summaries[index] = cached
            stats.cache_hits += 1
            continue
        resumed = journaled.get(keys[index])
        if resumed is not None:
            # A journaled summary from the killed run: as trustworthy as a
            # cache entry (it was recorded after the cell completed).  Put
            # it back into the cache so the next run hits the fast path.
            summaries[index] = resumed
            stats.resumed += 1
            if store is not None:
                store.put(keys[index], resumed)
            continue
        pending.append(index)
    if store is not None:
        stats.quarantined += store.quarantined - cache_quarantined_before

    def complete(index: int, outcome: _CellOutcome) -> None:
        """Stream one fresh simulation into stats, cache and journal."""
        summary, generated, loaded, mapped, quarantined = outcome
        summaries[index] = summary
        stats.simulated += 1
        stats.traces_generated += generated
        stats.traces_loaded += loaded
        stats.traces_mapped += mapped
        stats.quarantined += quarantined
        if store is not None:
            store.put(keys[index], summary)
        if run_journal is not None:
            run_journal.record(keys[index], summary)

    if pending:
        if workers is not None and workers > 1:
            context = _fork_context()
            core_fanout = min(workers, min(cells[i].cores for i in pending))
            if core_fanout > len(pending):
                # e.g. a 2-design, 16-core session with workers=8: sequential
                # cells, 8-way core fan-out each, beats a 2-wide cell pool.
                for index in pending:
                    complete(index, _attempt_cell(
                        cells[index], traces, stats, policy, workers=workers
                    ))
            elif len(pending) > 1 and context is not None:
                _run_pending_pooled(
                    cells, pending, traces, workers, stats, policy, context,
                    complete,
                )
            else:
                for index in pending:
                    complete(index, _attempt_cell(
                        cells[index], traces, stats, policy, workers=workers
                    ))
        else:
            for index in pending:
                complete(index, _attempt_cell(cells[index], traces, stats, policy))

    # Every index was satisfied above (cache hit, journal resume or fresh
    # simulation); the comprehension narrows List[Optional[...]] to the
    # declared return type.
    completed = [summary for summary in summaries if summary is not None]
    if len(completed) != len(cells):  # pragma: no cover - defensive
        raise RuntimeError("sweep left a cell unsatisfied")
    return completed, stats


def run_sweep(
    profiles: Iterable[Union[str, WorkloadProfile]],
    designs: Sequence[Union[str, DesignSpec]],
    scale: float = 1.0,
    cores: int = 16,
    instructions_per_core: Optional[int] = None,
    frontend_config: Optional[FrontendConfig] = None,
    trace_seed_base: int = 100,
    workers: Optional[int] = None,
    cache: Union[None, bool, str, Path, ResultCache] = None,
    trace_store: Union[None, bool, str, Path, TraceStore] = None,
    scenarios: Optional[Iterable[Union[str, Scenario, BoundScenario]]] = None,
    backend: str = DEFAULT_BACKEND,
    policy: Optional[RetryPolicy] = None,
    journal: Union[None, bool, str, Path, RunJournal] = None,
    resume: bool = False,
) -> SweepOutcome:
    """Run the full (workload x design) grid through the cell scheduler.

    ``profiles`` and ``designs`` may mix names and instances; ``scale``
    shrinks every profile (as :class:`repro.api.Session` does).  When
    ``instructions_per_core`` is omitted each profile uses its own
    recommended trace length.  ``scenarios`` adds heterogeneous rows to the
    grid — catalog names, :class:`~repro.workloads.scenario.Scenario` specs
    (bound here against ``cores``/``scale``/``instructions_per_core``/
    ``trace_seed_base``) or pre-bound assignments; ``profiles`` may be empty
    when scenarios are given.  ``trace_store`` shares per-core traces as
    on-disk artifacts across designs, runs, processes *and scenarios*: any
    two grid rows assigning the same (profile, seed, length) to a core share
    one artifact (see :class:`TraceStore`).  ``backend`` names the
    simulation backend every cell runs on (a
    :data:`repro.backends.BACKEND_REGISTRY` entry); it joins each cell's
    cache key, so the same grid on two backends never shares entries.

    ``policy``, ``journal`` and ``resume`` are the resilience knobs,
    forwarded to :func:`run_cells`: bounded deterministic retry / per-cell
    timeouts / pool-rebuild recovery, append-only journaling of completed
    cells, and crash resume from a previous run's journal.
    """
    # Resolve the backend up front: an unknown name must fail before any
    # cell simulates (or, with caching disabled, before a deep stack of
    # drivers has been built around it).
    get_backend(backend)
    resolved_profiles: List[WorkloadProfile] = []
    for profile in profiles:
        if isinstance(profile, str):
            profile = get_profile(profile)
        if scale != 1.0:
            profile = profile.scaled(scale)
        resolved_profiles.append(profile)
    bound_scenarios: List[BoundScenario] = []
    for scenario in scenarios or ():
        if not isinstance(scenario, BoundScenario):
            scenario = resolve_scenario(scenario).bind(
                cores=cores,
                scale=scale,
                instructions_per_core=instructions_per_core,
                trace_seed_base=trace_seed_base,
            )
        bound_scenarios.append(scenario)
    if not resolved_profiles and not bound_scenarios:
        raise ValueError("no profiles or scenarios given")
    specs = [resolve_design(design) for design in designs]
    if not specs:
        raise ValueError("no designs given")
    profile_names = [profile.name for profile in resolved_profiles]
    scenario_names = [scenario.name for scenario in bound_scenarios]
    design_names = [spec.name for spec in specs]
    ensure_unique_names(
        "profile", profile_names,
        hint="dataclasses.replace(profile, name=...) renames a profile",
    )
    ensure_unique_names(
        "scenario", scenario_names,
        hint="dataclasses.replace(scenario, name=...) renames a scenario",
    )
    overlap = sorted(set(profile_names) & set(scenario_names))
    if overlap:
        # Profiles and scenarios share the summaries keyspace.
        raise ValueError(
            f"scenario name(s) collide with profile name(s): {', '.join(overlap)}"
        )
    ensure_unique_names("design", design_names)

    cells = [
        SweepCell(
            profile=profile,
            spec=spec,
            cores=cores,
            instructions_per_core=(
                instructions_per_core or profile.recommended_trace_instructions
            ),
            trace_seed_base=trace_seed_base,
            frontend_config=frontend_config,
            backend=backend,
        )
        for profile in resolved_profiles
        for spec in specs
    ]
    cells.extend(
        SweepCell(
            profile=scenario,
            spec=spec,
            cores=scenario.cores,
            instructions_per_core=scenario.instructions_per_core,
            trace_seed_base=trace_seed_base,
            frontend_config=frontend_config,
            backend=backend,
        )
        for scenario in bound_scenarios
        for spec in specs
    )
    summaries, stats = run_cells(
        cells,
        workers=workers,
        cache=cache,
        trace_store=trace_store,
        policy=policy,
        journal=journal,
        resume=resume,
    )
    mapping = {
        (cell.profile.name, cell.spec.name): summary
        for cell, summary in zip(cells, summaries, strict=True)
    }
    return SweepOutcome(
        profiles=profile_names,
        designs=design_names,
        scale=scale,
        cells=cells,
        summaries=mapping,
        stats=stats,
        scenarios=scenario_names,
    )
