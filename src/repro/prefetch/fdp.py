"""Fetch-directed prefetching (FDP).

FDP [Reinman, Calder & Austin, 1999] decouples the branch prediction unit
from the fetch unit with a queue of predicted fetch regions (six basic blocks
in the paper's configuration) and prefetches the instruction blocks on the
predicted path that are not already in the L1-I.

Its two structural limitations, which Section 2.1 of the paper quantifies,
fall out of this model directly:

* lookahead is bounded by the fetch queue depth (a handful of cycles), far
  less than the LLC round trip, so prefetches are rarely fully timely, and
* the predicted path is only useful while every intervening prediction is
  correct; the runahead stops at the first branch the unit would mispredict
  or miss in the BTB, so effective lookahead shrinks further.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, List

from repro.isa.instruction import BLOCK_SIZE_BYTES, BranchKind
from repro.prefetch.base import InstructionPrefetcher, PrefetchContext
from repro.registry import PREFETCHER_REGISTRY, BuildContext
from repro.workloads.packed import NO_VALUE, kind_code

if TYPE_CHECKING:  # import cycle guard: frontend wiring imports both sides
    from repro.branch.unit import BranchPredictionUnit


class FetchDirectedPrefetcher(InstructionPrefetcher):
    """Branch-predictor-directed prefetcher with bounded lookahead."""

    name = "fdp"

    def __init__(self, queue_depth_basic_blocks: int = 6) -> None:
        super().__init__()
        if queue_depth_basic_blocks <= 0:
            raise ValueError("fetch queue depth must be positive")
        self.queue_depth = queue_depth_basic_blocks
        # The branch prediction unit produces one fetch region per cycle, so
        # the prefetcher can run at most one cycle per queued basic block
        # ahead of the fetch unit (Section 2.1's lookahead limitation).
        self.max_lead_cycles = queue_depth_basic_blocks
        self.runahead_stops_on_misprediction = 0
        self.runahead_stops_on_btb_miss = 0

    def prefetch_targets(self, context: PrefetchContext) -> Iterable[int]:
        """Prefetch the blocks of the next few correctly-predicted regions."""
        bpu = context.bpu
        if bpu is None:
            return []
        if context.packed is not None:
            targets = self._targets_packed(context, bpu)
        else:
            targets = self._targets_records(context, bpu)
        self.issued_prefetches += len(targets)
        return targets

    def _targets_records(
        self, context: PrefetchContext, bpu: "BranchPredictionUnit"
    ) -> List[int]:
        targets: List[int] = []
        records = context.records
        limit = min(len(records), context.index + 1 + self.queue_depth)
        for position in range(context.index + 1, limit):
            record = records[position]
            # The runahead path stays on the correct path only while the
            # prediction for each intervening branch would have been correct.
            previous = records[position - 1]
            if previous.branch_pc is not None:
                if previous.kind is BranchKind.CONDITIONAL:
                    predicted_taken = bpu.direction.predict(previous.branch_pc)
                    if predicted_taken != previous.taken:
                        self.runahead_stops_on_misprediction += 1
                        break
                if previous.is_taken_branch and not self._btb_has(bpu, previous.branch_pc):
                    self.runahead_stops_on_btb_miss += 1
                    break
            for block in record.blocks():
                if not context.l1i.contains(block) and block not in targets:
                    targets.append(block)
        return targets

    def _targets_packed(
        self, context: PrefetchContext, bpu: "BranchPredictionUnit"
    ) -> List[int]:
        """Columnar runahead: same walk, straight off the packed columns."""
        targets: List[int] = []
        packed = context.packed
        branch_pcs = packed.branch_pcs
        kinds = packed.kinds
        takens = packed.takens
        block_firsts = packed.block_firsts
        block_counts = packed.block_counts
        conditional = kind_code(BranchKind.CONDITIONAL)
        l1i = context.l1i
        limit = min(len(packed), context.index + 1 + self.queue_depth)
        for position in range(context.index + 1, limit):
            previous = position - 1
            branch_pc = branch_pcs[previous]
            if branch_pc != NO_VALUE:
                if kinds[previous] == conditional:
                    predicted_taken = bpu.direction.predict(branch_pc)
                    if predicted_taken != bool(takens[previous]):
                        self.runahead_stops_on_misprediction += 1
                        break
                if takens[previous] and not self._btb_has(bpu, branch_pc):
                    self.runahead_stops_on_btb_miss += 1
                    break
            first = block_firsts[position]
            stop = first + block_counts[position] * BLOCK_SIZE_BYTES
            for block in range(first, stop, BLOCK_SIZE_BYTES):
                if not l1i.contains(block) and block not in targets:
                    targets.append(block)
        return targets

    @staticmethod
    def _btb_has(bpu: "BranchPredictionUnit", branch_pc: int) -> bool:
        """Non-destructive BTB presence check for the runahead path."""
        btb = bpu.btb
        peek = getattr(btb, "peek_hit", None)
        if peek is not None:
            return bool(peek(branch_pc))
        return True

    @property
    def storage_kb(self) -> float:
        """FDP reuses existing branch predictor metadata (no extra storage)."""
        return 0.0


@PREFETCHER_REGISTRY.register("fdp")
def _build_fdp(ctx: BuildContext, **params: Any) -> FetchDirectedPrefetcher:
    return FetchDirectedPrefetcher(**params)
