"""SHIFT: Shared History Instruction Fetch (Kaynak, Grot & Falsafi, 2013).

SHIFT records the L1-I access stream of one core at instruction-block
granularity in a circular *history buffer* and keeps an *index table* that
maps a block address to its most recent position in the history.  When a core
misses in the L1-I, the index is probed and, on a hit, the stream starting at
that position is replayed: the following block addresses are prefetched ahead
of the fetch stream, and as the core's demands confirm the predictions the
stream is extended.

Both structures are virtualized in the LLC (predictor virtualization): the
history buffer occupies reserved LLC blocks and the index lives in an
extended LLC tag array, so the only meaningful per-core cost is a share of
the tag-array extension (~0.06 mm^2 per core, Section 4.2.1).

One instance of the history is shared by all cores running the same
workload; Confluence inherits this sharing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from repro.caches.llc import SharedLLC
from repro.isa.instruction import BLOCK_SIZE_BYTES
from repro.prefetch.base import InstructionPrefetcher, PrefetchContext
from repro.registry import PREFETCHER_REGISTRY, BuildContext


@dataclass(frozen=True)
class ShiftConfig:
    """SHIFT sizing, matching Section 4.2.1.

    ``read_ahead_degree`` is the lookahead the stream engine keeps between
    the core's fetch stream and the replayed history (in instruction blocks);
    ``divergence_threshold`` is how many uncovered demand misses the engine
    tolerates before it abandons the active stream and re-anchors at the
    missing block.
    """

    history_entries: int = 96 * 1024
    index_entries: int = 96 * 1024
    read_ahead_degree: int = 24
    divergence_threshold: int = 1

    # NOTE: the paper sizes the history at 32K entries, which is "sufficient
    # to capture the instruction working set of the server workloads
    # evaluated" there.  Our synthetic requests produce longer block-access
    # streams per unit of unique footprint than the commercial traces, so the
    # default here is 96K entries — still virtualized in the LLC (~0.6 MB of
    # a multi-megabyte LLC) and still negligible per-core area, preserving the
    # paper's cost story.  See EXPERIMENTS.md.

    @property
    def history_storage_kb(self) -> float:
        """History buffer footprint (virtualized in LLC data blocks)."""
        # Each entry holds a block address pointer; the paper quotes 204 KB
        # for 32K entries (~51 bits per entry with pointers and tags).
        return self.history_entries * 51 / 8 / 1024

    @property
    def index_storage_kb(self) -> float:
        """Index footprint (embedded in the LLC tag array)."""
        return self.index_entries * 60 / 8 / 1024


class ShiftHistory:
    """Shared circular history buffer plus index table.

    A single instance is shared by every core running the same workload: one
    designated core records its block access stream, all cores read it.
    """

    def __init__(
        self,
        config: Optional[ShiftConfig] = None,
        llc: Optional[SharedLLC] = None,
        region_name: str = "shift_history",
    ) -> None:
        self.config = config or ShiftConfig()
        self.llc = llc
        # Heterogeneous CMPs virtualize one history per workload in the same
        # LLC; distinct region names keep their capacity accounting separate.
        self._region_name = region_name
        if llc is not None:
            blocks = int(self.config.history_storage_kb * 1024 / BLOCK_SIZE_BYTES) + 1
            llc.reserve_region(self._region_name, blocks)
        capacity = self.config.history_entries
        self._buffer: List[int] = [0] * capacity
        self._valid = 0  # number of entries written so far (saturates at capacity)
        self._head = 0  # next write position
        self._index: Dict[int, int] = {}
        self.records = 0
        self.index_hits = 0
        self.index_lookups = 0

    @property
    def capacity(self) -> int:
        return self.config.history_entries

    def record(self, block_addr: int) -> None:
        """Append one L1-I block access to the shared history."""
        position = self._head
        overwritten = self._buffer[position]
        self._buffer[position] = block_addr
        self._index[block_addr] = position
        # Drop the index entry of the overwritten slot if it still points here.
        if (
            self._valid == self.capacity
            and overwritten != block_addr
            and self._index.get(overwritten) == position
        ):
            del self._index[overwritten]
        self._head = (position + 1) % self.capacity
        self._valid = min(self._valid + 1, self.capacity)
        self.records += 1
        if self.llc is not None and self.records % (BLOCK_SIZE_BYTES // 8) == 0:
            # Histories are spilled to their LLC region a block at a time.
            self.llc.write_metadata(self._region_name)

    def lookup(self, block_addr: int) -> Optional[int]:
        """Position of the most recent occurrence of ``block_addr``."""
        self.index_lookups += 1
        position = self._index.get(block_addr)
        if position is None:
            return None
        self.index_hits += 1
        if self.llc is not None:
            self.llc.read_metadata(self._region_name)
        return position

    def read_stream(self, position: int, count: int) -> List[int]:
        """Read ``count`` block addresses following ``position`` (exclusive)."""
        if self._valid == 0 or count <= 0:
            return []
        result: List[int] = []
        cursor = (position + 1) % self.capacity
        available = self._valid
        steps = 0
        while steps < count and steps < available:
            if cursor == self._head:
                break
            result.append(self._buffer[cursor])
            cursor = (cursor + 1) % self.capacity
            steps += 1
        return result

    @property
    def index_hit_rate(self) -> float:
        if self.index_lookups == 0:
            return 0.0
        return self.index_hits / self.index_lookups

    # ------------------------------------------------------------------ #
    # Replay-side cloning (used by the parallel CMP runner)
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, Any]:
        """Capture the recorded state as plain, picklable data."""
        return {
            "config": self.config,
            "buffer": list(self._buffer),
            "valid": self._valid,
            "head": self._head,
            "index": dict(self._index),
            "records": self.records,
        }

    @classmethod
    def restore(
        cls, state: Dict[str, Any], llc: Optional[SharedLLC] = None
    ) -> "ShiftHistory":
        """Rebuild a history from :meth:`snapshot` (e.g. in a worker process)."""
        history = cls(config=state["config"], llc=llc)
        history._buffer = list(state["buffer"])
        history._valid = state["valid"]
        history._head = state["head"]
        history._index = dict(state["index"])
        history.records = state["records"]
        return history


class _ActiveStream:
    """The stream being replayed ahead of the core's fetch stream."""

    __slots__ = ("position", "pending", "confirmations")

    def __init__(self, position: int, pending: List[int]) -> None:
        self.position = position
        self.pending = pending
        self.confirmations = 0


class ShiftPrefetcher(InstructionPrefetcher):
    """Per-core SHIFT engine replaying the shared history.

    The engine keeps a single active stream anchored at the most recent
    L1-I miss that could not be explained by the stream it was following.
    While the core's demanded blocks keep matching the stream's read-ahead
    window, the window is topped up so the engine stays ``read_ahead_degree``
    blocks ahead of the fetch stream; once a few demand misses slip through
    without being covered, the stream has evidently diverged and is
    re-anchored at the missing block.
    """

    name = "shift"

    def __init__(
        self,
        history: ShiftHistory,
        record_history: bool = True,
        config: Optional[ShiftConfig] = None,
    ) -> None:
        super().__init__()
        self.history = history
        self.config = config or history.config
        #: Whether this core generates the shared history (exactly one core
        #: per workload does; the others only consume it).
        self.record_history = record_history
        self._stream: Optional[_ActiveStream] = None
        self._uncovered_misses = 0
        self._last_recorded_block: Optional[int] = None
        self.streams_started = 0
        self.stream_confirmations = 0

    def prefetch_targets(self, context: PrefetchContext) -> Iterable[int]:
        targets: List[int] = []
        # Re-anchoring decisions happen *before* recording the current access:
        # the index must resolve to the previous occurrence of the missing
        # block, whose successors are the blocks about to be needed.
        if context.demand_miss_block is not None:
            self._on_demand_miss(context.demand_miss_block, targets)
        for block in context.region_blocks():
            self._confirm(block, targets)
            if self.record_history and block != self._last_recorded_block:
                self.history.record(block)
                self._last_recorded_block = block
        self.issued_prefetches += len(targets)
        return targets

    def _on_demand_miss(self, trigger_block: int, targets: List[int]) -> None:
        """Decide whether an uncovered miss means the stream has diverged."""
        stream = self._stream
        if stream is not None and trigger_block in stream.pending:
            # The stream knew about this block; the prefetch simply was not
            # timely (or was filtered).  Not a divergence.
            return
        self._uncovered_misses += 1
        if stream is None or self._uncovered_misses > self.config.divergence_threshold:
            self._anchor_stream(trigger_block, targets)

    def _anchor_stream(self, trigger_block: int, targets: List[int]) -> None:
        """(Re-)start replay at the previous occurrence of ``trigger_block``."""
        position = self.history.lookup(trigger_block)
        if position is None:
            return
        pending = self.history.read_stream(position, self.config.read_ahead_degree)
        if not pending:
            return
        self._stream = _ActiveStream(
            position=(position + len(pending)) % self.history.capacity,
            pending=pending,
        )
        self._uncovered_misses = 0
        self.streams_started += 1
        targets.extend(pending)

    def _confirm(self, block: int, targets: List[int]) -> None:
        """Demanded blocks that match the stream keep its lookahead topped up."""
        stream = self._stream
        if stream is None or block not in stream.pending:
            return
        stream.pending.remove(block)
        stream.confirmations += 1
        self.stream_confirmations += 1
        self._uncovered_misses = 0
        top_up = self.config.read_ahead_degree - len(stream.pending)
        if top_up <= 0:
            return
        extension = self.history.read_stream(stream.position, top_up)
        stream.position = (stream.position + len(extension)) % self.history.capacity
        stream.pending.extend(extension)
        targets.extend(extension)

    @property
    def storage_kb(self) -> float:
        """Dedicated per-core storage: none (history and index live in LLC)."""
        return 0.0


@PREFETCHER_REGISTRY.register("shift")
def _build_shift(ctx: BuildContext, **params: Any) -> InstructionPrefetcher:
    """SHIFT shares one history per workload; Confluence brings its own."""
    if ctx.confluence is not None:
        return ctx.confluence.prefetcher
    history = ctx.shared_history
    if history is None:
        history = ShiftHistory(llc=ctx.llc)
    params.setdefault("record_history", ctx.record_history)
    return ShiftPrefetcher(history, **params)
