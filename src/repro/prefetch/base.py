"""Prefetcher interface shared by FDP, SHIFT and the null prefetcher.

The frontend simulator calls the prefetcher once per fetch region with a
:class:`PrefetchContext` describing where the core currently is; the
prefetcher returns the block addresses it wants brought into the L1-I.  The
engine models the timeliness of those prefetches (a prefetch issued `d`
cycles before its block is demanded hides `d` cycles of the LLC round trip).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.registry import PREFETCHER_REGISTRY, BuildContext
from repro.workloads.packed import PackedTrace
from repro.workloads.trace import FetchRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.branch.unit import BranchPredictionUnit
    from repro.caches.l1i import InstructionCache


@dataclass
class PrefetchContext:
    """Everything a prefetcher may inspect when deciding what to fetch next.

    The packed fast path allocates ONE context per simulation and mutates
    ``index``/``cycle``/``demand_miss_block`` in place every region, so
    prefetchers must treat the context as valid only for the duration of the
    ``prefetch_targets`` call — stash the values you need, never the context
    object itself.

    Attributes:
        records: the full fetch-region trace being simulated.
        index: position of the region the core is currently fetching.
        cycle: current simulation cycle.
        l1i: the core's instruction cache (presence checks only).
        bpu: the core's branch prediction unit (used by FDP to run ahead).
        demand_miss_block: block address of the L1-I miss that triggered this
            call, or None when the current region hit.
        packed: the columnar form of the trace, when the engine runs the
            packed fast path; prefetchers that walk ahead (FDP) read the
            columns directly, and :meth:`region_blocks` serves the current
            region's block span from the precomputed columns.
    """

    records: Sequence[FetchRecord]
    index: int
    cycle: int
    l1i: "InstructionCache"
    bpu: Optional["BranchPredictionUnit"] = None
    demand_miss_block: Optional[int] = None
    packed: Optional[PackedTrace] = None

    @property
    def current_record(self) -> FetchRecord:
        return self.records[self.index]

    def region_blocks(self) -> Tuple[int, ...]:
        """Block addresses of the current region, whichever path is active."""
        if self.packed is not None:
            return self.packed.region_blocks(self.index)
        return self.current_record.blocks()


class InstructionPrefetcher(abc.ABC):
    """Base class for instruction prefetchers."""

    name = "prefetcher"

    #: Upper bound on how many cycles of the LLC round trip a prefetch from
    #: this prefetcher can hide.  ``None`` means unbounded (stream prefetchers
    #: run arbitrarily far ahead of the fetch unit); FDP is bounded by its
    #: fetch-queue depth because the branch prediction unit only runs a few
    #: basic blocks ahead of fetch.
    max_lead_cycles: Optional[int] = None

    def __init__(self) -> None:
        self.issued_prefetches = 0

    @abc.abstractmethod
    def prefetch_targets(self, context: PrefetchContext) -> Iterable[int]:
        """Return block addresses to prefetch, in priority order."""

    def observe_fill(self, block_addr: int, demand: bool) -> None:
        """Hook: a block was installed in the L1-I (demand or prefetch)."""

    @property
    def storage_kb(self) -> float:
        """Dedicated per-core storage of the prefetcher."""
        return 0.0


class NullPrefetcher(InstructionPrefetcher):
    """No prefetching (the baseline core)."""

    name = "none"

    def prefetch_targets(self, context: PrefetchContext) -> List[int]:
        return []


@PREFETCHER_REGISTRY.register("none")
def _build_null(ctx: BuildContext, **params: Any) -> NullPrefetcher:
    return NullPrefetcher(**params)


@PREFETCHER_REGISTRY.register("perfect")
def _build_perfect(ctx: BuildContext, **params: Any) -> NullPrefetcher:
    """A perfect L1-I needs no prefetcher; the design flag does the work."""
    return NullPrefetcher(**params)
