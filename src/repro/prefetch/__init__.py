"""Instruction prefetchers.

Two prefetchers from the paper's design space:

* :class:`FetchDirectedPrefetcher` (FDP) — the branch prediction unit runs
  ahead of fetch through a small queue of basic blocks and prefetches the
  blocks on the predicted path.  Limited lookahead and compounding prediction
  error cap its coverage and timeliness.
* :class:`ShiftPrefetcher` (SHIFT) — the state-of-the-art stream-based
  prefetcher the paper builds Confluence on: a shared, LLC-virtualized
  history of the L1-I block access stream is replayed ahead of the fetch
  stream, eliminating the vast majority of L1-I misses.
"""

from repro.prefetch.base import InstructionPrefetcher, PrefetchContext, NullPrefetcher
from repro.prefetch.fdp import FetchDirectedPrefetcher
from repro.prefetch.shift import ShiftConfig, ShiftHistory, ShiftPrefetcher

__all__ = [
    "InstructionPrefetcher",
    "PrefetchContext",
    "NullPrefetcher",
    "FetchDirectedPrefetcher",
    "ShiftConfig",
    "ShiftHistory",
    "ShiftPrefetcher",
]
