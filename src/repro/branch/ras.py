"""Return address stack (RAS).

A fixed-capacity circular stack: calls push their return address, returns pop
the predicted target.  Overflow wraps around (overwriting the oldest entry)
and underflow returns ``None`` — both behaviours match hardware RAS designs
and matter for deeply layered server software.
"""

from __future__ import annotations

from typing import List, Optional


class ReturnAddressStack:
    """64-entry circular return address stack (Table 1)."""

    def __init__(self, entries: int = 64) -> None:
        if entries <= 0:
            raise ValueError("RAS must have at least one entry")
        self.entries = entries
        self._stack: List[int] = []
        self.pushes = 0
        self.pops = 0
        self.underflows = 0
        self.overflows = 0

    def push(self, return_address: int) -> None:
        self.pushes += 1
        if len(self._stack) >= self.entries:
            # Circular overwrite: the oldest entry is lost.
            self.overflows += 1
            self._stack.pop(0)
        self._stack.append(return_address)

    def pop(self) -> Optional[int]:
        self.pops += 1
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    def peek(self) -> Optional[int]:
        if not self._stack:
            return None
        return self._stack[-1]

    @property
    def depth(self) -> int:
        return len(self._stack)

    def clear(self) -> None:
        self._stack.clear()
