"""Conditional branch direction predictors.

The modelled core (Table 1) uses a hybrid predictor: a 16K-entry gshare, a
16K-entry bimodal table and a 16K-entry meta selector that picks between
them per branch.  All tables use 2-bit saturating counters.
"""

from __future__ import annotations

from typing import List, Protocol


class DirectionPredictor(Protocol):
    """Interface shared by all direction predictors."""

    def predict(self, branch_pc: int) -> bool:
        """Predict taken (True) or not taken (False) without updating state."""

    def update(self, branch_pc: int, taken: bool) -> None:
        """Train the predictor with the resolved outcome."""


class _CounterTable:
    """A table of 2-bit saturating counters."""

    __slots__ = ("entries", "mask", "counters")

    def __init__(self, entries: int, initial: int = 2) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("counter table size must be a positive power of two")
        if not 0 <= initial <= 3:
            raise ValueError("2-bit counters take values 0..3")
        self.entries = entries
        self.mask = entries - 1
        self.counters: List[int] = [initial] * entries

    def value(self, index: int) -> int:
        return self.counters[index & self.mask]

    def is_taken(self, index: int) -> bool:
        return self.counters[index & self.mask] >= 2

    def train(self, index: int, taken: bool) -> None:
        slot = index & self.mask
        counter = self.counters[slot]
        if taken:
            if counter < 3:
                self.counters[slot] = counter + 1
        elif counter > 0:
            self.counters[slot] = counter - 1


class BimodalPredictor:
    """PC-indexed table of 2-bit counters."""

    def __init__(self, entries: int = 16 * 1024) -> None:
        self._table = _CounterTable(entries)

    def _index(self, branch_pc: int) -> int:
        return branch_pc >> 2

    def predict(self, branch_pc: int) -> bool:
        return self._table.is_taken(self._index(branch_pc))

    def update(self, branch_pc: int, taken: bool) -> None:
        self._table.train(self._index(branch_pc), taken)


class GSharePredictor:
    """Global-history predictor: PC xor global history indexes the table."""

    def __init__(self, entries: int = 16 * 1024, history_bits: int = 12) -> None:
        if history_bits <= 0:
            raise ValueError("history_bits must be positive")
        self._table = _CounterTable(entries)
        self.history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._history = 0

    @property
    def history(self) -> int:
        return self._history

    def _index(self, branch_pc: int) -> int:
        return (branch_pc >> 2) ^ self._history

    def predict(self, branch_pc: int) -> bool:
        return self._table.is_taken(self._index(branch_pc))

    def update(self, branch_pc: int, taken: bool) -> None:
        self._table.train(self._index(branch_pc), taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask


class HybridDirectionPredictor:
    """gshare + bimodal with a meta selector (Table 1's hybrid predictor).

    The meta table learns, per branch, which component predicts better and
    uses it for future predictions.
    """

    def __init__(
        self,
        entries: int = 16 * 1024,
        history_bits: int = 12,
    ) -> None:
        self.gshare = GSharePredictor(entries, history_bits)
        self.bimodal = BimodalPredictor(entries)
        self._meta = _CounterTable(entries)
        self.predictions = 0
        self.mispredictions = 0

    def _meta_index(self, branch_pc: int) -> int:
        return branch_pc >> 2

    def predict(self, branch_pc: int) -> bool:
        use_gshare = self._meta.is_taken(self._meta_index(branch_pc))
        if use_gshare:
            return self.gshare.predict(branch_pc)
        return self.bimodal.predict(branch_pc)

    def update(self, branch_pc: int, taken: bool) -> None:
        gshare_correct = self.gshare.predict(branch_pc) == taken
        bimodal_correct = self.bimodal.predict(branch_pc) == taken
        predicted = self.predict(branch_pc)
        self.predictions += 1
        if predicted != taken:
            self.mispredictions += 1
        # The meta selector trains toward the component that was right.
        if gshare_correct != bimodal_correct:
            self._meta.train(self._meta_index(branch_pc), gshare_correct)
        self.gshare.update(branch_pc, taken)
        self.bimodal.update(branch_pc, taken)

    @property
    def misprediction_rate(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions
