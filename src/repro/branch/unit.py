"""Branch prediction unit: direction predictor + BTB + RAS + indirect cache.

The unit produces one fetch-region prediction per cycle (Table 1).  For a
trace-driven simulation it is driven with the resolved branch of each fetch
region: :meth:`predict` produces what the hardware would have predicted and
:meth:`resolve` trains all components with the actual outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.branch.btb_base import BaseBTB, BTBLookupResult
from repro.branch.direction import HybridDirectionPredictor
from repro.branch.indirect import IndirectTargetCache
from repro.branch.ras import ReturnAddressStack
from repro.isa.instruction import BranchKind
from repro.staticcheck.markers import hot_loop
from repro.workloads.trace import FetchRecord


class PredictionSlot:
    """Mutable, reusable scratch holding one region's prediction outcome.

    The packed simulation loop owns exactly one slot and has the branch
    prediction unit (and, through :meth:`~repro.branch.btb_base.BaseBTB.
    lookup_into`, the BTB) write into it every region —
    :meth:`BranchPredictionUnit.predict_region_into` is the allocation-free
    twin of :meth:`BranchPredictionUnit.predict_region`.  Field meanings and
    the derived predicates (:attr:`direction_correct`, :attr:`misfetch`)
    mirror :class:`BranchPrediction`/:class:`~repro.branch.btb_base.
    BTBLookupResult` exactly; the parity suite pins the equivalence.
    """

    __slots__ = (
        "btb_hit",
        "btb_target",
        "btb_latency_cycles",
        "btb_level",
        "predicted_taken",
        "predicted_target",
        "actual_taken",
        "actual_target",
    )

    def __init__(self) -> None:
        self.set_btb(False, None, 0, "none")
        self.predicted_taken = False
        self.predicted_target: Optional[int] = None
        self.actual_taken = False
        self.actual_target = 0

    def set_btb(
        self, hit: bool, target: Optional[int], latency_cycles: int, level: str
    ) -> None:
        """Record one BTB lookup outcome (the ``lookup_into`` write point)."""
        self.btb_hit = hit
        self.btb_target = target
        self.btb_latency_cycles = latency_cycles
        self.btb_level = level

    @property
    def direction_correct(self) -> bool:
        return self.predicted_taken == self.actual_taken

    @property
    def misfetch(self) -> bool:
        """Same predicate as :attr:`BranchPrediction.misfetch`."""
        if not (self.actual_taken and self.predicted_taken):
            return False
        return not self.btb_hit or self.predicted_target != self.actual_target


@dataclass(frozen=True)
class BranchPrediction:
    """What the branch prediction unit predicted for one fetch region."""

    btb_result: BTBLookupResult
    predicted_taken: bool
    predicted_target: Optional[int]
    actual_taken: bool
    actual_target: int

    @property
    def btb_hit(self) -> bool:
        return self.btb_result.hit

    @property
    def direction_correct(self) -> bool:
        return self.predicted_taken == self.actual_taken

    @property
    def target_correct(self) -> bool:
        """Did the unit steer fetch to the right next address?"""
        if not self.direction_correct:
            return False
        if not self.actual_taken:
            return True
        return self.predicted_target == self.actual_target

    @property
    def misfetch(self) -> bool:
        """A predicted-taken branch whose target the BTB could not supply.

        Misfetches are a *BTB supply* problem discovered in the first decode
        stage: fetch was steered (the direction predictor said taken, and it
        was right) but to a missing or wrong target.  Direction
        mispredictions are deliberately excluded — a predicted-not-taken
        branch falls through at fetch regardless of what the BTB holds, and
        its taken outcome is only discovered at execute, paying the (much
        larger) direction-misprediction penalty instead.
        """
        if not (self.actual_taken and self.predicted_taken):
            return False
        return not self.btb_hit or self.predicted_target != self.actual_target

    @property
    def direction_mispredicted(self) -> bool:
        """The direction predictor steered fetch the wrong way (execute-time
        flush; mutually exclusive with :attr:`misfetch` by construction)."""
        return not self.direction_correct


class BranchPredictionUnit:
    """Direction predictor, BTB, return address stack and indirect cache."""

    def __init__(
        self,
        btb: BaseBTB,
        direction: Optional[HybridDirectionPredictor] = None,
        ras: Optional[ReturnAddressStack] = None,
        indirect: Optional[IndirectTargetCache] = None,
    ) -> None:
        self.btb = btb
        self.direction = direction or HybridDirectionPredictor()
        self.ras = ras or ReturnAddressStack()
        self.indirect = indirect or IndirectTargetCache()
        self.predictions = 0
        self.misfetches = 0
        self.direction_mispredictions = 0

    def predict(self, record: FetchRecord) -> BranchPrediction:
        """Predict the outcome of the fetch region's terminating branch."""
        return self.predict_region(
            record.branch_pc,
            record.kind,
            record.taken,
            record.next_pc,
            record.fallthrough,
        )

    def predict_region(
        self,
        branch_pc: Optional[int],
        kind: Optional[BranchKind],
        taken: bool,
        next_pc: int,
        fallthrough: int,
    ) -> BranchPrediction:
        """Record-free :meth:`predict`: the packed fast path calls this with
        column values directly (``fallthrough`` is the address following the
        terminating branch, or the region end when there is no branch)."""
        self.predictions += 1
        if branch_pc is None:
            result = BTBLookupResult(False, None, 0, "none")
            return BranchPrediction(result, False, next_pc, False, next_pc)

        result = self.btb.lookup(branch_pc, taken=taken)

        if kind is BranchKind.CONDITIONAL:
            predicted_taken = self.direction.predict(branch_pc)
        else:
            predicted_taken = True

        predicted_target: Optional[int]
        if not predicted_taken:
            predicted_target = fallthrough
        elif kind is BranchKind.RETURN:
            predicted_target = self.ras.peek()
        elif kind is not None and kind.is_indirect:
            predicted_target = self.indirect.predict(branch_pc)
        else:
            predicted_target = result.target

        prediction = BranchPrediction(
            btb_result=result,
            predicted_taken=predicted_taken,
            predicted_target=predicted_target,
            actual_taken=taken,
            actual_target=next_pc,
        )
        if prediction.misfetch:
            self.misfetches += 1
        if not prediction.direction_correct:
            self.direction_mispredictions += 1
        return prediction

    @hot_loop
    def predict_region_into(
        self,
        slot: PredictionSlot,
        branch_pc: Optional[int],
        kind: Optional[BranchKind],
        taken: bool,
        next_pc: int,
        fallthrough: int,
    ) -> PredictionSlot:
        """Allocation-free :meth:`predict_region`: writes into ``slot``.

        The packed hot loop calls this with one preallocated
        :class:`PredictionSlot` instead of constructing a
        :class:`BranchPrediction` (and, for BTBs overriding
        :meth:`~repro.branch.btb_base.BaseBTB.lookup_into`, a
        :class:`~repro.branch.btb_base.BTBLookupResult`) per region.  The
        decision logic and every statistics side effect are identical to
        :meth:`predict_region` — subclasses overriding one must override
        both.
        """
        self.predictions += 1
        if branch_pc is None:
            slot.set_btb(False, None, 0, "none")
            slot.predicted_taken = False
            slot.predicted_target = next_pc
            slot.actual_taken = False
            slot.actual_target = next_pc
            return slot

        self.btb.lookup_into(slot, branch_pc, taken=taken)

        if kind is BranchKind.CONDITIONAL:
            predicted_taken = self.direction.predict(branch_pc)
        else:
            predicted_taken = True

        if not predicted_taken:
            predicted_target: Optional[int] = fallthrough
        elif kind is BranchKind.RETURN:
            predicted_target = self.ras.peek()
        elif kind is not None and kind.is_indirect:
            predicted_target = self.indirect.predict(branch_pc)
        else:
            predicted_target = slot.btb_target

        slot.predicted_taken = predicted_taken
        slot.predicted_target = predicted_target
        slot.actual_taken = taken
        slot.actual_target = next_pc
        if slot.misfetch:
            self.misfetches += 1
        if not slot.direction_correct:
            self.direction_mispredictions += 1
        return slot

    def resolve(self, record: FetchRecord) -> None:
        """Train every component with the resolved branch."""
        self.resolve_region(
            record.branch_pc,
            record.kind,
            record.taken,
            record.target,
            record.next_pc,
            record.fallthrough,
        )

    def resolve_region(
        self,
        branch_pc: Optional[int],
        kind: Optional[BranchKind],
        taken: bool,
        target: Optional[int],
        next_pc: int,
        fallthrough: int,
    ) -> None:
        """Record-free :meth:`resolve` (the packed fast path's trainer)."""
        if branch_pc is None:
            return
        if kind is BranchKind.CONDITIONAL:
            self.direction.update(branch_pc, taken)
        if kind is not None and kind.is_call:
            self.ras.push(fallthrough)
        if kind is BranchKind.RETURN:
            self.ras.pop()
        if kind is not None and kind.is_indirect and kind is not BranchKind.RETURN:
            self.indirect.update(branch_pc, next_pc)
        self.btb.update(branch_pc, kind, target, taken)

    @property
    def misfetch_rate(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.misfetches / self.predictions
