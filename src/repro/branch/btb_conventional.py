"""Conventional basic-block-oriented BTB, with an optional victim buffer.

The baseline of every figure in the paper is a 1K-entry, 4-way conventional
BTB augmented with a 64-entry victim buffer (Section 4.2.2).  Each entry is
tagged with the basic-block starting address and stores the target of the
branch ending the basic block, its type and a compressed fall-through
distance.  Because there is a one-to-one correspondence between a basic
block and the branch terminating it, this model tags entries with the branch
PC — capacity and conflict behaviour are identical, and it keeps the lookup
key uniform across all BTB designs.

Entry sizing (used for storage/area accounting) follows Section 4.2.2: a
30-bit target displacement, 2-bit type, 4-bit fall-through distance and the
tag bits of a 48-bit virtual address space.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.branch.btb_base import BaseBTB, BTBEntry, BTBLookupResult
from repro.caches.sram import SetAssociativeCache
from repro.isa.instruction import BranchKind
from repro.registry import BTB_REGISTRY, BuildContext
from repro.staticcheck.markers import hot_loop

if TYPE_CHECKING:  # import cycle guard: unit.py imports btb_base
    from repro.branch.unit import PredictionSlot

#: Bits per victim-buffer entry: full tag, target displacement, type, valid.
_VICTIM_ENTRY_BITS = 48 + 30 + 2 + 1


def conventional_entry_bits(entries: int, ways: int = 4, address_bits: int = 48) -> int:
    """Size of one conventional BTB entry in bits (tag + payload)."""
    sets = max(1, entries // ways)
    index_bits = max(0, sets.bit_length() - 1)
    tag_bits = address_bits - index_bits - 2  # minus 4-byte instruction alignment
    payload_bits = 30 + 2 + 4  # target displacement, type, fall-through length
    return tag_bits + payload_bits + 1  # +1 valid bit


def conventional_storage_kb(entries: int, ways: int = 4, victim_entries: int = 0) -> float:
    """Storage of a conventional BTB geometry, without instantiating one.

    Pure arithmetic on the geometry, so area accounting (e.g. a perfect BTB
    priced at the baseline's storage) never needs a shadow instance.
    """
    bits = entries * conventional_entry_bits(entries, ways)
    bits += victim_entries * _VICTIM_ENTRY_BITS
    return bits / 8 / 1024


class ConventionalBTB(BaseBTB):
    """Set-associative BTB with LRU replacement and optional victim buffer."""

    def __init__(
        self,
        entries: int = 1024,
        ways: int = 4,
        victim_entries: int = 0,
        latency_cycles: int = 1,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name or f"conventional_btb_{entries}")
        if entries % ways:
            raise ValueError("entry count must be divisible by associativity")
        self.entries = entries
        self.ways = ways
        self.latency_cycles = latency_cycles
        self.victim_entries = victim_entries
        self._main = SetAssociativeCache(
            sets=entries // ways,
            ways=ways,
            name=f"{self.name}_main",
            index_shift=2,
            on_eviction=self._spill_to_victim if victim_entries else None,
        )
        self._victim = (
            SetAssociativeCache(sets=1, ways=victim_entries, name=f"{self.name}_victim")
            if victim_entries
            else None
        )

    def _spill_to_victim(self, branch_pc: int, entry: object) -> None:
        """Entries displaced from the main structure land in the victim buffer."""
        if self._victim is not None:
            self._victim.insert(branch_pc, entry)

    def lookup(self, branch_pc: int, taken: bool = True) -> BTBLookupResult:
        hit, payload = self._main.access(branch_pc)
        if hit:
            self.stats.record(True, taken)
            return BTBLookupResult(True, payload, self.latency_cycles, "l1")
        if self._victim is not None:
            victim_hit, victim_payload = self._victim.access(branch_pc)
            if victim_hit:
                # Promote back into the main structure.
                self._victim.invalidate(branch_pc)
                self._main.insert(branch_pc, victim_payload)
                self.stats.record(True, taken)
                return BTBLookupResult(True, victim_payload, self.latency_cycles, "victim")
        self.stats.record(False, taken)
        return BTBLookupResult(False, None, 0, "miss")

    @hot_loop
    def lookup_into(
        self, slot: "PredictionSlot", branch_pc: int, taken: bool = True
    ) -> None:
        """:meth:`lookup` mirrored into a reusable slot (no result object)."""
        hit, payload = self._main.access(branch_pc)
        if hit:
            self.stats.record(True, taken)
            slot.set_btb(
                True, payload.target if payload is not None else None,
                self.latency_cycles, "l1",
            )
            return
        if self._victim is not None:
            victim_hit, victim_payload = self._victim.access(branch_pc)
            if victim_hit:
                self._victim.invalidate(branch_pc)
                self._main.insert(branch_pc, victim_payload)
                self.stats.record(True, taken)
                slot.set_btb(
                    True,
                    victim_payload.target if victim_payload is not None else None,
                    self.latency_cycles, "victim",
                )
                return
        self.stats.record(False, taken)
        slot.set_btb(False, None, 0, "miss")

    def peek_hit(self, branch_pc: int) -> bool:
        if self._main.contains(branch_pc):
            return True
        return self._victim is not None and self._victim.contains(branch_pc)

    def update(self, branch_pc: int, kind: BranchKind, target: Optional[int], taken: bool) -> None:
        """Insert/refresh the entry after the branch resolves.

        Conventional BTBs allocate entries for taken branches (a not-taken
        branch needs no target) — the same policy the paper's baseline uses.
        """
        if not taken and not kind.is_unconditional:
            return
        entry = BTBEntry(branch_pc=branch_pc, kind=kind, target=target)
        self.stats.insertions += 1
        self._main.insert(branch_pc, entry)

    @property
    def storage_kb(self) -> float:
        return conventional_storage_kb(self.entries, self.ways, self.victim_entries)


class PerfectBTB(BaseBTB):
    """Infinite-capacity, single-cycle BTB (the 'perfect BTB' upper bound)."""

    def __init__(self, latency_cycles: int = 1) -> None:
        super().__init__("perfect_btb")
        self.latency_cycles = latency_cycles
        self._entries: Dict[int, BTBEntry] = {}

    def lookup(self, branch_pc: int, taken: bool = True) -> BTBLookupResult:
        entry = self._entries.get(branch_pc)
        hit = entry is not None
        self.stats.record(hit, taken)
        if hit:
            return BTBLookupResult(True, entry, self.latency_cycles, "perfect")
        return BTBLookupResult(False, None, 0, "miss")

    @hot_loop
    def lookup_into(
        self, slot: "PredictionSlot", branch_pc: int, taken: bool = True
    ) -> None:
        entry = self._entries.get(branch_pc)
        hit = entry is not None
        self.stats.record(hit, taken)
        if hit:
            slot.set_btb(True, entry.target, self.latency_cycles, "perfect")
        else:
            slot.set_btb(False, None, 0, "miss")

    def peek_hit(self, branch_pc: int) -> bool:
        return branch_pc in self._entries

    def update(self, branch_pc: int, kind: BranchKind, target: Optional[int], taken: bool) -> None:
        self.stats.insertions += 1
        self._entries[branch_pc] = BTBEntry(branch_pc=branch_pc, kind=kind, target=target)

    @property
    def storage_kb(self) -> float:
        return float("inf")


# --------------------------------------------------------------------------- #
# Registry factories
# --------------------------------------------------------------------------- #

@BTB_REGISTRY.register("conventional")
def _build_conventional(ctx: BuildContext, **params: Any) -> ConventionalBTB:
    """Generic conventional BTB; geometry comes entirely from the spec."""
    return ConventionalBTB(**params)


@BTB_REGISTRY.register("conventional_1k")
def _build_conventional_1k(ctx: BuildContext, **params: Any) -> ConventionalBTB:
    """The paper's baseline: 1K entries plus a 64-entry victim buffer."""
    params.setdefault("entries", 1024)
    params.setdefault("victim_entries", 64)
    return ConventionalBTB(**params)


@BTB_REGISTRY.register("ideal_16k")
def _build_ideal_16k(ctx: BuildContext, **params: Any) -> ConventionalBTB:
    """16K entries at first-level latency (the IdealBTB of Figure 7)."""
    params.setdefault("entries", 16 * 1024)
    params.setdefault("latency_cycles", 1)
    params.setdefault("name", "ideal_btb_16k")
    return ConventionalBTB(**params)


@BTB_REGISTRY.register("perfect")
def _build_perfect(ctx: BuildContext, **params: Any) -> PerfectBTB:
    return PerfectBTB(**params)
