"""Indirect target cache.

A 1K-entry, direct-mapped cache of the most recent target of each indirect
branch (Table 1).  Return instructions are predicted by the RAS instead.
"""

from __future__ import annotations

from typing import Dict, Optional


class IndirectTargetCache:
    """Last-target predictor for indirect branches and indirect calls."""

    def __init__(self, entries: int = 1024) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("indirect target cache size must be a power of two")
        self.entries = entries
        self._mask = entries - 1
        self._targets: Dict[int, int] = {}
        self._tags: Dict[int, int] = {}
        self.lookups = 0
        self.hits = 0
        self.correct = 0

    def _index(self, branch_pc: int) -> int:
        return (branch_pc >> 2) & self._mask

    def predict(self, branch_pc: int) -> Optional[int]:
        """Predicted target, or None when the entry belongs to another branch."""
        self.lookups += 1
        index = self._index(branch_pc)
        if self._tags.get(index) != branch_pc:
            return None
        self.hits += 1
        return self._targets.get(index)

    def update(self, branch_pc: int, target: int, predicted: Optional[int] = None) -> None:
        """Record the resolved target; optionally score the prediction."""
        if predicted is not None and predicted == target:
            self.correct += 1
        index = self._index(branch_pc)
        self._tags[index] = branch_pc
        self._targets[index] = target

    @property
    def accuracy(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.correct / self.lookups
