"""Branch prediction substrate.

Implements the branch prediction unit of the modelled core (Table 1): a
hybrid conditional direction predictor (gshare + bimodal + meta selector), a
64-entry return address stack, a 1K-entry indirect target cache, and the BTB
designs the paper evaluates against — a conventional basic-block BTB (with an
optional victim buffer), an aggressive two-level BTB, PhantomBTB (the
virtualized hierarchical BTB of Burcea & Moshovos) and idealised BTBs.

AirBTB, the paper's own BTB design, lives in :mod:`repro.core.airbtb`
because it is part of the contribution rather than the substrate, but it
implements the same :class:`~repro.branch.btb_base.BaseBTB` interface so all
designs are interchangeable in the frontend model and the coverage harness.
"""

from repro.branch.direction import (
    BimodalPredictor,
    DirectionPredictor,
    GSharePredictor,
    HybridDirectionPredictor,
)
from repro.branch.ras import ReturnAddressStack
from repro.branch.indirect import IndirectTargetCache
from repro.branch.btb_base import BaseBTB, BTBEntry, BTBLookupResult, BTBStats
from repro.branch.btb_conventional import ConventionalBTB, PerfectBTB
from repro.branch.btb_two_level import TwoLevelBTB
from repro.branch.btb_phantom import PhantomBTB
from repro.branch.unit import BranchPredictionUnit, BranchPrediction

__all__ = [
    "DirectionPredictor",
    "BimodalPredictor",
    "GSharePredictor",
    "HybridDirectionPredictor",
    "ReturnAddressStack",
    "IndirectTargetCache",
    "BaseBTB",
    "BTBEntry",
    "BTBLookupResult",
    "BTBStats",
    "ConventionalBTB",
    "PerfectBTB",
    "TwoLevelBTB",
    "PhantomBTB",
    "BranchPredictionUnit",
    "BranchPrediction",
]
