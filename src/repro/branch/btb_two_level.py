"""Two-level hierarchical BTB.

The aggressive conventional design evaluated in Section 2.3 / Figure 2: a
1K-entry first level with single-cycle access backed by a 16K-entry second
level with a 4-cycle access latency.  Fills of the first level are *reactive*:
a first-level miss probes the second level and, on a hit there, copies the
entry up — but the core has already been exposed to the second-level latency
by then, which is exactly the timeliness problem Confluence removes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.branch.btb_base import BaseBTB, BTBEntry, BTBLookupResult
from repro.branch.btb_conventional import conventional_entry_bits
from repro.caches.sram import SetAssociativeCache
from repro.isa.instruction import BranchKind
from repro.registry import BTB_REGISTRY, BuildContext
from repro.staticcheck.markers import hot_loop

if TYPE_CHECKING:  # import cycle guard: unit.py imports btb_base
    from repro.branch.unit import PredictionSlot


class TwoLevelBTB(BaseBTB):
    """1K-entry L1 BTB + 16K-entry L2 BTB with reactive L1 fills."""

    def __init__(
        self,
        l1_entries: int = 1024,
        l2_entries: int = 16 * 1024,
        ways: int = 4,
        l1_latency_cycles: int = 1,
        l2_latency_cycles: int = 4,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name or "two_level_btb")
        self.l1_entries = l1_entries
        self.l2_entries = l2_entries
        self.ways = ways
        self.l1_latency_cycles = l1_latency_cycles
        self.l2_latency_cycles = l2_latency_cycles
        self._l1 = SetAssociativeCache(
            sets=l1_entries // ways, ways=ways, name=f"{self.name}_l1", index_shift=2
        )
        self._l2 = SetAssociativeCache(
            sets=l2_entries // ways, ways=ways, name=f"{self.name}_l2", index_shift=2
        )
        self.l1_misses_served_by_l2 = 0

    def lookup(self, branch_pc: int, taken: bool = True) -> BTBLookupResult:
        hit, payload = self._l1.access(branch_pc)
        if hit:
            self.stats.record(True, taken)
            return BTBLookupResult(True, payload, self.l1_latency_cycles, "l1")
        l2_hit, l2_payload = self._l2.access(branch_pc)
        if l2_hit:
            # Reactive fill: the entry moves up, but only after the core has
            # waited out the second-level access.
            self._l1.insert(branch_pc, l2_payload)
            self.l1_misses_served_by_l2 += 1
            self.stats.record(True, taken, second_level=True)
            return BTBLookupResult(True, l2_payload, self.l2_latency_cycles, "l2")
        self.stats.record(False, taken)
        return BTBLookupResult(False, None, 0, "miss")

    @hot_loop
    def lookup_into(
        self, slot: "PredictionSlot", branch_pc: int, taken: bool = True
    ) -> None:
        """:meth:`lookup` mirrored into a reusable slot (no result object)."""
        hit, payload = self._l1.access(branch_pc)
        if hit:
            self.stats.record(True, taken)
            slot.set_btb(
                True, payload.target if payload is not None else None,
                self.l1_latency_cycles, "l1",
            )
            return
        l2_hit, l2_payload = self._l2.access(branch_pc)
        if l2_hit:
            self._l1.insert(branch_pc, l2_payload)
            self.l1_misses_served_by_l2 += 1
            self.stats.record(True, taken, second_level=True)
            slot.set_btb(
                True, l2_payload.target if l2_payload is not None else None,
                self.l2_latency_cycles, "l2",
            )
            return
        self.stats.record(False, taken)
        slot.set_btb(False, None, 0, "miss")

    def peek_hit(self, branch_pc: int) -> bool:
        return self._l1.contains(branch_pc) or self._l2.contains(branch_pc)

    def update(self, branch_pc: int, kind: BranchKind, target: Optional[int], taken: bool) -> None:
        if not taken and not kind.is_unconditional:
            return
        entry = BTBEntry(branch_pc=branch_pc, kind=kind, target=target)
        self.stats.insertions += 1
        self._l1.insert(branch_pc, entry)
        self._l2.insert(branch_pc, entry)

    @property
    def storage_kb(self) -> float:
        l1_bits = self.l1_entries * conventional_entry_bits(self.l1_entries, self.ways)
        l2_bits = self.l2_entries * conventional_entry_bits(self.l2_entries, self.ways)
        return (l1_bits + l2_bits) / 8 / 1024

    @property
    def second_level_storage_kb(self) -> float:
        return self.l2_entries * conventional_entry_bits(self.l2_entries, self.ways) / 8 / 1024


@BTB_REGISTRY.register("two_level")
def _build_two_level(ctx: BuildContext, **params: Any) -> TwoLevelBTB:
    return TwoLevelBTB(**params)
