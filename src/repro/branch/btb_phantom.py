"""PhantomBTB: a virtualized hierarchical BTB with temporal-group prefetching.

PhantomBTB [Burcea & Moshovos, ASPLOS 2009] keeps a small conventional
first-level BTB per core and spills *temporal groups* of entries that missed
consecutively into LLC blocks through predictor virtualization.  A miss in the
first level probes the virtual second level with the missing branch's code
region; on a hit, the group's entries are moved into a small prefetch buffer
next to the first level.

Per Section 4.2.2 of the Confluence paper, the evaluated configuration is:

* 1K-entry, 4-way first-level BTB with a 64-entry prefetch buffer,
* six entries packed per temporal group (one LLC block),
* 4K LLC blocks dedicated to groups (256 KB virtualized in the LLC),
* groups tagged with the 32-instruction code region of their leading entry,
* the virtual table is shared by all cores running the same workload.

The group-fetch latency is an LLC round trip; the trigger miss itself is not
eliminated (the group arrives too late for it), which is the fundamental
coverage/timeliness limitation the paper discusses.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, List, Optional

from repro.branch.btb_base import BaseBTB, BTBEntry, BTBLookupResult
from repro.branch.btb_conventional import conventional_entry_bits
from repro.caches.llc import SharedLLC
from repro.caches.sram import SetAssociativeCache
from repro.isa.instruction import BranchKind
from repro.registry import BTB_REGISTRY, BuildContext

#: Instructions per temporal-group tag region (Section 4.2.2).
_REGION_INSTRUCTIONS = 32
_REGION_BYTES = _REGION_INSTRUCTIONS * 4


class PhantomBTB(BaseBTB):
    """First-level BTB + prefetch buffer + LLC-virtualized temporal groups."""

    def __init__(
        self,
        l1_entries: int = 1024,
        ways: int = 4,
        prefetch_buffer_entries: int = 64,
        entries_per_group: int = 6,
        group_capacity: int = 4096,
        l1_latency_cycles: int = 1,
        llc: Optional[SharedLLC] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name or "phantom_btb")
        self.l1_entries = l1_entries
        self.ways = ways
        self.prefetch_buffer_entries = prefetch_buffer_entries
        self.entries_per_group = entries_per_group
        self.group_capacity = group_capacity
        self.l1_latency_cycles = l1_latency_cycles
        self.llc = llc
        self._llc_region_name = f"{self.name}_groups"
        if llc is not None:
            llc.reserve_region(self._llc_region_name, group_capacity)
        self._l1 = SetAssociativeCache(
            sets=l1_entries // ways, ways=ways, name=f"{self.name}_l1", index_shift=2
        )
        self._prefetch_buffer = SetAssociativeCache(
            sets=1, ways=prefetch_buffer_entries, name=f"{self.name}_pb"
        )
        # Virtual second level: region tag -> list of entries, LRU-ordered and
        # capped at group_capacity groups (each group occupies one LLC block).
        self._groups: "OrderedDict[int, List[BTBEntry]]" = OrderedDict()
        # Group currently being assembled from consecutive L1 misses.
        self._forming: List[BTBEntry] = []
        self._forming_region: Optional[int] = None
        # Group fetched from the LLC but not yet arrived: it is staged into
        # the prefetch buffer at the *next* first-level miss, approximating
        # the LLC round-trip delay the paper charges PhantomBTB for.
        self._arriving: List[BTBEntry] = []
        self.group_fetches = 0
        self.group_writes = 0
        self.prefetch_buffer_hits = 0

    @staticmethod
    def _region_of(branch_pc: int) -> int:
        return branch_pc // _REGION_BYTES

    def lookup(self, branch_pc: int, taken: bool = True) -> BTBLookupResult:
        hit, payload = self._l1.access(branch_pc)
        if hit:
            self.stats.record(True, taken)
            return BTBLookupResult(True, payload, self.l1_latency_cycles, "l1")
        pb_hit, pb_payload = self._prefetch_buffer.access(branch_pc)
        if pb_hit:
            # Promote into the first level on use.
            self._prefetch_buffer.invalidate(branch_pc)
            self._l1.insert(branch_pc, pb_payload)
            self.prefetch_buffer_hits += 1
            self.stats.record(True, taken)
            return BTBLookupResult(True, pb_payload, self.l1_latency_cycles, "prefetch_buffer")
        # First-level miss: the group fetched by the *previous* miss has had
        # time to arrive by now; stage it, then trigger a new virtual-table
        # probe for this region.
        self._stage_arrived_group()
        self._fetch_group(branch_pc)
        self.stats.record(False, taken, second_level=True)
        return BTBLookupResult(False, None, 0, "miss")

    def _stage_arrived_group(self) -> None:
        for entry in self._arriving:
            if not self._l1.contains(entry.branch_pc):
                self._prefetch_buffer.insert(entry.branch_pc, entry)
        self._arriving = []

    def _fetch_group(self, branch_pc: int) -> None:
        """Probe the virtualized table and start fetching a group."""
        region = self._region_of(branch_pc)
        group = self._groups.get(region)
        if group is None:
            return
        self._groups.move_to_end(region)
        self.group_fetches += 1
        if self.llc is not None:
            self.llc.read_metadata(self._llc_region_name)
        self._arriving = list(group)

    def peek_hit(self, branch_pc: int) -> bool:
        return self._l1.contains(branch_pc) or self._prefetch_buffer.contains(branch_pc)

    def update(self, branch_pc: int, kind: BranchKind, target: Optional[int], taken: bool) -> None:
        if not taken and not kind.is_unconditional:
            return
        entry = BTBEntry(branch_pc=branch_pc, kind=kind, target=target)
        self.stats.insertions += 1
        was_present = self._l1.contains(branch_pc) or self._prefetch_buffer.contains(branch_pc)
        self._l1.insert(branch_pc, entry)
        if not was_present:
            self._append_to_group(entry)

    def _append_to_group(self, entry: BTBEntry) -> None:
        """Temporal grouping: consecutive first-level misses share a group."""
        if not self._forming:
            self._forming_region = self._region_of(entry.branch_pc)
        self._forming.append(entry)
        if len(self._forming) >= self.entries_per_group:
            self._commit_group()

    def _commit_group(self) -> None:
        if not self._forming or self._forming_region is None:
            return
        self._groups[self._forming_region] = list(self._forming)
        self._groups.move_to_end(self._forming_region)
        self.group_writes += 1
        if self.llc is not None:
            self.llc.write_metadata(self._llc_region_name)
        while len(self._groups) > self.group_capacity:
            self._groups.popitem(last=False)
        self._forming = []
        self._forming_region = None

    @property
    def storage_kb(self) -> float:
        """Dedicated per-core storage (the virtual table lives in the LLC)."""
        l1_bits = self.l1_entries * conventional_entry_bits(self.l1_entries, self.ways)
        pb_bits = self.prefetch_buffer_entries * (48 + 30 + 2 + 1)
        return (l1_bits + pb_bits) / 8 / 1024

    @property
    def virtualized_kb(self) -> float:
        """LLC footprint of the temporal groups (not dedicated storage)."""
        return self.group_capacity * 64 / 1024


@BTB_REGISTRY.register("phantom")
def _build_phantom(ctx: BuildContext, **params: Any) -> PhantomBTB:
    """PhantomBTB virtualizes its temporal groups in the context's LLC."""
    params.setdefault("llc", ctx.llc)
    return PhantomBTB(**params)
