"""Common interface for all BTB designs.

Every BTB design in the reproduction — conventional, two-level, PhantomBTB,
the ideal BTBs and AirBTB — implements :class:`BaseBTB`, so the frontend
timing model and the miss-coverage harness can swap designs freely.

The miss definition follows the paper (Section 2.1): a BTB miss occurs when
the entry for a *taken* branch is not found at lookup time.  Lookups for
not-taken branches are still performed (the BTB must identify the branch to
delimit the fetch region) but their misses are not what Figures 1, 8, 9 and
10 count, so the statistics track the two separately.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.isa.instruction import BranchKind
from repro.isa.predecode import PredecodedBlock

if TYPE_CHECKING:  # import cycle guard: unit.py imports this module
    from repro.branch.unit import PredictionSlot


@dataclass(frozen=True)
class BTBEntry:
    """One branch target buffer entry."""

    branch_pc: int
    kind: BranchKind
    target: Optional[int]


@dataclass(frozen=True)
class BTBLookupResult:
    """Outcome of a BTB lookup as seen by the branch prediction unit.

    Attributes:
        hit: whether an entry for the branch was found anywhere.
        entry: the entry found, if any.
        latency_cycles: cycles the frontend is exposed to before the target
            is available (1 for a first-level hit, the second-level/LLC
            latency for hierarchical designs, 0 contribution on a miss —
            the misfetch penalty is charged by the frontend model instead).
        level: which structure provided the entry ("l1", "l2", "victim",
            "overflow", "prefetch_buffer", "perfect" or "miss").
    """

    hit: bool
    entry: Optional[BTBEntry]
    latency_cycles: int
    level: str

    @property
    def target(self) -> Optional[int]:
        return self.entry.target if self.entry is not None else None


@dataclass
class BTBStats:
    """Lookup statistics, split by the dynamic outcome of the branch."""

    lookups: int = 0
    taken_lookups: int = 0
    taken_misses: int = 0
    not_taken_lookups: int = 0
    not_taken_misses: int = 0
    insertions: int = 0
    second_level_accesses: int = 0

    @property
    def taken_hit_rate(self) -> float:
        if self.taken_lookups == 0:
            return 0.0
        return 1.0 - self.taken_misses / self.taken_lookups

    @property
    def total_misses(self) -> int:
        return self.taken_misses + self.not_taken_misses

    def record(self, hit: bool, taken: bool, second_level: bool = False) -> None:
        self.lookups += 1
        if taken:
            self.taken_lookups += 1
            if not hit:
                self.taken_misses += 1
        else:
            self.not_taken_lookups += 1
            if not hit:
                self.not_taken_misses += 1
        if second_level:
            self.second_level_accesses += 1


class BaseBTB(abc.ABC):
    """Abstract BTB: lookup before prediction, update after resolution."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.stats = BTBStats()

    @abc.abstractmethod
    def lookup(self, branch_pc: int, taken: bool = True) -> BTBLookupResult:
        """Look up ``branch_pc``.

        ``taken`` is the dynamic outcome of the branch and is used only for
        statistics (the hardware obviously does not know it at lookup time);
        it also lets hierarchical designs trigger their miss-driven fills
        exactly when the paper's designs would.
        """

    def lookup_into(
        self, slot: "PredictionSlot", branch_pc: int, taken: bool = True
    ) -> None:
        """Write the outcome of a lookup into a reusable prediction slot.

        ``slot`` is a :class:`repro.branch.unit.PredictionSlot`; only its
        ``set_btb(hit, target, latency_cycles, level)`` write point is used.
        The default delegates to :meth:`lookup` (so every BTB design works
        with the packed fast path unchanged); designs on the hot path
        override it to skip the :class:`BTBLookupResult` construction — the
        override must mirror :meth:`lookup` decision for decision, statistics
        call for statistics call.
        """
        result = self.lookup(branch_pc, taken=taken)
        slot.set_btb(result.hit, result.target, result.latency_cycles, result.level)

    @abc.abstractmethod
    def update(self, branch_pc: int, kind: BranchKind, target: Optional[int], taken: bool) -> None:
        """Train the BTB with the resolved branch (insert/refresh its entry)."""

    def on_block_fill(self, predecoded: PredecodedBlock, demand: bool = False) -> None:
        """Hook called when an instruction block is installed in the L1-I.

        Only content-synchronized designs (AirBTB under Confluence) react;
        decoupled designs ignore it.
        """

    def on_block_evict(self, block_addr: int) -> None:
        """Hook called when an instruction block is evicted from the L1-I."""

    def peek_hit(self, branch_pc: int) -> bool:
        """Non-destructive presence check (no statistics, no LRU update).

        Used by runahead mechanisms (FDP) that must not perturb the BTB's
        measured behaviour.  Designs that cannot answer cheaply may return
        True (optimistic).
        """
        return True

    @property
    def storage_kb(self) -> float:
        """Dedicated per-core storage of the design in kilobytes."""
        return 0.0

    def miss_coverage_over(self, baseline_taken_misses: int) -> float:
        """Fraction of the baseline's taken-branch misses this design removed."""
        if baseline_taken_misses == 0:
            return 0.0
        eliminated = baseline_taken_misses - self.stats.taken_misses
        return eliminated / baseline_taken_misses
