"""L1 instruction cache model.

The paper's configuration (Table 1) is a 32 KB, 4-way set-associative cache
with 64 B blocks and a 2-cycle load-to-use latency.  The cache exposes a fill
listener interface: Confluence registers a listener so that every block
brought into the L1-I (demand or prefetch) is also predecoded and inserted
into AirBTB, and every eviction removes the corresponding AirBTB bundle —
that content synchronization is the heart of the design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol

from repro.caches.sram import CacheStats, SetAssociativeCache
from repro.isa.instruction import BLOCK_SIZE_BYTES, block_address


@dataclass(frozen=True)
class L1IConfig:
    """Geometry and latency of the L1 instruction cache."""

    size_bytes: int = 32 * 1024
    associativity: int = 4
    block_bytes: int = BLOCK_SIZE_BYTES
    hit_latency_cycles: int = 2

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.block_bytes):
            raise ValueError("cache size must be a multiple of way size")

    @property
    def block_count(self) -> int:
        return self.size_bytes // self.block_bytes

    @property
    def sets(self) -> int:
        return self.block_count // self.associativity


class FillListener(Protocol):
    """Observer notified when L1-I content changes (used by Confluence)."""

    def on_block_fill(self, block_addr: int, demand: bool) -> None:
        """Called after ``block_addr`` is installed in the L1-I."""

    def on_block_evict(self, block_addr: int) -> None:
        """Called after ``block_addr`` is evicted from the L1-I."""


class InstructionCache:
    """Presence-only L1-I model with fill/evict listeners.

    Lookups and fills are keyed by any address within a block; the cache
    normalizes to the 64 B block address.
    """

    def __init__(self, config: Optional[L1IConfig] = None, name: str = "l1i") -> None:
        self.config = config or L1IConfig()
        self._listeners: List[FillListener] = []
        self._cache = SetAssociativeCache(
            sets=self.config.sets,
            ways=self.config.associativity,
            on_eviction=self._notify_eviction,
            name=name,
            index_shift=self.config.block_bytes.bit_length() - 1,
        )
        self.demand_fills = 0
        self.prefetch_fills = 0

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    def add_listener(self, listener: FillListener) -> None:
        self._listeners.append(listener)

    def _notify_eviction(self, block_addr: int, _payload: object = None) -> None:
        for listener in self._listeners:
            listener.on_block_evict(block_addr)

    def contains(self, address: int) -> bool:
        """Presence check (no LRU update, no statistics)."""
        return self._cache.contains(block_address(address))

    def access(self, address: int) -> bool:
        """Demand access to the block containing ``address``.

        Returns True on a hit.  A miss does not implicitly fill the cache;
        the caller decides when the block arrives (see :meth:`fill`), which
        lets the frontend model fill latency and prefetch timeliness.
        """
        hit, _ = self._cache.access(block_address(address))
        return hit

    def fill(self, address: int, demand: bool = True) -> Optional[int]:
        """Install the block containing ``address``; returns evicted block.

        Fill listeners observe both the insertion and any eviction it causes,
        keeping structures that mirror L1-I content (AirBTB) synchronized.
        """
        block = block_address(address)
        if self._cache.contains(block):
            self._cache.touch(block)
            return None
        evicted = self._cache.insert(block)
        if demand:
            self.demand_fills += 1
        else:
            self.prefetch_fills += 1
        for listener in self._listeners:
            listener.on_block_fill(block, demand)
        return evicted

    def touch(self, address: int) -> bool:
        """Refresh the LRU position of a resident block."""
        return self._cache.touch(block_address(address))

    def invalidate(self, address: int) -> bool:
        block = block_address(address)
        present = self._cache.invalidate(block)
        if present:
            self._notify_eviction(block)
        return present

    def resident_blocks(self) -> List[int]:
        return sorted(self._cache.keys())

    @property
    def block_capacity(self) -> int:
        return self.config.block_count

    def __len__(self) -> int:
        return self._cache.occupancy()
