"""Cache hierarchy substrate.

Provides the generic set-associative cache model plus the two structures the
paper's frontend interacts with: the 32 KB / 4-way / 64 B-block L1 instruction
cache and the shared NUCA last-level cache.  The LLC model also supports the
*predictor virtualization* mechanism used by SHIFT and PhantomBTB: reserving a
number of its blocks to hold prefetcher metadata instead of data.
"""

from repro.caches.sram import CacheStats, EvictionCallback, SetAssociativeCache
from repro.caches.l1i import InstructionCache, L1IConfig
from repro.caches.llc import SharedLLC, LLCConfig, VirtualizedRegion
from repro.caches.hierarchy import MemoryHierarchy, HierarchyLatencies

__all__ = [
    "SetAssociativeCache",
    "CacheStats",
    "EvictionCallback",
    "InstructionCache",
    "L1IConfig",
    "SharedLLC",
    "LLCConfig",
    "VirtualizedRegion",
    "MemoryHierarchy",
    "HierarchyLatencies",
]
