"""Generic set-associative cache with true-LRU replacement.

All cache-like structures in the reproduction (L1-I, conventional BTBs,
victim/overflow buffers, the LLC) are built on this model.  Keys are block
addresses (or any integer tag); the cache does not store data contents, only
presence, which is all trace-driven frontend simulation needs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional, Tuple

#: Called with the evicted key and its payload whenever an insertion
#: displaces an entry.
EvictionCallback = Callable[[int, Optional[object]], None]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def miss_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.misses / self.lookups

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def reset(self) -> None:
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0


class SetAssociativeCache:
    """Set-associative cache over integer keys with true-LRU replacement.

    The cache maps a key to an optional payload object.  ``sets * ways`` gives
    the total entry capacity.  A ``ways`` equal to the total entry count and
    ``sets == 1`` models a fully-associative structure.
    """

    def __init__(
        self,
        sets: int,
        ways: int,
        on_eviction: Optional[EvictionCallback] = None,
        name: str = "cache",
        index_shift: int = 0,
    ) -> None:
        if sets <= 0 or ways <= 0:
            raise ValueError("cache must have positive sets and ways")
        if sets & (sets - 1):
            raise ValueError(f"number of sets must be a power of two, got {sets}")
        if index_shift < 0:
            raise ValueError("index_shift cannot be negative")
        self.sets = sets
        self.ways = ways
        self.name = name
        self.index_shift = index_shift
        self.stats = CacheStats()
        self._on_eviction = on_eviction
        # One ordered dict per set: key -> payload, in LRU order (oldest first).
        self._storage: List["OrderedDict[int, object]"] = [OrderedDict() for _ in range(sets)]

    @property
    def capacity(self) -> int:
        return self.sets * self.ways

    def _set_index(self, key: int) -> int:
        """Set selection: keys are byte addresses for most users, so the
        aligned low-order bits are shifted out before indexing."""
        return (key >> self.index_shift) & (self.sets - 1)

    def contains(self, key: int) -> bool:
        """Presence check without updating LRU state or statistics."""
        return key in self._storage[self._set_index(key)]

    def peek(self, key: int) -> Any:
        """Return the payload without updating LRU state or statistics."""
        return self._storage[self._set_index(key)].get(key)

    def lookup(self, key: int) -> Any:
        """Look up ``key``; updates LRU order and statistics.

        Returns the payload (which may be ``None`` if none was stored) on a
        hit, and ``None`` on a miss; use :meth:`access` when the distinction
        between a hit with no payload and a miss matters.
        """
        hit, payload = self.access(key)
        return payload if hit else None

    def access(self, key: int) -> Tuple[bool, Any]:
        """Look up ``key``; returns ``(hit, payload)`` and updates LRU."""
        target_set = self._storage[self._set_index(key)]
        self.stats.lookups += 1
        if key in target_set:
            self.stats.hits += 1
            target_set.move_to_end(key)
            return True, target_set[key]
        self.stats.misses += 1
        return False, None

    def insert(self, key: int, payload: Optional[object] = None) -> Optional[int]:
        """Insert ``key``; returns the evicted key, if any.

        Inserting an already-present key refreshes its LRU position and
        payload without evicting anything.
        """
        target_set = self._storage[self._set_index(key)]
        evicted: Optional[int] = None
        if key in target_set:
            target_set.move_to_end(key)
            target_set[key] = payload
            return None
        if len(target_set) >= self.ways:
            evicted, evicted_payload = target_set.popitem(last=False)
            self.stats.evictions += 1
            if self._on_eviction is not None:
                self._on_eviction(evicted, evicted_payload)
        target_set[key] = payload
        self.stats.insertions += 1
        return evicted

    def invalidate(self, key: int) -> bool:
        """Remove ``key`` if present; returns whether it was present."""
        target_set = self._storage[self._set_index(key)]
        if key in target_set:
            del target_set[key]
            return True
        return False

    def touch(self, key: int) -> bool:
        """Refresh LRU position of ``key`` without counting a lookup."""
        target_set = self._storage[self._set_index(key)]
        if key in target_set:
            target_set.move_to_end(key)
            return True
        return False

    def keys(self) -> Iterator[int]:
        for target_set in self._storage:
            yield from target_set.keys()

    def occupancy(self) -> int:
        return sum(len(target_set) for target_set in self._storage)

    def clear(self) -> None:
        for target_set in self._storage:
            target_set.clear()

    def __contains__(self, key: int) -> bool:
        return self.contains(key)

    def __len__(self) -> int:
        return self.occupancy()
