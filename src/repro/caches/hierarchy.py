"""Memory hierarchy: ties the per-core L1-I to the shared LLC.

The frontend timing model asks one question of the hierarchy: "how many
cycles until the block containing this fetch address can be delivered?"  The
answer depends on whether the block hits in the L1-I, is covered by an
in-flight prefetch, or must be demand-fetched from the LLC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.caches.l1i import InstructionCache
from repro.caches.llc import SharedLLC


@dataclass(frozen=True)
class HierarchyLatencies:
    """Latency summary used by the frontend timing model."""

    l1i_hit_cycles: int
    llc_round_trip_cycles: int
    memory_cycles: int = 135  # 45 ns at 3 GHz; instruction blocks rarely go here


class MemoryHierarchy:
    """Per-core view of the instruction-side memory hierarchy."""

    def __init__(
        self,
        l1i: Optional[InstructionCache] = None,
        llc: Optional[SharedLLC] = None,
    ) -> None:
        # Compare against None: an empty InstructionCache is falsy (len == 0).
        self.l1i = l1i if l1i is not None else InstructionCache()
        self.llc = llc if llc is not None else SharedLLC()

    @property
    def latencies(self) -> HierarchyLatencies:
        return HierarchyLatencies(
            l1i_hit_cycles=self.l1i.config.hit_latency_cycles,
            llc_round_trip_cycles=self.llc.round_trip_latency_cycles,
        )

    def demand_fetch(self, address: int) -> int:
        """Demand-fetch the block containing ``address``.

        Returns the fetch latency in cycles and installs the block in the
        L1-I on a miss (notifying fill listeners such as Confluence).
        """
        if self.l1i.access(address):
            return self.l1i.config.hit_latency_cycles
        latency = self.llc.fetch_instruction_block(address)
        self.l1i.fill(address, demand=True)
        return self.l1i.config.hit_latency_cycles + latency

    def prefetch(self, address: int) -> int:
        """Prefetch the block containing ``address`` into the L1-I.

        Returns the LLC latency the prefetch will take (0 if already
        resident).  The block is installed immediately; callers that model
        prefetch timeliness should delay *use* of the block by the returned
        latency rather than delaying the install.
        """
        if self.l1i.contains(address):
            return 0
        latency = self.llc.fetch_instruction_block(address)
        self.l1i.fill(address, demand=False)
        return latency
