"""Shared last-level cache model with predictor virtualization support.

The paper models a 16-core tiled CMP with a 512 KB-per-core NUCA LLC.  For
instruction-supply studies the LLC's role is twofold:

* it serves L1-I misses (instruction blocks essentially always hit in the
  LLC for server workloads, whose code fits comfortably in the multi-megabyte
  aggregate LLC), exposing the NUCA round-trip latency to the core, and
* it hosts *virtualized* predictor metadata — SHIFT's shared history and
  index, and PhantomBTB's temporal groups — in blocks reserved from its data
  capacity [Burcea et al., Predictor Virtualization].

The model therefore tracks capacity bookkeeping and access latency rather
than data contents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.isa.instruction import BLOCK_SIZE_BYTES


@dataclass(frozen=True)
class LLCConfig:
    """Aggregate LLC geometry and access latency (Table 1)."""

    slice_kb_per_core: int = 512
    cores: int = 16
    block_bytes: int = BLOCK_SIZE_BYTES
    bank_hit_latency_cycles: int = 6
    mesh_hop_cycles: int = 3
    mesh_dimension: int = 4

    @property
    def total_bytes(self) -> int:
        return self.slice_kb_per_core * 1024 * self.cores

    @property
    def total_blocks(self) -> int:
        return self.total_bytes // self.block_bytes

    @property
    def average_hops(self) -> int:
        """Average one-way hop count on the 2D mesh between a core and a bank."""
        # For a uniformly-distributed NUCA access on an NxN mesh the average
        # Manhattan distance is ~2N/3 in each dimension; round to an integer
        # hop count.
        return max(1, round(2 * self.mesh_dimension / 3))

    @property
    def round_trip_latency_cycles(self) -> int:
        """Core-to-LLC round trip: request hops + bank access + reply hops."""
        return 2 * self.average_hops * self.mesh_hop_cycles + self.bank_hit_latency_cycles


@dataclass
class VirtualizedRegion:
    """Bookkeeping for predictor metadata embedded in LLC data blocks."""

    name: str
    blocks: int
    reads: int = 0
    writes: int = 0

    @property
    def bytes(self) -> int:
        return self.blocks * BLOCK_SIZE_BYTES


class SharedLLC:
    """Capacity and latency model of the shared LLC.

    Instruction blocks are assumed resident (the aggregate LLC is far larger
    than any of the workloads' instruction footprints), so an instruction
    fetch that misses in the L1-I costs one LLC round trip.  Virtualized
    predictor regions reduce the effective data capacity; the paper accounts
    for this as a negligible performance effect, and so do we, but the model
    tracks it so the area/capacity story stays honest.
    """

    def __init__(self, config: Optional[LLCConfig] = None) -> None:
        self.config = config or LLCConfig()
        self._regions: Dict[str, VirtualizedRegion] = {}
        self.instruction_reads = 0
        self.metadata_reads = 0
        self.metadata_writes = 0

    @property
    def round_trip_latency_cycles(self) -> int:
        return self.config.round_trip_latency_cycles

    def reserve_region(self, name: str, blocks: int) -> VirtualizedRegion:
        """Reserve ``blocks`` LLC blocks for virtualized predictor metadata."""
        if blocks < 0:
            raise ValueError("cannot reserve a negative number of blocks")
        reserved = sum(region.blocks for region in self._regions.values())
        if reserved + blocks > self.config.total_blocks:
            raise ValueError(
                f"cannot reserve {blocks} blocks: only "
                f"{self.config.total_blocks - reserved} remain"
            )
        region = VirtualizedRegion(name=name, blocks=blocks)
        self._regions[name] = region
        return region

    def region(self, name: str) -> VirtualizedRegion:
        return self._regions[name]

    @property
    def reserved_blocks(self) -> int:
        return sum(region.blocks for region in self._regions.values())

    @property
    def effective_data_blocks(self) -> int:
        return self.config.total_blocks - self.reserved_blocks

    @property
    def reserved_fraction(self) -> float:
        return self.reserved_blocks / self.config.total_blocks

    def fetch_instruction_block(self, block_addr: int) -> int:
        """Serve an instruction block to an L1-I; returns latency in cycles."""
        self.instruction_reads += 1
        return self.round_trip_latency_cycles

    def read_metadata(self, region_name: str, blocks: int = 1) -> int:
        """Read virtualized predictor metadata; returns latency in cycles."""
        region = self._regions[region_name]
        region.reads += blocks
        self.metadata_reads += blocks
        return self.round_trip_latency_cycles

    def write_metadata(self, region_name: str, blocks: int = 1) -> int:
        """Append/update virtualized predictor metadata; returns latency."""
        region = self._regions[region_name]
        region.writes += blocks
        self.metadata_writes += blocks
        return self.round_trip_latency_cycles
