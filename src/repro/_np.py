"""Single home of the optional-numpy import dance.

The library has no required runtime dependencies; numpy is an accelerator.
Before this module, every consumer (the packed-trace reductions, the trace
statistics walk, and now the ``batch`` backend) carried its own
``try: import numpy`` block, each with its own sentinel spelling.  They all
import from here instead:

* :data:`np` — the numpy module, or ``None`` when it is not installed.
  Consumers guard their vectorized path on ``np is not None`` and keep a
  pure-python reference path (or raise, for features that are
  numpy-*only*, like the batch backend).
* :data:`HAVE_NUMPY` — the same fact as a bool, for feature gates that
  never touch the module object.
* :func:`require_numpy` — raises a uniform :class:`ValueError` naming the
  missing dependency and the feature that wanted it; the error consumers
  surface instead of an :class:`AttributeError` on ``None``.
"""

from __future__ import annotations

from typing import Any

__all__ = ["HAVE_NUMPY", "np", "require_numpy"]

try:  # pragma: no cover - exercised indirectly where numpy is installed
    import numpy

    np: Any = numpy
except ImportError:  # pragma: no cover - the pure-python paths are the reference
    np = None

#: True when numpy imported; the module object itself is :data:`np`.
HAVE_NUMPY = np is not None


def require_numpy(feature: str) -> Any:
    """Return the numpy module or raise a uniform error naming ``feature``.

    Raises:
        ValueError: when numpy is not installed, spelling out both the
            feature that needs it and the dependency by name, so the failure
            is actionable from a bare traceback.
    """
    if np is None:
        raise ValueError(
            f"{feature} requires numpy, which is not installed; "
            "install numpy or pick a pure-python alternative "
            "(e.g. the default 'scalar' simulation backend)"
        )
    return np
